"""Experiment X1 — the §6 open-problem extensions (beyond the paper).

Measures the bounded procedures this reproduction adds for the paper's
open problems: union containment (problem 5's decision core), maximal
contained rewritings (problem 3) and the view advisor (problem 4).
These are extensions, not reproductions — the benchmark documents their
cost so downstream users can judge them.
"""

from __future__ import annotations

from repro.core.contained import (
    contained_rewritings,
    find_union_rewriting,
    union_contains,
)
from repro.core.containment import clear_cache
from repro.patterns.parse import parse_pattern
from repro.reporting import format_table
from repro.views.advisor import advise_views
from repro.xmltree.generate import dblp_like


def test_x1_union_containment(benchmark):
    pattern = parse_pattern("a/b[c][d]")
    union = [parse_pattern("a/b[c]"), parse_pattern("a/b[d]")]

    def run():
        clear_cache()
        return union_contains(pattern, union)

    assert benchmark(run)


def test_x1_contained_rewritings(benchmark):
    query, view = parse_pattern("a//e/d"), parse_pattern("a/*")

    def run():
        clear_cache()
        return contained_rewritings(query, view)

    results = benchmark(run)
    assert results


def test_x1_union_rewriting(benchmark):
    query = parse_pattern("a/b/x")
    views = [("v1", parse_pattern("a/b")), ("v2", parse_pattern("a/c"))]

    def run():
        clear_cache()
        return find_union_rewriting(query, views)

    result = benchmark(run)
    assert result is not None


def test_x1_view_advisor(benchmark, report):
    workload = [
        parse_pattern("dblp/article[author]/title"),
        parse_pattern("dblp/article[author]/year"),
        parse_pattern("dblp/inproceedings/title"),
        parse_pattern("dblp/article[author]/author/name"),
    ]
    sample = dblp_like(entries=30, seed=2)

    def run():
        clear_cache()
        return advise_views(workload, max_views=2, sample=sample)

    result = benchmark(run)
    assert result.uncovered == []
    rows = [
        [str(view.pattern), f"{view.cost:.0f}", sorted(view.covered)]
        for view in result.views
    ]
    report(
        format_table(
            ["advised view", "stored nodes", "covers queries"],
            rows,
            title="X1: view advisor on a 4-query DBLP workload (budget 2)",
        )
    )
