"""Experiment C8 — the semantic view cache.

The paper motivates sound-and-complete rewriting by the query-caching
systems of its related work ([3, 5, 13, 18]) which use incomplete
matching.  This benchmark drives the rewriting-backed cache with a
locality-bearing query stream over a DBLP-like document and reports hit
ratios and lookup latency for several cache capacities.
"""

from __future__ import annotations

import pytest

from repro.core.containment import clear_cache
from repro.reporting import format_table
from repro.views.cache import ViewCache
from repro.workloads.streams import StreamConfig, query_stream
from repro.xmltree.generate import random_tree

DOCUMENT = random_tree(400, alphabet=("a", "b", "c", "d", "e"), seed=21)
STREAM = query_stream(
    StreamConfig(length=60, templates=6, repeat_prob=0.5, specialize_prob=0.3),
    seed=22,
)


@pytest.mark.parametrize("capacity", [2, 8, 32])
def test_c8_cache_throughput(benchmark, capacity):
    def run():
        clear_cache()
        cache = ViewCache(DOCUMENT, capacity=capacity)
        for query in STREAM:
            cache.query(query)
        return cache.stats

    stats = benchmark(run)
    assert stats.lookups == len(STREAM)


def test_c8_report(benchmark, report):
    rows = []
    benchmark.pedantic(lambda: _compute_rows(rows), rounds=1, iterations=1)
    _finish(rows, report)


def _compute_rows(rows):
    from repro.core.embedding import evaluate
    for capacity in (2, 8, 32):
        clear_cache()
        cache = ViewCache(DOCUMENT, capacity=capacity)
        for query in STREAM:
            answer = cache.query(query)
            assert answer == evaluate(query, DOCUMENT)
        stats = cache.stats
        rows.append(
            [
                capacity,
                stats.hits,
                stats.misses,
                f"{stats.hit_ratio:.2f}",
                stats.evictions,
                stats.rewrite_attempts,
            ]
        )


def _finish(rows, report):
    report(
        format_table(
            ["capacity", "hits", "misses", "hit ratio", "evictions", "rewrites"],
            rows,
            title=f"C8: semantic view cache over a {len(STREAM)}-query stream "
            f"(|t| = {DOCUMENT.size()})",
        )
    )
    # Larger caches should never hit less.
    ratios = [float(row[3]) for row in rows]
    assert ratios == sorted(ratios) or max(ratios) - min(ratios) < 0.05
