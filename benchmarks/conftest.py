"""Shared fixtures for the benchmark harness.

Each benchmark prints the paper-style rows it reproduces through the
``report`` fixture, which bypasses pytest's output capture so the tables
appear in ``pytest benchmarks/ --benchmark-only`` runs.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a report block even under captured output."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")

    return _report
