"""Experiment C6 — the Prop 3.4 search vs. the candidate-based solver.

The decidability procedure enumerates candidate rewritings (doubly
exponential in the worst case); the paper's Section 4/5 machinery
replaces it with ≤ 2 containment tests.  This benchmark runs both on
the same instances and reports candidates-enumerated vs tests-performed,
plus the growth of the enumeration space with the extra-node budget.
"""

from __future__ import annotations

import pytest

from repro.core.containment import clear_cache
from repro.core.decide import enumerate_candidates, exhaustive_search
from repro.core.rewrite import RewriteSolver
from repro.patterns.parse import parse_pattern
from repro.reporting import format_series, format_table

INSTANCES = [
    ("a/b/c", "a/b"),
    ("a//*/e", "a/*"),
    ("a/b[x]/c", "a/b"),
    ("a//e/d", "a/*"),
]


@pytest.mark.parametrize("query,view", INSTANCES, ids=[q for q, _ in INSTANCES])
def test_c6_candidate_solver(benchmark, query, view):
    q, v = parse_pattern(query), parse_pattern(view)
    solver = RewriteSolver(use_fallback=False)

    def run():
        clear_cache()
        return solver.solve(q, v)

    result = benchmark(run)
    assert result.status.value in ("found", "no-rewriting")


@pytest.mark.parametrize("query,view", INSTANCES, ids=[q for q, _ in INSTANCES])
def test_c6_exhaustive_search(benchmark, query, view):
    q, v = parse_pattern(query), parse_pattern(view)

    def run():
        clear_cache()
        return exhaustive_search(q, v, max_extra_nodes=1)

    outcome = benchmark(run)
    assert outcome.tried >= 0


def test_c6_report(benchmark, report):
    rows = []
    benchmark.pedantic(lambda: _compute_rows(rows), rounds=1, iterations=1)
    _finish(rows, report)


def _compute_rows(rows):
    solver = RewriteSolver(use_fallback=False)
    for query, view in INSTANCES:
        q, v = parse_pattern(query), parse_pattern(view)
        clear_cache()
        decision = solver.solve(q, v)
        outcome = exhaustive_search(q, v, max_extra_nodes=2)
        rows.append(
            [
                query,
                view,
                decision.equivalence_tests,
                outcome.tried,
                decision.status.value,
            ]
        )


def _finish(rows, report):
    report(
        format_table(
            ["query", "view", "solver eq-tests", "search candidates", "outcome"],
            rows,
            title="C6: candidate solver (≤2 tests) vs Prop 3.4 enumeration",
        )
    )
    assert len(rows) == len(INSTANCES)


def test_c6_enumeration_growth(benchmark, report):
    q, v = parse_pattern("a/b[x]/c[y]/d"), parse_pattern("a/b")
    points = []
    benchmark.pedantic(lambda: _compute_points(q, v, points), rounds=1, iterations=1)
    _finish_points(points, report)


def _compute_points(q, v, points):
    for extra in range(0, 4):
        count = sum(1 for _ in enumerate_candidates(q, v, max_extra_nodes=extra))
        points.append((extra, count))


def _finish_points(points, report):
    report(
        format_series(
            "C6b: candidate space size vs extra-node budget (exponential)",
            points,
        )
    )
    counts = [count for _, count in points]
    assert counts == sorted(counts)
    assert counts[-1] > 10 * counts[0]
