"""Ratio guard — view_plan_ratio floors, enforced without re-baselining.

The fraction of queries answered from views (single-view *or*
intersection plans) is deterministic for a fixed workload config + seed:
no timing, no machine noise.  That makes it a pure planning-regression
tripwire — if the rewrite search, the advisor, or the intersection
planner loses coverage, these ratios drop and this guard fails loudly.

Floors live in the committed benchmark JSONs (``BENCH_replay.json`` /
``BENCH_catalog.json`` under ``floors``), written there by their own
benchmark scripts; this guard only *reads* them — it never rewrites a
baseline.  Four checks:

* the two replay scenarios (re-measured here; cheap and deterministic);
* the batched-serving stream's single-call ratio (re-measured);
* the multi-document catalog replay ratio (re-measured);
* the catalog *serving* ratios (``view_plan_ratio`` and
  ``intersection_plan_ratio``) — checked against the committed record
  only, because re-measuring serving advises a whole fleet (minutes);
  ``make bench-catalog`` refreshes that record;
* the async serving tier's sustained-load record (PR 8) — the committed
  ``sustained_load.answers_identical_to_inline`` flag must be ``true``:
  the open-loop replay's surviving answers were bit-identical to the
  synchronous inline path when the record was made;
* the replicated read tier's record (PR 9) — every committed
  ``replicated_load`` tier (2 and 4 replicas) must carry
  ``answers_identical_to_inline: true`` and warm-started replicas:
  replica-served answers were bit-identical to the writer-inline path
  when the record was made;
* the observability layer's record (PR 10) — the committed
  ``tracing_overhead.overhead_ratio`` must not exceed its embedded
  ``ceiling`` (1.05): instrumentation that costs more than 5% on the
  replay path is a regression.  Checked against the record only
  (``make bench-replay`` refreshes it), so the guard never flakes on
  machine load.

Run with:

    make bench-check      # or: PYTHONPATH=src python benchmarks/bench_ratio_guard.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_catalog
import bench_replay
from repro.workloads.replay import (
    CatalogReplayConfig,
    ReplayConfig,
    replay_catalog,
    replay_workload,
)

REPO_ROOT = BENCH_DIR.parent
REPLAY_JSON = REPO_ROOT / "BENCH_replay.json"
CATALOG_JSON = REPO_ROOT / "BENCH_catalog.json"


def _committed(path: Path) -> dict:
    return json.loads(path.read_text()) if path.exists() else {}


def measure_ratios() -> dict:
    """Re-measure every deterministic ratio (no serving fleet)."""
    replay_ratios = {
        name: round(
            replay_workload(config, seed=bench_replay.REPLAY_SEED)
            .view_plan_ratio,
            3,
        )
        for name, config in bench_replay.REPLAY_SCENARIOS.items()
    }
    batched = replay_workload(
        ReplayConfig(
            stream=bench_replay.BATCH_STREAM,
            document_size=bench_replay.BATCH_DOCUMENT_SIZE,
            max_views=bench_replay.BATCH_MAX_VIEWS,
            batch_size=1,
        ),
        seed=bench_replay.REPLAY_SEED,
    )
    catalog = replay_catalog(
        CatalogReplayConfig(**bench_catalog.REPLAY_CONFIG),
        seed=bench_catalog.REPLAY_SEED,
    )
    return {
        "generated_by": "benchmarks/bench_ratio_guard.py",
        "replay": replay_ratios,
        "batched_serving": round(batched.view_plan_ratio, 3),
        "catalog_replay": round(catalog.view_plan_ratio, 3),
    }


def floor_violations(
    measured: dict, replay_report: dict, catalog_report: dict
) -> list[str]:
    """Every ratio below its committed floor (in-script tables seed
    fresh checkouts whose JSONs predate the floors)."""
    replay_floors = replay_report.get("floors", {}).get(
        "view_plan_ratio", bench_replay.RATIO_FLOORS
    )
    catalog_floors = catalog_report.get(
        "floors", bench_catalog.RATIO_FLOORS
    )
    problems: list[str] = []
    for name, ratio in measured["replay"].items():
        floor = replay_floors["replay"].get(name)
        if floor is not None and ratio < floor:
            problems.append(
                f"replay {name}: view_plan_ratio {ratio} < floor {floor}"
            )
    if measured["batched_serving"] < replay_floors["batched_serving"]:
        problems.append(
            f"batched_serving: view_plan_ratio "
            f"{measured['batched_serving']} < floor "
            f"{replay_floors['batched_serving']}"
        )
    catalog_floor = catalog_floors["catalog_replay_view_plan_ratio"]
    if measured["catalog_replay"] < catalog_floor:
        problems.append(
            f"catalog_replay: view_plan_ratio "
            f"{measured['catalog_replay']} < floor {catalog_floor}"
        )
    serving = catalog_report.get("serving")
    if serving is not None:
        for key, floor_key in (
            ("view_plan_ratio", "serving_view_plan_ratio"),
            ("intersection_plan_ratio", "serving_intersection_plan_ratio"),
        ):
            recorded = serving.get(key)
            floor = catalog_floors.get(floor_key)
            if (
                recorded is not None
                and floor is not None
                and recorded < floor
            ):
                problems.append(
                    f"serving (committed): {key} {recorded} < floor {floor}"
                )
    sustained = catalog_report.get("sustained_load")
    if sustained is not None and not sustained.get(
        "answers_identical_to_inline", False
    ):
        problems.append(
            "sustained_load (committed): async serving answers were not "
            "bit-identical to the inline path when the record was made"
        )
    overhead = replay_report.get("tracing_overhead")
    if overhead is not None:
        ratio = overhead.get("overhead_ratio")
        ceiling = overhead.get(
            "ceiling", bench_replay.TRACING_OVERHEAD_CEILING
        )
        if ratio is not None and ratio > ceiling:
            problems.append(
                f"tracing_overhead (committed): overhead_ratio {ratio} "
                f"> ceiling {ceiling} — observability must stay within "
                "5% of the untraced replay"
            )
    replicated = catalog_report.get("replicated_load")
    if replicated is not None:
        for count, tier in sorted(replicated.get("tiers", {}).items()):
            if not tier.get("answers_identical_to_inline", False):
                problems.append(
                    f"replicated_load (committed): {count}-replica answers "
                    "were not bit-identical to the writer-inline path when "
                    "the record was made"
                )
            if not tier.get("replicas_warm", False):
                problems.append(
                    f"replicated_load (committed): {count}-replica tier "
                    "bootstrapped cold — snapshot shipping failed to "
                    "warm-start the replicas"
                )
    return problems


# ----------------------------------------------------------------------
# pytest wrapper
# ----------------------------------------------------------------------

def test_ratio_guard(report=None):
    measured = measure_ratios()
    if report is not None:
        report(json.dumps(measured, indent=2))
    problems = floor_violations(
        measured, _committed(REPLAY_JSON), _committed(CATALOG_JSON)
    )
    assert problems == [], problems


if __name__ == "__main__":
    result = measure_ratios()
    print(json.dumps(result, indent=2))
    violations = floor_violations(
        result, _committed(REPLAY_JSON), _committed(CATALOG_JSON)
    )
    if violations:
        print("\nRATIO FLOOR VIOLATIONS:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        sys.exit(1)
    print("\nview-plan ratio floors OK (baselines never rewritten here)")
