"""Replay + advisor benchmark — throughput and speedups to JSON.

Two measurements, recorded to ``BENCH_replay.json`` at the repo root so
future PRs can diff against this PR's baseline:

* **Stream replay throughput**: seeded query streams driven end to end
  through :func:`repro.workloads.replay.replay_workload` (advisor-warmed
  views, planning, execution), reported as queries/sec, with the
  view-plan ratio and decision-cache hits that explain it.

* **Advisor speedup**: the batched scorer (one ``ContainmentBatch`` per
  distinct query, prefix fast path, Prop 3.1 prechecks as lazy-greedy
  upper bounds, cross-call engine LRU) against the pre-batching
  reference (one ``RewriteSolver.solve`` per (query, candidate) pair,
  engine LRU disabled — the PR 1 state), on 30-query descendant-heavy
  streams.  Both paths must select identical views; the acceptance
  floor is an aggregate 3x.

Run with:

    make bench-replay     # or: PYTHONPATH=src python benchmarks/bench_replay.py

The pytest wrapper runs the same measurements with soft assertions
(thresholds deliberately below recorded values to avoid flaking on slow
machines).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.core.containment import (
    DEFAULT_ENGINE_CACHE_LIMIT,
    clear_cache,
    set_engine_cache_limit,
)
from repro.patterns.random import PatternConfig
from repro.views.advisor import advise_views
from repro.workloads.replay import ReplayConfig, replay_workload
from repro.workloads.streams import StreamConfig, query_stream
from repro.xmltree.generate import random_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_replay.json"

#: Replay scenarios: seeded streams with temporal locality.
REPLAY_SCENARIOS = {
    "stream-200x8-doc300": ReplayConfig(
        stream=StreamConfig(length=200, templates=8), document_size=300
    ),
    "stream-500x12-doc600": ReplayConfig(
        stream=StreamConfig(length=500, templates=12), document_size=600
    ),
}
REPLAY_SEED = 7

#: Advisor comparison: 30-query descendant-heavy workloads (the coNP
#: regime the batching discipline targets), over a fixed seed range.
ADVISOR_STREAM = StreamConfig(
    length=30,
    templates=6,
    pattern=PatternConfig(depth=4, branch_prob=0.4, descendant_prob=0.5),
)
ADVISOR_SEEDS = range(6)
ADVISOR_MAX_VIEWS = 4
ADVISOR_SAMPLE_SIZE = 400


def measure_replay() -> dict[str, dict]:
    results: dict[str, dict] = {}
    for name, config in REPLAY_SCENARIOS.items():
        report = replay_workload(config, seed=REPLAY_SEED)
        results[name] = {
            "queries": report.queries,
            "distinct_queries": report.distinct_queries,
            "queries_per_sec": round(report.queries_per_sec, 2),
            "view_plan_ratio": round(report.view_plan_ratio, 3),
            "decision_cache_hits": report.engine["decision_cache_hits"],
            "p50_latency_ms": round(report.latency_ms(0.5), 4),
            "p95_latency_ms": round(report.latency_ms(0.95), 4),
            "views": report.views,
        }
    return results


def measure_advisor() -> dict:
    sample = random_tree(ADVISOR_SAMPLE_SIZE, seed=3)
    per_seed: dict[str, dict] = {}
    total_solver = total_batched = 0.0
    for seed in ADVISOR_SEEDS:
        workload = query_stream(ADVISOR_STREAM, seed=seed)
        # Baseline: per-pair solver scoring without the cross-call
        # engine LRU — the pre-batching (PR 1) advisor stack.
        set_engine_cache_limit(0)
        clear_cache()
        t0 = time.perf_counter()
        reference = advise_views(
            workload, max_views=ADVISOR_MAX_VIEWS, sample=sample,
            scorer="solver",
        )
        solver_time = time.perf_counter() - t0
        # Batched: containment-only scoring with the engine LRU on.
        set_engine_cache_limit(DEFAULT_ENGINE_CACHE_LIMIT)
        clear_cache()
        t0 = time.perf_counter()
        batched = advise_views(
            workload, max_views=ADVISOR_MAX_VIEWS, sample=sample
        )
        batched_time = time.perf_counter() - t0

        assert batched.stats.solver_calls == 0, "batched path called the solver"
        agree = (
            [v.pattern for v in batched.views]
            == [v.pattern for v in reference.views]
            and batched.coverage == reference.coverage
            and batched.uncovered == reference.uncovered
        )
        assert agree, f"scorer disagreement on seed {seed}"
        total_solver += solver_time
        total_batched += batched_time
        per_seed[str(seed)] = {
            "solver_sec": round(solver_time, 4),
            "batched_sec": round(batched_time, 4),
            "speedup": round(solver_time / batched_time, 2),
        }
    return {
        "workload": "30-query stream, depth-4 patterns, descendant_prob=0.5",
        "per_seed": per_seed,
        "total_solver_sec": round(total_solver, 4),
        "total_batched_sec": round(total_batched, 4),
        "aggregate_speedup": round(total_solver / total_batched, 2),
    }


def run_benchmark() -> dict:
    return {
        "generated_by": "benchmarks/bench_replay.py",
        "python": platform.python_version(),
        "replay": measure_replay(),
        "advisor": measure_advisor(),
    }


def write_report(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest wrapper (soft smoke assertions)
# ----------------------------------------------------------------------

def test_bench_replay(report=None):
    result = run_benchmark()
    write_report(result)
    if report is not None:
        report(json.dumps(result, indent=2))
    # Recorded aggregate speedup is well above 3; assert the acceptance
    # floor itself (per-seed numbers may flake under load, the aggregate
    # is stable).
    assert result["advisor"]["aggregate_speedup"] >= 3.0, result["advisor"]
    for name, row in result["replay"].items():
        assert row["queries_per_sec"] > 50, (name, row)
        assert row["view_plan_ratio"] > 0.3, (name, row)


if __name__ == "__main__":
    outcome = run_benchmark()
    write_report(outcome)
    print(json.dumps(outcome, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
