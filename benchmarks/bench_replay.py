"""Replay + advisor benchmark — throughput and speedups to JSON.

Four measurements, recorded to ``BENCH_replay.json`` at the repo root so
future PRs can diff against this PR's baseline:

* **Stream replay throughput**: seeded query streams driven end to end
  through :func:`repro.workloads.replay.replay_workload` (advisor-warmed
  views, planning, execution), reported as queries/sec, with the
  view-plan ratio and decision-cache hits that explain it.

* **Advisor speedup**: the batched scorer (one ``ContainmentBatch`` per
  distinct query, prefix fast path, Prop 3.1 prechecks as lazy-greedy
  upper bounds, cross-call engine LRU) against the pre-batching
  reference (one ``RewriteSolver.solve`` per (query, candidate) pair,
  engine LRU disabled — the PR 1 state), on 30-query descendant-heavy
  streams.  Both paths must select identical views; the acceptance
  floor is an aggregate 3x.

* **Persistence (cold start vs warm store)**: the same replay against a
  disk-backed :class:`~repro.views.persist.SnapshotBackend` — first run
  evaluates and saves every advised view (cold), second run loads them
  from the snapshot log (warm).  The warm run's counters must be
  bit-identical to the in-memory run's (the subsystem's correctness
  criterion).  Because whole-run wall time is dominated by re-advising
  (a listed next rung), the restart-path saving is measured directly:
  ``materialize_cold_sec`` vs ``materialize_warm_sec`` time *only* the
  view-definition loop (evaluate+save vs load) over a 3,000-node
  document, and the pytest wrapper asserts warm is at least 2× faster.

* **Batched vs single-call serving**: the same stream replayed query by
  query (``batch_size=1``) and through
  :meth:`~repro.views.engine.QueryEngine.answer_many`, on a
  high-temporal-locality stream over a 2,000-node document where
  duplicate answers carry real evaluation cost.  Acceptance floor:
  batched throughput >= 1.3x single-call.

* **Tracing overhead** (PR 10): the smaller replay scenario with a
  :class:`~repro.obs.Tracer` + :class:`~repro.obs.MetricsRegistry`
  installed (one root span per query, registry publishing at replay
  end) against the same replay with observability off, best-of-N with
  alternating order after a shared warmup.  The committed
  ``overhead_ratio`` must stay at or under the embedded ``ceiling``
  (1.05 — instrumentation is allowed to cost at most 5%), which
  ``benchmarks/bench_ratio_guard.py`` enforces on the *record* so the
  check never flakes on a loaded machine.

Run with:

    make bench-replay     # or: PYTHONPATH=src python benchmarks/bench_replay.py

The pytest wrapper runs the same measurements with soft assertions
(thresholds deliberately below recorded values to avoid flaking on slow
machines).
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path

from repro.core.containment import (
    DEFAULT_ENGINE_CACHE_LIMIT,
    clear_cache,
    set_branch_prune_enabled,
    set_engine_cache_limit,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_registry,
    install_tracer,
)
from repro.patterns.random import PatternConfig
from repro.views.advisor import advise_views
from repro.views.persist import SnapshotBackend
from repro.views.store import ViewStore
from repro.workloads.replay import ReplayConfig, replay_workload
from repro.workloads.streams import StreamConfig, query_stream, sample_stream
from repro.xmltree.generate import random_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_replay.json"

#: Replay scenarios: seeded streams with temporal locality.
REPLAY_SCENARIOS = {
    "stream-200x8-doc300": ReplayConfig(
        stream=StreamConfig(length=200, templates=8), document_size=300
    ),
    "stream-500x12-doc600": ReplayConfig(
        stream=StreamConfig(length=500, templates=12), document_size=600
    ),
}
REPLAY_SEED = 7

#: Advisor comparison: 30-query descendant-heavy workloads (the coNP
#: regime the batching discipline targets), over a fixed seed range.
ADVISOR_STREAM = StreamConfig(
    length=30,
    templates=6,
    pattern=PatternConfig(depth=4, branch_prob=0.4, descendant_prob=0.5),
)
ADVISOR_SEEDS = range(6)
ADVISOR_MAX_VIEWS = 4
ADVISOR_SAMPLE_SIZE = 400

#: Persistence comparison: the larger replay scenario, disk-backed.
PERSIST_SCENARIO = REPLAY_SCENARIOS["stream-500x12-doc600"]

#: Materialization timing uses a bigger document so the evaluate-vs-load
#: gap is far above timer jitter.
PERSIST_MATERIALIZE_DOC = 3_000

#: Batched-serving comparison: high temporal locality (75% repeats) and
#: a tight view budget over a 2,000-node document, so duplicate queries
#: carry real evaluation cost — the regime batching folds.
BATCH_STREAM = StreamConfig(
    length=500, templates=12, repeat_prob=0.75, specialize_prob=0.10
)
BATCH_DOCUMENT_SIZE = 2_000
BATCH_MAX_VIEWS = 2
BATCH_SIZES = (64, 128)

#: Tracing overhead: the smaller replay scenario, median of paired
#: rounds, with the ceiling embedded in the record for
#: ``bench_ratio_guard.py``.
TRACING_SCENARIO = "stream-200x8-doc300"
TRACING_RUNS = 5
TRACING_OVERHEAD_CEILING = 1.05

#: view_plan_ratio floors, embedded in the JSON and enforced by
#: ``benchmarks/bench_ratio_guard.py`` (``make bench-check``): the
#: fraction of queries served from views (single-view or intersection
#: plans) is deterministic for a fixed config+seed, so a drop below the
#: floor is a planning regression, never machine noise.
RATIO_FLOORS = {
    "replay": {
        "stream-200x8-doc300": 0.80,
        "stream-500x12-doc600": 0.75,
    },
    "batched_serving": 0.50,
}


def measure_replay() -> dict[str, dict]:
    results: dict[str, dict] = {}
    for name, config in REPLAY_SCENARIOS.items():
        report = replay_workload(config, seed=REPLAY_SEED)
        results[name] = {
            "queries": report.queries,
            "distinct_queries": report.distinct_queries,
            "queries_per_sec": round(report.queries_per_sec, 2),
            "view_plan_ratio": round(report.view_plan_ratio, 3),
            "decision_cache_hits": report.engine["decision_cache_hits"],
            "p50_latency_ms": round(report.latency_ms(0.5), 4),
            "p95_latency_ms": round(report.latency_ms(0.95), 4),
            "views": report.views,
        }
    return results


def measure_advisor() -> dict:
    sample = random_tree(ADVISOR_SAMPLE_SIZE, seed=3)
    per_seed: dict[str, dict] = {}
    total_solver = total_batched = 0.0
    for seed in ADVISOR_SEEDS:
        workload = query_stream(ADVISOR_STREAM, seed=seed)
        # Baseline: per-pair solver scoring without the cross-call
        # engine LRU and without the (PR 5) dispatch branch prune —
        # the pre-batching (PR 1) advisor stack.  Selections must
        # still be identical: both knobs change cost, never verdicts.
        set_engine_cache_limit(0)
        set_branch_prune_enabled(False)
        clear_cache()
        t0 = time.perf_counter()
        reference = advise_views(
            workload, max_views=ADVISOR_MAX_VIEWS, sample=sample,
            scorer="solver",
        )
        solver_time = time.perf_counter() - t0
        # Batched: containment-only scoring with the engine LRU on.
        set_engine_cache_limit(DEFAULT_ENGINE_CACHE_LIMIT)
        set_branch_prune_enabled(True)
        clear_cache()
        t0 = time.perf_counter()
        batched = advise_views(
            workload, max_views=ADVISOR_MAX_VIEWS, sample=sample
        )
        batched_time = time.perf_counter() - t0

        assert batched.stats.solver_calls == 0, "batched path called the solver"
        agree = (
            [v.pattern for v in batched.views]
            == [v.pattern for v in reference.views]
            and batched.coverage == reference.coverage
            and batched.uncovered == reference.uncovered
        )
        assert agree, f"scorer disagreement on seed {seed}"
        total_solver += solver_time
        total_batched += batched_time
        per_seed[str(seed)] = {
            "solver_sec": round(solver_time, 4),
            "batched_sec": round(batched_time, 4),
            "speedup": round(solver_time / batched_time, 2),
        }
    return {
        "workload": "30-query stream, depth-4 patterns, descendant_prob=0.5",
        "per_seed": per_seed,
        "total_solver_sec": round(total_solver, 4),
        "total_batched_sec": round(total_batched, 4),
        "aggregate_speedup": round(total_solver / total_batched, 2),
    }


def measure_persistence() -> dict:
    """Cold-start vs warm-store replay against a snapshot log."""
    config = PERSIST_SCENARIO
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "views.snapshot.jsonl"
        durable = ReplayConfig(
            stream=config.stream,
            document_size=config.document_size,
            max_views=config.max_views,
            persist_path=path,
        )
        t0 = time.perf_counter()
        cold = replay_workload(durable, seed=REPLAY_SEED)
        cold_sec = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = replay_workload(durable, seed=REPLAY_SEED)
        warm_sec = time.perf_counter() - t0
        memory = replay_workload(config, seed=REPLAY_SEED)
        snapshot_bytes = path.stat().st_size
    assert cold.backend["saves"] > 0 and cold.backend["hits"] == 0, cold.backend
    assert warm.backend["hits"] > 0 and warm.backend["saves"] == 0, warm.backend

    # Restart-path saving, measured directly: time only the
    # view-definition loop — evaluate+save (cold) vs digest+load (warm).
    templates = sample_stream(config.stream, seed=REPLAY_SEED).templates
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "materialize.snapshot.jsonl"

        def materialize_once() -> float:
            store = ViewStore(backend=SnapshotBackend(path))
            store.add_document(
                "doc", random_tree(PERSIST_MATERIALIZE_DOC, seed=REPLAY_SEED)
            )
            t0 = time.perf_counter()
            for rank, template in enumerate(templates):
                store.define_view(f"view-{rank}", template)
            elapsed = time.perf_counter() - t0
            store.close()
            return elapsed

        materialize_cold = materialize_once()
        materialize_warm = materialize_once()

    return {
        "scenario": "stream-500x12-doc600",
        "cold_run_sec": round(cold_sec, 4),
        "warm_run_sec": round(warm_sec, 4),
        "views_saved_cold": cold.backend["saves"],
        "views_loaded_warm": warm.backend["hits"],
        "snapshot_bytes": snapshot_bytes,
        "warm_counters_identical_to_memory": warm.counters() == memory.counters(),
        "cold_counters_identical_to_memory": cold.counters() == memory.counters(),
        "materialize_doc_nodes": PERSIST_MATERIALIZE_DOC,
        "materialize_views": len(templates),
        "materialize_cold_sec": round(materialize_cold, 4),
        "materialize_warm_sec": round(materialize_warm, 4),
        "materialize_speedup": round(materialize_cold / materialize_warm, 2),
    }


def measure_batched() -> dict:
    """Single-call vs ``answer_many`` throughput on one stream."""
    base = dict(
        stream=BATCH_STREAM,
        document_size=BATCH_DOCUMENT_SIZE,
        max_views=BATCH_MAX_VIEWS,
    )
    single = replay_workload(ReplayConfig(**base, batch_size=1), seed=REPLAY_SEED)
    result = {
        "workload": (
            f"{BATCH_STREAM.length}-query stream, repeat_prob="
            f"{BATCH_STREAM.repeat_prob}, doc {BATCH_DOCUMENT_SIZE} nodes, "
            f"{BATCH_MAX_VIEWS} views"
        ),
        "single_queries_per_sec": round(single.queries_per_sec, 2),
        "view_plan_ratio": round(single.view_plan_ratio, 3),
        "batched": {},
    }
    for batch_size in BATCH_SIZES:
        batched = replay_workload(
            ReplayConfig(**base, batch_size=batch_size), seed=REPLAY_SEED
        )
        # Batching folds work; it must never change the answers.
        assert batched.answers_total == single.answers_total
        assert batched.view_plans == single.view_plans
        result["batched"][str(batch_size)] = {
            "queries_per_sec": round(batched.queries_per_sec, 2),
            "folded_queries": batched.folded_queries,
            "speedup_vs_single": round(
                batched.queries_per_sec / single.queries_per_sec, 2
            ),
        }
    return result


def measure_tracing_overhead() -> dict:
    """Instrumented vs plain replay: what does observability cost?

    The replay is short (~0.3s), so independent best-of-N on each arm
    is at the mercy of machine drift between the arms.  Instead every
    round runs plain-then-traced back to back — the pair shares
    whatever state the machine is in — and the recorded
    ``overhead_ratio`` is the **median of the per-round ratios**,
    which cancels drift and shrugs off one outlier round.  One untimed
    warmup first, so the global containment memo warms both arms
    equally.  The spans count pins down *what* the traced arm paid
    for (one root per replayed query plus its engine children).
    """
    config = REPLAY_SCENARIOS[TRACING_SCENARIO]

    def run_once(traced: bool) -> tuple[float, int]:
        tracer = Tracer()
        previous_tracer = previous_registry = None
        if traced:
            previous_tracer = install_tracer(tracer)
            previous_registry = install_registry(MetricsRegistry())
        t0 = time.perf_counter()
        try:
            replay_workload(config, seed=REPLAY_SEED)
        finally:
            if traced:
                install_tracer(previous_tracer)
                install_registry(previous_registry)
        return time.perf_counter() - t0, len(tracer.records())

    run_once(False)  # warmup, untimed
    ratios: list[float] = []
    plain_times: list[float] = []
    traced_times: list[float] = []
    spans = 0
    for _ in range(TRACING_RUNS):
        plain, _ = run_once(False)
        traced, spans = run_once(True)
        plain_times.append(plain)
        traced_times.append(traced)
        ratios.append(traced / plain)
    ratios.sort()
    median = ratios[len(ratios) // 2]
    return {
        "scenario": TRACING_SCENARIO,
        "runs": TRACING_RUNS,
        "plain_sec": round(min(plain_times), 4),
        "traced_sec": round(min(traced_times), 4),
        "spans": spans,
        "round_ratios": [round(r, 3) for r in ratios],
        "overhead_ratio": round(median, 3),
        "ceiling": TRACING_OVERHEAD_CEILING,
    }


def run_benchmark() -> dict:
    return {
        "generated_by": "benchmarks/bench_replay.py",
        "python": platform.python_version(),
        "replay": measure_replay(),
        "advisor": measure_advisor(),
        "persistence": measure_persistence(),
        "batched_serving": measure_batched(),
        "tracing_overhead": measure_tracing_overhead(),
        "floors": {"view_plan_ratio": RATIO_FLOORS},
    }


def write_report(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest wrapper (soft smoke assertions)
# ----------------------------------------------------------------------

def test_bench_replay(report=None):
    result = run_benchmark()
    write_report(result)
    if report is not None:
        report(json.dumps(result, indent=2))
    # Recorded aggregate speedup is well above 3; assert the acceptance
    # floor itself (per-seed numbers may flake under load, the aggregate
    # is stable).
    assert result["advisor"]["aggregate_speedup"] >= 3.0, result["advisor"]
    for name, row in result["replay"].items():
        assert row["queries_per_sec"] > 50, (name, row)
        floor = RATIO_FLOORS["replay"][name]
        assert row["view_plan_ratio"] >= floor, (name, floor, row)
    batched_ratio = result["batched_serving"]["view_plan_ratio"]
    assert batched_ratio >= RATIO_FLOORS["batched_serving"], batched_ratio
    # Persistence correctness is exact, not a perf threshold: a warm
    # disk-backed replay must be bit-identical to the in-memory one.
    persistence = result["persistence"]
    assert persistence["warm_counters_identical_to_memory"], persistence
    assert persistence["cold_counters_identical_to_memory"], persistence
    assert persistence["views_loaded_warm"] == persistence["views_saved_cold"]
    # Loading from the snapshot must beat re-evaluating by a wide margin
    # (recorded speedups are far higher; 2x is the anti-regression floor).
    assert persistence["materialize_speedup"] >= 2.0, persistence
    # Batched serving acceptance floor: >= 1.3x single-call throughput.
    batched = result["batched_serving"]["batched"]
    best = max(row["speedup_vs_single"] for row in batched.values())
    assert best >= 1.3, result["batched_serving"]
    # Tracing overhead: the 1.05 ceiling is enforced on the *committed*
    # record by bench_ratio_guard; here only a loose smoke bound, since
    # a loaded CI box can inflate a fresh measurement.
    overhead = result["tracing_overhead"]
    assert overhead["spans"] > 0, overhead
    assert overhead["overhead_ratio"] < 1.5, overhead


if __name__ == "__main__":
    outcome = run_benchmark()
    write_report(outcome)
    print(json.dumps(outcome, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
