"""Experiment F3 — Figure 3: branch relaxation (Lemma 4.12).

Reproduces the chain ``B ⊑ B_r// ⊑ B' ≡ B`` and measures the containment
checks over the all-wildcard chain patterns, where descendant-edge
expansion makes the canonical-model test do real work.
"""

from __future__ import annotations

from repro.core.containment import clear_cache, contains, equivalent
from repro.figures import fig3
from repro.patterns.serialize import to_xpath
from repro.reporting import format_table


def test_f3_report(benchmark, report):
    fig = benchmark.pedantic(fig3.verify, rounds=1, iterations=1)
    assert fig.ok, fig.summary()
    report(fig.summary())


def test_f3_relaxation_chain(benchmark, report):
    patterns = fig3.build()
    branch, relaxed, fully = patterns["B"], patterns["B_r//"], patterns["B'"]

    def chain():
        clear_cache()
        return (
            contains(branch, relaxed),
            contains(relaxed, fully),
            equivalent(fully, branch),
            equivalent(branch, relaxed),
        )

    results = benchmark(chain)
    assert all(results)
    report(
        format_table(
            ["claim", "holds"],
            [
                ["B ⊑ B_r//", results[0]],
                ["B_r// ⊑ B'", results[1]],
                ["B' ≡ B", results[2]],
                ["B ≡ B_r//", results[3]],
            ],
            title="F3: Figure 3 branch relaxation (Lemma 4.12)",
        )
    )


def test_f3_equivalence_only(benchmark):
    patterns = fig3.build()

    def run():
        clear_cache()
        return equivalent(patterns["B"], patterns["B_r//"])

    assert benchmark(run)
