"""Experiment F4 — Figure 4: correlation, extension and output lifting.

Reproduces §4.1.3/§5.3's three-way case analysis on (V, P1/P2/P3) and
measures the certificate engine on each query: Thm 4.16 directly (P1),
the §5.3 extension+lift chain (P2) and Corollary 5.7 = Prop 5.6 +
Thm 4.16 (P3).
"""

from __future__ import annotations

import pytest

from repro.core.rewrite import RewriteSolver
from repro.figures import fig4
from repro.patterns.serialize import to_xpath
from repro.reporting import format_table


def test_f4_report(benchmark, report):
    fig = benchmark.pedantic(fig4.verify, rounds=1, iterations=1)
    assert fig.ok, fig.summary()
    report(fig.summary())


@pytest.mark.parametrize("query_name", ["P1", "P2", "P3"])
def test_f4_certificate_engine(benchmark, query_name):
    patterns = fig4.build()
    solver = RewriteSolver()
    certificate = benchmark(
        solver.find_certificate, patterns[query_name], patterns["V"]
    )
    assert certificate is not None


def test_f4_case_table(benchmark, report):
    patterns = fig4.build()
    solver = RewriteSolver()
    rows = []

    def compute():
        for name in ("P1", "P2", "P3"):
            certificate = solver.find_certificate(patterns[name], patterns["V"])
            decision = solver.solve(patterns[name], patterns["V"])
            rows.append(
                [name, to_xpath(patterns[name]), certificate, decision.status.value]
            )

    benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            ["query", "pattern", "certificate", "solver outcome"],
            rows,
            title="F4: Figure 4 correlation/extension cases "
            f"(V = {to_xpath(patterns['V'])})",
        )
    )
