"""Experiment F1 — Figure 1: the rewriting example.

Reproduces the figure's claims (``R ∘ V ≡ P``; the merged node label is
glb of the merged labels; the solver rediscovers a rewriting in ≤ 2
equivalence tests) and times the three constituent operations:
composition, the equivalence check, and the full solver run.
"""

from __future__ import annotations

from repro.core.composition import compose
from repro.core.containment import clear_cache, equivalent
from repro.core.rewrite import RewriteSolver
from repro.figures import fig1
from repro.patterns.serialize import to_xpath
from repro.reporting import format_table


def test_f1_report(benchmark, report):
    fig = benchmark.pedantic(fig1.verify, rounds=1, iterations=1)
    assert fig.ok, fig.summary()
    report(fig.summary())


def test_f1_composition(benchmark):
    patterns = fig1.build()
    result = benchmark(compose, patterns["R"], patterns["V"])
    assert not result.is_empty


def test_f1_equivalence_check(benchmark):
    patterns = fig1.build()
    composition = compose(patterns["R"], patterns["V"])

    def run():
        clear_cache()
        return equivalent(composition, patterns["P"])

    assert benchmark(run)


def test_f1_solver_end_to_end(benchmark, report):
    patterns = fig1.build()
    solver = RewriteSolver()

    def run():
        clear_cache()
        return solver.solve(patterns["P"], patterns["V"])

    decision = benchmark(run)
    assert decision.found
    report(
        format_table(
            ["query", "view", "rewriting", "equivalence tests"],
            [[
                to_xpath(patterns["P"]),
                to_xpath(patterns["V"]),
                to_xpath(decision.rewriting),
                decision.equivalence_tests,
            ]],
            title="F1: Figure 1 rewriting example",
        )
    )
