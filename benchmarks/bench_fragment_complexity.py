"""Experiment C2 — PTIME sub-fragments vs. the coNP full fragment.

The paper's complexity landscape (Section 1, [14], [17]): equivalence —
and hence the rewriting decision — is PTIME on the three sub-fragments
and coNP-complete on ``XP{//,[],*}``.  This benchmark measures:

* the [17]-style baseline (homomorphism / word-automaton equivalence) on
  fragment instances, and
* the general solver's canonical-model equivalence on full-fragment
  instances with a growing number of descendant edges — the exponential
  mechanism (canonical model count = bound^edges) made visible.
"""

from __future__ import annotations

import pytest

from repro.baselines.xu_ozsoyoglu import rewrite_ptime
from repro.core.canonical import count_canonical_models, star_length
from repro.core.containment import STATS, clear_cache, equivalent
from repro.core.rewrite import RewriteSolver
from repro.patterns.fragments import Fragment
from repro.patterns.parse import parse_pattern
from repro.patterns.random import PatternConfig, random_rewrite_instance
from repro.reporting import format_table


def _fragment_instance(fragment: Fragment, seed: int):
    branch_prob = 0.0 if fragment is Fragment.NO_BRANCH else 0.4
    config = PatternConfig(depth=3, fragment=fragment, branch_prob=branch_prob)
    return random_rewrite_instance(config, seed=seed)


@pytest.mark.parametrize(
    "fragment",
    [Fragment.NO_WILDCARD, Fragment.NO_DESCENDANT, Fragment.NO_BRANCH],
    ids=lambda f: f.value,
)
def test_c2_ptime_baseline(benchmark, fragment):
    instances = [_fragment_instance(fragment, seed) for seed in range(10)]

    def run():
        return [rewrite_ptime(q, v).rewriting is not None for q, v in instances]

    results = benchmark(run)
    assert all(results)


@pytest.mark.parametrize("desc_edges", [1, 2, 3, 4])
def test_c2_conp_engine_scaling(benchmark, desc_edges):
    # Wildcard-adjacent descendant chains force the canonical engine.
    left = parse_pattern("a" + "//*" * desc_edges + "/e")
    right = parse_pattern("a/*" + "//*" * (desc_edges - 1) + "//e")

    def run():
        clear_cache()
        return equivalent(left, right)

    assert benchmark(run)


def test_c2_report(benchmark, report):
    rows = []
    benchmark.pedantic(lambda: _compute_rows(rows), rounds=1, iterations=1)
    _finish(rows, report)


def _compute_rows(rows):
    for fragment in (
        Fragment.NO_WILDCARD,
        Fragment.NO_DESCENDANT,
        Fragment.NO_BRANCH,
    ):
        query, view = _fragment_instance(fragment, seed=1)
        outcome = rewrite_ptime(query, view)
        rows.append(
            [
                outcome.fragment,
                "PTIME (hom / word automaton)",
                outcome.equivalence_tests,
                "found" if outcome.rewriting is not None else "none",
            ]
        )
    # Full fragment: canonical models blow up exponentially.
    for desc_edges in (1, 2, 3, 4):
        pattern = parse_pattern("a" + "//*" * desc_edges + "/e[x]")
        container = parse_pattern("a/*" + "//*" * (desc_edges - 1) + "//e[x]")
        clear_cache()
        STATS.reset()
        equivalent(pattern, container)
        rows.append(
            [
                f"XP{{//,[],*}} ({desc_edges} desc edges)",
                "coNP (canonical models)",
                STATS.canonical_models_checked,
                f"bound^edges = {count_canonical_models(pattern, star_length(container) + 2)}",
            ]
        )


def _finish(rows, report):
    report(
        format_table(
            ["fragment", "engine", "tests/models", "outcome"],
            rows,
            title="C2: complexity landscape (PTIME sub-fragments vs coNP)",
        )
    )
    assert len(rows) == 7
