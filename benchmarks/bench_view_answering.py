"""Experiment C5 — answering queries from materialized views.

The paper's motivating scenario (Section 2.4 and the caching literature
it cites): once ``V(t)`` is materialized, answering ``P`` as ``R(V(t))``
avoids touching the document.  This benchmark compares direct evaluation
against view-based answering on DBLP-like and XMark-like documents of
growing size; the speedup should grow with document size because the
view forest is much smaller than the document.
"""

from __future__ import annotations

import time

import pytest

from repro.core.embedding import evaluate, evaluate_forest
from repro.core.rewrite import RewriteSolver
from repro.patterns.parse import parse_pattern
from repro.reporting import format_table
from repro.views.engine import QueryEngine
from repro.views.store import ViewStore
from repro.xmltree.generate import dblp_like, xmark_like

QUERY = parse_pattern("dblp/article[author]/title")
VIEW = parse_pattern("dblp/article[author]")
SIZES = [50, 200, 800]


def _store(entries: int) -> ViewStore:
    store = ViewStore()
    store.add_document("bib", dblp_like(entries=entries, seed=11))
    store.define_view("articles", VIEW)
    return store


@pytest.mark.parametrize("entries", SIZES)
def test_c5_direct_evaluation(benchmark, entries):
    store = _store(entries)
    doc = store.document("bib")
    result = benchmark(evaluate, QUERY, doc)
    assert result


@pytest.mark.parametrize("entries", SIZES)
def test_c5_view_based_evaluation(benchmark, entries):
    store = _store(entries)
    engine = QueryEngine(store)
    decision = engine.rewrite_against(QUERY, "articles")
    assert decision.found
    forest = store.view_answers("articles", "bib")

    result = benchmark(evaluate_forest, decision.rewriting, forest)
    assert result == evaluate(QUERY, store.document("bib"))


def test_c5_report(benchmark, report):
    rows = []
    benchmark.pedantic(lambda: _compute_rows(rows), rounds=1, iterations=1)
    _finish(rows, report)


def _compute_rows(rows):
    for entries in SIZES:
        store = _store(entries)
        doc = store.document("bib")
        engine = QueryEngine(store)
        decision = engine.rewrite_against(QUERY, "articles")
        forest = store.view_answers("articles", "bib")

        start = time.perf_counter()
        for _ in range(5):
            direct = evaluate(QUERY, doc)
        direct_time = (time.perf_counter() - start) / 5

        start = time.perf_counter()
        for _ in range(5):
            via_view = evaluate_forest(decision.rewriting, forest)
        view_time = (time.perf_counter() - start) / 5

        assert via_view == direct
        rows.append(
            [
                doc.size(),
                len(forest),
                f"{direct_time * 1e3:.2f} ms",
                f"{view_time * 1e3:.2f} ms",
                f"{direct_time / view_time:.1f}x",
            ]
        )


def _finish(rows, report):
    report(
        format_table(
            ["|t| nodes", "|V(t)|", "direct P(t)", "view R(V(t))", "speedup"],
            rows,
            title="C5: materialized-view answering vs direct evaluation "
            f"(P = {QUERY!r}, V = {VIEW!r})",
        )
    )
    assert len(rows) == len(SIZES)


def _noisy_store(noise_entries: int) -> ViewStore:
    """A document with a fixed relevant region and growing noise.

    The view prunes the noise outright, so the stored forest is constant
    while direct evaluation has to scan the whole document — the regime
    where the paper's caching motivation pays off most.
    """
    document = dblp_like(entries=40, seed=13)
    noise_rng_doc = dblp_like(entries=noise_entries, seed=14)
    for entry in list(noise_rng_doc.root.children):
        entry.label = "proceedings"  # never matched by the view
        document.root.add_child(entry)
    store = ViewStore()
    store.add_document("bib", document)
    store.define_view("articles", VIEW)
    return store


def test_c5_selective_report(benchmark, report):
    rows = []

    def compute():
        for noise in (0, 400, 1600):
            store = _noisy_store(noise)
            doc = store.document("bib")
            engine = QueryEngine(store)
            decision = engine.rewrite_against(QUERY, "articles")
            forest = store.view_answers("articles", "bib")

            start = time.perf_counter()
            for _ in range(5):
                direct = evaluate(QUERY, doc)
            direct_time = (time.perf_counter() - start) / 5

            start = time.perf_counter()
            for _ in range(5):
                via_view = evaluate_forest(decision.rewriting, forest)
            view_time = (time.perf_counter() - start) / 5

            assert via_view == direct
            rows.append(
                [
                    doc.size(),
                    len(forest),
                    f"{direct_time * 1e3:.2f} ms",
                    f"{view_time * 1e3:.2f} ms",
                    f"{direct_time / view_time:.1f}x",
                ]
            )

    benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        format_table(
            ["|t| nodes", "|V(t)|", "direct P(t)", "view R(V(t))", "speedup"],
            rows,
            title="C5b: fixed relevant region + growing noise "
            "(speedup grows with document size)",
        )
    )
    speedups = [float(row[4].rstrip("x")) for row in rows]
    assert speedups[-1] > speedups[0], speedups


def test_c5_xmark_scenario(benchmark, report):
    store = ViewStore()
    store.add_document("site", xmark_like(items=120, people=60, auctions=60, seed=5))
    store.define_view("items", parse_pattern("site/regions/*/item"))
    engine = QueryEngine(store)
    query = parse_pattern("site/regions/*/item[mailbox]/name")
    decision = engine.rewrite_against(query, "items")
    assert decision.found
    forest = store.view_answers("items", "site")

    result = benchmark(evaluate_forest, decision.rewriting, forest)
    assert result == evaluate(query, store.document("site"))
