"""Experiment F2 — Figure 2: natural candidates and their compositions.

Reproduces the claims of Section 4's worked example (``P≥1`` fails,
``P≥1_r//`` succeeds; Theorem 4.10 applies) and measures candidate
construction — the step the paper calls linear-time — against the two
equivalence tests that decide the instance.
"""

from __future__ import annotations

from repro.core.candidates import natural_candidates
from repro.core.composition import compose
from repro.core.containment import clear_cache, equivalent
from repro.figures import fig2
from repro.patterns.serialize import to_xpath
from repro.reporting import format_table


def test_f2_report(benchmark, report):
    fig = benchmark.pedantic(fig2.verify, rounds=1, iterations=1)
    assert fig.ok, fig.summary()
    report(fig.summary())


def test_f2_candidate_construction(benchmark):
    patterns = fig2.build()
    query, view = patterns["P"], patterns["V"]
    candidates = benchmark(natural_candidates, query, view.depth)
    assert len(candidates) == 2


def test_f2_candidate_decision(benchmark, report):
    patterns = fig2.build()
    query, view = patterns["P"], patterns["V"]

    def decide():
        clear_cache()
        outcomes = []
        for candidate in natural_candidates(query, view.depth):
            outcomes.append(
                (candidate, equivalent(compose(candidate, view), query))
            )
        return outcomes

    outcomes = benchmark(decide)
    rows = [
        [to_xpath(candidate), "rewriting" if ok else "not a rewriting"]
        for candidate, ok in outcomes
    ]
    assert [ok for _, ok in outcomes] == [False, True]
    report(format_table(["candidate", "verdict"], rows, title="F2: Figure 2"))
