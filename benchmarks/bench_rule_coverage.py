"""Experiment C4 — rule coverage: which condition resolves each instance.

Section 6 claims the sufficient conditions "cover most of the queries and
views that are used in real-world scenarios".  This benchmark solves a
mixed random workload and tabulates, per decisive rule (natural-candidate
discovery, each completeness certificate, precheck refutations), how many
instances it resolved — plus condition-targeted workloads per theorem.
"""

from __future__ import annotations

from collections import Counter

from repro.core.containment import clear_cache
from repro.core.rewrite import RewriteSolver, RewriteStatus
from repro.reporting import format_table
from repro.workloads.instances import (
    InstanceConfig,
    condition_instance,
    make_instances,
)

WORKLOAD = make_instances(InstanceConfig(count=60, mutate_ratio=0.5), seed=7)
TIMED_WORKLOAD = WORKLOAD[:10]
CONDITIONS = ["thm-4.3", "thm-4.4", "thm-4.9", "thm-4.10", "thm-4.16", "gnf"]


def test_c4_mixed_workload(benchmark):
    solver = RewriteSolver(use_fallback=False)

    def run():
        clear_cache()
        return Counter(
            solver.solve(q, v).rule or "unresolved" for q, v, _ in TIMED_WORKLOAD
        )

    rules = benchmark(run)
    assert sum(rules.values()) == len(TIMED_WORKLOAD)


def test_c4_report(benchmark, report):
    solver = RewriteSolver(use_fallback=False)
    clear_cache()
    rules: Counter[str] = Counter()
    unresolved = 0

    def run():
        nonlocal unresolved
        for query, view, _ in WORKLOAD:
            result = solver.solve(query, view)
            rules[result.rule or "unresolved"] += 1
            if result.status is RewriteStatus.UNKNOWN:
                unresolved += 1

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = sorted(rules.items(), key=lambda item: -item[1])
    report(
        format_table(
            ["decisive rule", "instances"],
            rows,
            title=f"C4: rule coverage over {len(WORKLOAD)} mixed instances "
            f"({unresolved} unresolved)",
        )
    )
    resolved_fraction = 1 - unresolved / len(WORKLOAD)
    assert resolved_fraction >= 0.9, "conditions should cover most instances"


def test_c4_condition_targeted(benchmark, report):
    solver = RewriteSolver(use_fallback=False)
    rows = []

    def run():
        for condition in CONDITIONS:
            decided = 0
            total = 10
            for seed in range(total):
                query, view = condition_instance(condition, seed=seed)
                result = solver.solve(query, view)
                if result.status is not RewriteStatus.UNKNOWN:
                    decided += 1
            rows.append([condition, f"{decided}/{total}"])
            assert decided == total

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["targeted condition", "decided"],
            rows,
            title="C4b: per-condition workloads (each precondition forced)",
        )
    )
