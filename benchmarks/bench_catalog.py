"""Catalog benchmark — warm starts and sharded serving to JSON.

Three measurements, recorded to ``BENCH_catalog.json`` at the repo root
so future PRs can diff against this PR's baseline:

* **Warm-start speedup**: a fleet of documents is advised twice against
  the same SQLite catalog database — first cold (the advisor runs and
  its selections are persisted), then warm (selections and
  materializations load; the advisor never runs).  Re-advising is the
  dominant warm-start cost, so the acceptance floor is **5×** on the
  advise phase.

* **Replay bit-identity**: the multi-document replay
  (:func:`repro.workloads.replay.replay_catalog`) must produce
  bit-identical ``counters()`` for an in-memory run, a cold SQLite run
  and a warm SQLite run of the same config+seed — persistence changes
  where selections and forests come from, never what gets served.

* **Serving throughput and pool scaling**: one interleaved request
  stream over the fleet, served by :class:`repro.catalog.CatalogServer`
  inline (the deterministic mode) and across ≥2 process-pool sizes with
  document-affine sharding.  Every mode must return identical answers
  (asserted on the preorder-index encoding).  Scaling is *recorded*,
  not asserted — the reference container exposes a single CPU
  (``cpu_count`` lands in the JSON), so pool sizes cannot show wall
  gains there; on multi-core hosts the per-document planning work
  parallelizes across shards.

Run with:

    make bench-catalog    # or: PYTHONPATH=src python benchmarks/bench_catalog.py

The pytest wrapper runs the same measurements with soft assertions
(thresholds deliberately below recorded values to avoid flaking on slow
machines).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.catalog import Catalog, CatalogServer, CatalogSpec, DocumentSpec
from repro.core.intersect import (
    forced_spine_positions,
    fragment_views,
    spine_branches,
)
from repro.patterns.random import PatternConfig
from repro.views.engine import QueryEngine
from repro.views.store import ViewStore
from repro.workloads.replay import (
    CatalogReplayConfig,
    ServeReplayConfig,
    replay_catalog,
    replay_serve,
)
from repro.workloads.streams import StreamConfig, sample_stream
from repro.xmltree.generate import random_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_catalog.json"

#: Fleet shape shared by the measurements.
DOCUMENTS = 4
DOCUMENT_SIZE = 1_200
MAX_VIEWS = 3
BASE_SEED = 50

#: Advisor workload per document: descendant-heavy (the coNP regime) so
#: re-advising carries real cost — exactly what warm starts skip.
ADVISOR_STREAM = StreamConfig(
    length=30,
    templates=8,
    pattern=PatternConfig(depth=4, branch_prob=0.4, descendant_prob=0.5),
)

#: Serving stream per document: moderate repetition, so both planning
#: and the fold carry weight.
SERVE_STREAM = StreamConfig(
    length=200,
    templates=8,
    repeat_prob=0.35,
    specialize_prob=0.4,
    pattern=PatternConfig(depth=4, branch_prob=0.5, descendant_prob=0.5),
)

POOL_SIZES = (1, 2)
SERVE_BATCH = 100

#: Per document, up to this many serving templates are *fragmented*
#: into curated half-views (:func:`repro.core.intersect.fragment_views`)
#: that ride along as explicit views: each half over-approximates its
#: template, so only an intersection plan can serve it from views — the
#: multi-provider regime the view_plan_ratio floor guards.
FRAGMENTED_TEMPLATES_PER_DOC = 3

#: view_plan_ratio floors, embedded in the JSON and enforced by
#: ``benchmarks/bench_ratio_guard.py`` (``make bench-check``).  The
#: serving floor sits above the recorded pre-intersection baseline
#: (0.391): with the curated fragment views in place, losing the
#: intersection planner drops the ratio back below it.  Both serving
#: numbers come from a deterministic plan sequence, so any dip is a
#: planning regression.
RATIO_FLOORS = {
    "serving_view_plan_ratio": 0.40,
    "serving_intersection_plan_ratio": 0.005,
    "catalog_replay_view_plan_ratio": 0.75,
}

#: Replay-identity scenario (smaller: it runs three full replays).
REPLAY_CONFIG = dict(
    documents=3,
    stream=StreamConfig(length=60, templates=6),
    document_size=300,
    max_views=3,
    batch_size=12,
)
REPLAY_SEED = 9

#: Sustained-load scenario (PR 8): the asyncio front end under an
#: open-loop Poisson arrival stream.  Shared fleet shape for the two
#: runs; the arrival rates and the deadline are per-run below.
SUSTAINED_CONFIG = dict(
    documents=3,
    stream=StreamConfig(length=80, templates=6),
    document_size=300,
    max_views=3,
    batch_size=16,
)
SUSTAINED_SEED = 17
SUSTAINED_RATE = 3_000.0
OVERLOAD_RATE = 20_000.0
OVERLOAD_DEADLINE_SEC = 0.02

#: Replicated read tier scenario (PR 9): the same open-loop stream
#: served entirely by read replicas warm-started from the writer's
#: shipped snapshot log.  Measured at each replica count below.
REPLICATED_CONFIG = dict(
    documents=3,
    stream=StreamConfig(length=80, templates=6),
    document_size=300,
    max_views=3,
    batch_size=16,
)
REPLICATED_SEED = 23
REPLICA_COUNTS = (2, 4)


def _fleet():
    """The benchmark fleet: documents plus advisor/serving streams."""
    docs, advisor, serving = {}, {}, {}
    for index in range(DOCUMENTS):
        doc_id = f"doc-{index}"
        docs[doc_id] = random_tree(DOCUMENT_SIZE, seed=BASE_SEED + index)
        advisor[doc_id] = sample_stream(ADVISOR_STREAM, seed=BASE_SEED + index)
        serving[doc_id] = sample_stream(SERVE_STREAM, seed=900 + index)
    return docs, advisor, serving


def measure_warm_start() -> dict:
    """Advise the fleet cold, then warm, against one SQLite database."""
    docs, advisor, _ = _fleet()

    def advise_all(catalog: Catalog) -> float:
        t0 = time.perf_counter()
        for doc_id in docs:
            catalog.advise(
                doc_id,
                advisor[doc_id].templates,
                weights=advisor[doc_id].template_weights(),
                max_views=MAX_VIEWS,
            )
        return time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "catalog.db")
        with Catalog(db_path=db_path) as catalog:
            for doc_id, tree in docs.items():
                catalog.register(doc_id, tree)
            cold_sec = advise_all(catalog)
            cold_stats = catalog.backend_stats()
        with Catalog(db_path=db_path) as catalog:
            for doc_id, tree in docs.items():
                catalog.register(doc_id, tree)
            warm_sec = advise_all(catalog)
            warm_stats = catalog.backend_stats()
            views = {
                doc_id: list(catalog.entry(doc_id).views) for doc_id in docs
            }
    assert cold_stats["selection_saves"] == DOCUMENTS, cold_stats
    assert warm_stats["selection_hits"] == DOCUMENTS, warm_stats
    assert warm_stats["saves"] == 0, warm_stats  # forests loaded, not rebuilt
    return {
        "documents": DOCUMENTS,
        "document_nodes": DOCUMENT_SIZE,
        "advisor_queries_per_doc": ADVISOR_STREAM.length,
        "cold_advise_sec": round(cold_sec, 4),
        "warm_advise_sec": round(warm_sec, 4),
        "speedup": round(cold_sec / warm_sec, 2),
        "views_per_doc": {doc_id: len(names) for doc_id, names in views.items()},
        "selections_loaded_warm": warm_stats["selection_hits"],
        "materializations_loaded_warm": warm_stats["hits"],
    }


def measure_replay_identity() -> dict:
    """Memory vs cold-SQLite vs warm-SQLite catalog replays."""
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "catalog.db"
        memory = replay_catalog(
            CatalogReplayConfig(**REPLAY_CONFIG), seed=REPLAY_SEED
        )
        cold = replay_catalog(
            CatalogReplayConfig(**REPLAY_CONFIG, db_path=db_path),
            seed=REPLAY_SEED,
        )
        warm = replay_catalog(
            CatalogReplayConfig(**REPLAY_CONFIG, db_path=db_path),
            seed=REPLAY_SEED,
        )
    return {
        "scenario": (
            f"{REPLAY_CONFIG['documents']} docs x "
            f"{REPLAY_CONFIG['stream'].length} queries"
        ),
        "queries": memory.queries,
        "view_plan_ratio": round(memory.view_plan_ratio, 3),
        "memory_queries_per_sec": round(memory.queries_per_sec, 2),
        "warm_queries_per_sec": round(warm.queries_per_sec, 2),
        "warm_selections": warm.warm_selections,
        "cold_counters_identical_to_memory": cold.counters() == memory.counters(),
        "warm_counters_identical_to_memory": warm.counters() == memory.counters(),
    }


def _intersection_fragments(templates, tree) -> list:
    """Curated half-views that answer their template only by intersection.

    Each candidate pair from :func:`fragment_views` is probed against a
    throwaway two-view engine; only pairs the engine plans as
    ``"intersection"`` ride along (a fragment whose dropped branches
    are implied by the rest still answers single-view — see the
    function's docstring — and would inflate the single-view ratio
    instead).
    """
    halves: list = []
    for template in templates:
        if len(halves) >= 2 * FRAGMENTED_TEMPLATES_PER_DOC:
            break
        for pair in _fragment_candidates(template):
            probe_store = ViewStore()
            probe_store.add_document("probe", tree)
            probe_store.define_view("half-0", pair[0])
            probe_store.define_view("half-1", pair[1])
            probe = QueryEngine(probe_store, tractable_only=False)
            if probe.plan(template, "probe").kind == "intersection":
                halves.extend(pair)
                break
    return halves


def _fragment_candidates(template):
    """Candidate half-view pairs: eligible positions × a few splits.

    Random templates often carry branches implied by a sibling or by the
    spine, so the default parity split can leave one half equivalent to
    the full prefix; singleton splits (one branch alone vs the rest)
    give the probe more chances to find a pair that only answers by
    intersection.
    """
    if template.is_empty or template.depth < 1:
        return
    forced = forced_spine_positions(template.selection_axes())
    branches = spine_branches(template)
    for position in range(template.depth - 1):
        if not forced[position] or len(branches[position]) < 2:
            continue
        splits = [None] + [(j,) for j in range(len(branches[position]))]
        for split in splits:
            pair = fragment_views(template, position=position, split=split)
            if pair is not None:
                yield pair


def measure_serving() -> dict:
    """Inline vs pooled serving throughput on one interleaved stream."""
    docs, advisor, serving = _fleet()
    requests = []
    for position in range(SERVE_STREAM.length):
        for doc_id in docs:
            requests.append((doc_id, serving[doc_id].queries[position]))

    fragments = {
        doc_id: _intersection_fragments(
            serving[doc_id].templates, docs[doc_id]
        )
        for doc_id in docs
    }

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "catalog.db")
        spec = CatalogSpec(
            documents=tuple(
                DocumentSpec.from_tree(
                    doc_id,
                    tree,
                    advisor[doc_id].templates,
                    advisor[doc_id].template_weights(),
                    views=fragments[doc_id],
                )
                for doc_id, tree in docs.items()
            ),
            db_path=db_path,
            max_views=MAX_VIEWS,
            tractable_only=False,
        )
        result = {
            "requests": len(requests),
            "documents": DOCUMENTS,
            "batch_size": SERVE_BATCH,
            "cpu_count": os.cpu_count(),
            "fragment_views": {
                doc_id: len(halves) for doc_id, halves in fragments.items()
            },
            "pools": {},
        }
        with CatalogServer(spec, workers=0) as server:
            t0 = time.perf_counter()
            inline = server.serve_requests(requests, batch_size=SERVE_BATCH)
            inline_sec = time.perf_counter() - t0
        baseline = inline.counters()
        result["inline_queries_per_sec"] = round(len(requests) / inline_sec, 2)
        # Rewritten plans of either kind: single-view or intersection.
        result["view_plan_ratio"] = round(
            sum(
                1
                for kind in inline.plan_kinds
                if kind in ("view", "intersection")
            )
            / len(requests),
            3,
        )
        result["intersection_plan_ratio"] = round(
            sum(1 for kind in inline.plan_kinds if kind == "intersection")
            / len(requests),
            3,
        )
        for workers in POOL_SIZES:
            with CatalogServer(spec, workers=workers) as server:
                # One request per document first: triggers each shard's
                # worker build (a warm start from the SQLite database)
                # outside the timed window.
                server.serve_requests(
                    [(doc_id, serving[doc_id].queries[0]) for doc_id in docs],
                    batch_size=1,
                )
                t0 = time.perf_counter()
                pooled = server.serve_requests(
                    requests, batch_size=SERVE_BATCH
                )
                pooled_sec = time.perf_counter() - t0
            assert pooled.counters() == baseline, (
                f"pool size {workers} diverged from inline answers"
            )
            result["pools"][str(workers)] = {
                "queries_per_sec": round(len(requests) / pooled_sec, 2),
                "speedup_vs_inline": round(inline_sec / pooled_sec, 2),
            }
    return result


def measure_sustained_load() -> dict:
    """The async front end under open-loop Poisson arrivals (PR 8).

    Two runs over the same derived fleet and request sequence:

    * **sustained** — backpressure mode (``overflow="wait"``), no
      deadline: every request must be served and every answer must be
      bit-identical to the synchronous inline path (this is the half
      ``bench_ratio_guard.py`` enforces from the committed record);
    * **overload** — arrivals far above service capacity with a short
      per-request deadline and ``overflow="reject"``: sheds and
      rejections are *recorded* (wall-clock-dependent by design), and
      every surviving answer must still be bit-identical.

    Latency percentiles are measured from each request's *scheduled*
    arrival time, so queueing delay is never hidden (no coordinated
    omission).
    """
    sustained = replay_serve(
        ServeReplayConfig(
            **SUSTAINED_CONFIG,
            arrival_rate=SUSTAINED_RATE,
            overflow="wait",
        ),
        seed=SUSTAINED_SEED,
    )
    assert sustained.served == sustained.requests, (
        "backpressure mode must serve everything: "
        f"{sustained.served}/{sustained.requests}"
    )
    assert sustained.answers_identical, "async answers diverged from inline"
    overload = replay_serve(
        ServeReplayConfig(
            **SUSTAINED_CONFIG,
            arrival_rate=OVERLOAD_RATE,
            timeout=OVERLOAD_DEADLINE_SEC,
            max_pending=32,
            overflow="reject",
        ),
        seed=SUSTAINED_SEED,
    )
    assert overload.mismatches == 0, "a surviving answer diverged"
    return {
        "scenario": (
            f"{SUSTAINED_CONFIG['documents']} docs x "
            f"{SUSTAINED_CONFIG['stream'].length} queries, open-loop"
        ),
        "requests": sustained.requests,
        "arrival_rate_per_sec": SUSTAINED_RATE,
        "served": sustained.served,
        "queries_per_sec": round(sustained.queries_per_sec, 2),
        "latency_ms": {
            "p50": round(sustained.latency_ms(0.50), 3),
            "p95": round(sustained.latency_ms(0.95), 3),
            "p99": round(sustained.latency_ms(0.99), 3),
        },
        "answers_identical_to_inline": (
            sustained.answers_identical and overload.mismatches == 0
        ),
        "overload": {
            "arrival_rate_per_sec": OVERLOAD_RATE,
            "deadline_ms": OVERLOAD_DEADLINE_SEC * 1000.0,
            "served": overload.served,
            "shed_deadline": overload.shed,
            "rejected_admission": overload.rejected,
            "shed_rate": round(overload.shed_rate, 3),
            "latency_ms": {
                "p50": round(overload.latency_ms(0.50), 3),
                "p95": round(overload.latency_ms(0.95), 3),
                "p99": round(overload.latency_ms(0.99), 3),
            },
        },
    }


def measure_replicated_load() -> dict:
    """The open-loop stream through the replicated read tier (PR 9).

    One run per replica count: every read is dispatched round-robin
    across replicas warm-started from the writer's shipped snapshot
    log (the writer never answers — ``writer_fallbacks`` must stay 0
    with no faults injected), and every answer must be bit-identical
    to the synchronous writer-inline baseline.  Throughput and
    latency are recorded; the bit-identity flags are what
    ``bench_ratio_guard.py`` enforces from the committed record.
    """
    tiers: dict[str, dict] = {}
    requests = 0
    for count in REPLICA_COUNTS:
        outcome = replay_serve(
            ServeReplayConfig(
                **REPLICATED_CONFIG,
                arrival_rate=SUSTAINED_RATE,
                overflow="wait",
                replicas=count,
            ),
            seed=REPLICATED_SEED,
        )
        assert outcome.served == outcome.requests, (
            f"{count} replicas: {outcome.served}/{outcome.requests} served"
        )
        assert outcome.answers_identical, (
            f"{count} replicas: a replica answer diverged from inline"
        )
        replication = outcome.replication
        assert replication["writer_fallbacks"] == 0, replication
        assert replication["replica_answers"] == outcome.requests, replication
        requests = outcome.requests
        tiers[str(count)] = {
            "queries_per_sec": round(outcome.queries_per_sec, 2),
            "latency_ms": {
                "p50": round(outcome.latency_ms(0.50), 3),
                "p99": round(outcome.latency_ms(0.99), 3),
            },
            "snapshot_records": replication["writer_seqno"],
            "records_shipped": replication["records_shipped"],
            "replica_answers": replication["replica_answers"],
            "replicas_warm": all(
                row["warm"] for row in replication["replicas"]
            ),
            "answers_identical_to_inline": outcome.answers_identical,
        }
    return {
        "scenario": (
            f"{REPLICATED_CONFIG['documents']} docs x "
            f"{REPLICATED_CONFIG['stream'].length} queries, open-loop, "
            "replica-served"
        ),
        "requests": requests,
        "arrival_rate_per_sec": SUSTAINED_RATE,
        "tiers": tiers,
    }


def run_benchmark() -> dict:
    return {
        "generated_by": "benchmarks/bench_catalog.py",
        "python": platform.python_version(),
        "warm_start": measure_warm_start(),
        "replay_identity": measure_replay_identity(),
        "serving": measure_serving(),
        "sustained_load": measure_sustained_load(),
        "replicated_load": measure_replicated_load(),
        "floors": RATIO_FLOORS,
    }


def write_report(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest wrapper (soft smoke assertions)
# ----------------------------------------------------------------------

def test_bench_catalog(report=None):
    result = run_benchmark()
    write_report(result)
    if report is not None:
        report(json.dumps(result, indent=2))
    # Warm-start acceptance floor: recorded speedups are far higher
    # (re-advising is containment-heavy; loading a selection is a
    # SQLite row plus a parse), 5x is the floor itself.
    assert result["warm_start"]["speedup"] >= 5.0, result["warm_start"]
    identity = result["replay_identity"]
    assert identity["cold_counters_identical_to_memory"], identity
    assert identity["warm_counters_identical_to_memory"], identity
    assert (
        identity["view_plan_ratio"]
        >= RATIO_FLOORS["catalog_replay_view_plan_ratio"]
    ), identity
    serving = result["serving"]
    assert serving["inline_queries_per_sec"] > 50, serving
    assert len(serving["pools"]) >= 2, serving
    assert (
        serving["view_plan_ratio"] >= RATIO_FLOORS["serving_view_plan_ratio"]
    ), serving
    assert (
        serving["intersection_plan_ratio"]
        >= RATIO_FLOORS["serving_intersection_plan_ratio"]
    ), serving
    # Answers across pool sizes were asserted identical inside the
    # measurement; here only guard against pathological slowdowns (the
    # reference container has one CPU, so no wall-clock gain is
    # required of the pools).
    for workers, row in serving["pools"].items():
        assert row["queries_per_sec"] > 25, (workers, row)
    sustained = result["sustained_load"]
    assert sustained["answers_identical_to_inline"], sustained
    assert sustained["served"] == sustained["requests"], sustained
    assert sustained["latency_ms"]["p50"] <= sustained["latency_ms"]["p99"]
    replicated = result["replicated_load"]
    assert set(replicated["tiers"]) == {
        str(count) for count in REPLICA_COUNTS
    }, replicated
    for count, tier in replicated["tiers"].items():
        assert tier["answers_identical_to_inline"], (count, tier)
        assert tier["replicas_warm"], (count, tier)
        assert tier["queries_per_sec"] > 25, (count, tier)


if __name__ == "__main__":
    outcome = run_benchmark()
    write_report(outcome)
    print(json.dumps(outcome, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
