"""Catalog benchmark — warm starts and sharded serving to JSON.

Three measurements, recorded to ``BENCH_catalog.json`` at the repo root
so future PRs can diff against this PR's baseline:

* **Warm-start speedup**: a fleet of documents is advised twice against
  the same SQLite catalog database — first cold (the advisor runs and
  its selections are persisted), then warm (selections and
  materializations load; the advisor never runs).  Re-advising is the
  dominant warm-start cost, so the acceptance floor is **5×** on the
  advise phase.

* **Replay bit-identity**: the multi-document replay
  (:func:`repro.workloads.replay.replay_catalog`) must produce
  bit-identical ``counters()`` for an in-memory run, a cold SQLite run
  and a warm SQLite run of the same config+seed — persistence changes
  where selections and forests come from, never what gets served.

* **Serving throughput and pool scaling**: one interleaved request
  stream over the fleet, served by :class:`repro.catalog.CatalogServer`
  inline (the deterministic mode) and across ≥2 process-pool sizes with
  document-affine sharding.  Every mode must return identical answers
  (asserted on the preorder-index encoding).  Scaling is *recorded*,
  not asserted — the reference container exposes a single CPU
  (``cpu_count`` lands in the JSON), so pool sizes cannot show wall
  gains there; on multi-core hosts the per-document planning work
  parallelizes across shards.

Run with:

    make bench-catalog    # or: PYTHONPATH=src python benchmarks/bench_catalog.py

The pytest wrapper runs the same measurements with soft assertions
(thresholds deliberately below recorded values to avoid flaking on slow
machines).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.catalog import Catalog, CatalogServer, CatalogSpec, DocumentSpec
from repro.patterns.random import PatternConfig
from repro.workloads.replay import CatalogReplayConfig, replay_catalog
from repro.workloads.streams import StreamConfig, sample_stream
from repro.xmltree.generate import random_tree

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_catalog.json"

#: Fleet shape shared by the measurements.
DOCUMENTS = 4
DOCUMENT_SIZE = 1_200
MAX_VIEWS = 3
BASE_SEED = 50

#: Advisor workload per document: descendant-heavy (the coNP regime) so
#: re-advising carries real cost — exactly what warm starts skip.
ADVISOR_STREAM = StreamConfig(
    length=30,
    templates=8,
    pattern=PatternConfig(depth=4, branch_prob=0.4, descendant_prob=0.5),
)

#: Serving stream per document: moderate repetition, so both planning
#: and the fold carry weight.
SERVE_STREAM = StreamConfig(
    length=200,
    templates=8,
    repeat_prob=0.35,
    specialize_prob=0.4,
    pattern=PatternConfig(depth=4, branch_prob=0.5, descendant_prob=0.5),
)

POOL_SIZES = (1, 2)
SERVE_BATCH = 100

#: Replay-identity scenario (smaller: it runs three full replays).
REPLAY_CONFIG = dict(
    documents=3,
    stream=StreamConfig(length=60, templates=6),
    document_size=300,
    max_views=3,
    batch_size=12,
)
REPLAY_SEED = 9


def _fleet():
    """The benchmark fleet: documents plus advisor/serving streams."""
    docs, advisor, serving = {}, {}, {}
    for index in range(DOCUMENTS):
        doc_id = f"doc-{index}"
        docs[doc_id] = random_tree(DOCUMENT_SIZE, seed=BASE_SEED + index)
        advisor[doc_id] = sample_stream(ADVISOR_STREAM, seed=BASE_SEED + index)
        serving[doc_id] = sample_stream(SERVE_STREAM, seed=900 + index)
    return docs, advisor, serving


def measure_warm_start() -> dict:
    """Advise the fleet cold, then warm, against one SQLite database."""
    docs, advisor, _ = _fleet()

    def advise_all(catalog: Catalog) -> float:
        t0 = time.perf_counter()
        for doc_id in docs:
            catalog.advise(
                doc_id,
                advisor[doc_id].templates,
                weights=advisor[doc_id].template_weights(),
                max_views=MAX_VIEWS,
            )
        return time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "catalog.db")
        with Catalog(db_path=db_path) as catalog:
            for doc_id, tree in docs.items():
                catalog.register(doc_id, tree)
            cold_sec = advise_all(catalog)
            cold_stats = catalog.backend_stats()
        with Catalog(db_path=db_path) as catalog:
            for doc_id, tree in docs.items():
                catalog.register(doc_id, tree)
            warm_sec = advise_all(catalog)
            warm_stats = catalog.backend_stats()
            views = {
                doc_id: list(catalog.entry(doc_id).views) for doc_id in docs
            }
    assert cold_stats["selection_saves"] == DOCUMENTS, cold_stats
    assert warm_stats["selection_hits"] == DOCUMENTS, warm_stats
    assert warm_stats["saves"] == 0, warm_stats  # forests loaded, not rebuilt
    return {
        "documents": DOCUMENTS,
        "document_nodes": DOCUMENT_SIZE,
        "advisor_queries_per_doc": ADVISOR_STREAM.length,
        "cold_advise_sec": round(cold_sec, 4),
        "warm_advise_sec": round(warm_sec, 4),
        "speedup": round(cold_sec / warm_sec, 2),
        "views_per_doc": {doc_id: len(names) for doc_id, names in views.items()},
        "selections_loaded_warm": warm_stats["selection_hits"],
        "materializations_loaded_warm": warm_stats["hits"],
    }


def measure_replay_identity() -> dict:
    """Memory vs cold-SQLite vs warm-SQLite catalog replays."""
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "catalog.db"
        memory = replay_catalog(
            CatalogReplayConfig(**REPLAY_CONFIG), seed=REPLAY_SEED
        )
        cold = replay_catalog(
            CatalogReplayConfig(**REPLAY_CONFIG, db_path=db_path),
            seed=REPLAY_SEED,
        )
        warm = replay_catalog(
            CatalogReplayConfig(**REPLAY_CONFIG, db_path=db_path),
            seed=REPLAY_SEED,
        )
    return {
        "scenario": (
            f"{REPLAY_CONFIG['documents']} docs x "
            f"{REPLAY_CONFIG['stream'].length} queries"
        ),
        "queries": memory.queries,
        "memory_queries_per_sec": round(memory.queries_per_sec, 2),
        "warm_queries_per_sec": round(warm.queries_per_sec, 2),
        "warm_selections": warm.warm_selections,
        "cold_counters_identical_to_memory": cold.counters() == memory.counters(),
        "warm_counters_identical_to_memory": warm.counters() == memory.counters(),
    }


def measure_serving() -> dict:
    """Inline vs pooled serving throughput on one interleaved stream."""
    docs, advisor, serving = _fleet()
    requests = []
    for position in range(SERVE_STREAM.length):
        for doc_id in docs:
            requests.append((doc_id, serving[doc_id].queries[position]))

    with tempfile.TemporaryDirectory() as tmp:
        db_path = str(Path(tmp) / "catalog.db")
        spec = CatalogSpec(
            documents=tuple(
                DocumentSpec.from_tree(
                    doc_id,
                    tree,
                    advisor[doc_id].templates,
                    advisor[doc_id].template_weights(),
                )
                for doc_id, tree in docs.items()
            ),
            db_path=db_path,
            max_views=MAX_VIEWS,
        )
        result = {
            "requests": len(requests),
            "documents": DOCUMENTS,
            "batch_size": SERVE_BATCH,
            "cpu_count": os.cpu_count(),
            "pools": {},
        }
        with CatalogServer(spec, workers=0) as server:
            t0 = time.perf_counter()
            inline = server.serve_requests(requests, batch_size=SERVE_BATCH)
            inline_sec = time.perf_counter() - t0
        baseline = inline.counters()
        result["inline_queries_per_sec"] = round(len(requests) / inline_sec, 2)
        result["view_plan_ratio"] = round(
            sum(1 for kind in inline.plan_kinds if kind == "view")
            / len(requests),
            3,
        )
        for workers in POOL_SIZES:
            with CatalogServer(spec, workers=workers) as server:
                # One request per document first: triggers each shard's
                # worker build (a warm start from the SQLite database)
                # outside the timed window.
                server.serve_requests(
                    [(doc_id, serving[doc_id].queries[0]) for doc_id in docs],
                    batch_size=1,
                )
                t0 = time.perf_counter()
                pooled = server.serve_requests(
                    requests, batch_size=SERVE_BATCH
                )
                pooled_sec = time.perf_counter() - t0
            assert pooled.counters() == baseline, (
                f"pool size {workers} diverged from inline answers"
            )
            result["pools"][str(workers)] = {
                "queries_per_sec": round(len(requests) / pooled_sec, 2),
                "speedup_vs_inline": round(inline_sec / pooled_sec, 2),
            }
    return result


def run_benchmark() -> dict:
    return {
        "generated_by": "benchmarks/bench_catalog.py",
        "python": platform.python_version(),
        "warm_start": measure_warm_start(),
        "replay_identity": measure_replay_identity(),
        "serving": measure_serving(),
    }


def write_report(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest wrapper (soft smoke assertions)
# ----------------------------------------------------------------------

def test_bench_catalog(report=None):
    result = run_benchmark()
    write_report(result)
    if report is not None:
        report(json.dumps(result, indent=2))
    # Warm-start acceptance floor: recorded speedups are far higher
    # (re-advising is containment-heavy; loading a selection is a
    # SQLite row plus a parse), 5x is the floor itself.
    assert result["warm_start"]["speedup"] >= 5.0, result["warm_start"]
    identity = result["replay_identity"]
    assert identity["cold_counters_identical_to_memory"], identity
    assert identity["warm_counters_identical_to_memory"], identity
    serving = result["serving"]
    assert serving["inline_queries_per_sec"] > 50, serving
    assert len(serving["pools"]) >= 2, serving
    # Answers across pool sizes were asserted identical inside the
    # measurement; here only guard against pathological slowdowns (the
    # reference container has one CPU, so no wall-clock gain is
    # required of the pools).
    for workers, row in serving["pools"].items():
        assert row["queries_per_sec"] > 25, (workers, row)


if __name__ == "__main__":
    outcome = run_benchmark()
    write_report(outcome)
    print(json.dumps(outcome, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
