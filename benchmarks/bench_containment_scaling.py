"""Experiment C7 — the coNP mechanism: canonical-model counts.

The complete containment test enumerates ``bound^(descendant edges)``
canonical models where ``bound = star_length(container) + 2``.  This
benchmark measures containment latency against both parameters and
reports the model counts — the concrete shape of [14]'s coNP bound as
inherited by the rewriting problem.
"""

from __future__ import annotations

import pytest

from repro.core.canonical import count_canonical_models, star_length
from repro.core.containment import (
    STATS,
    canonical_containment,
    clear_cache,
    expansion_bound,
)
from repro.patterns.parse import parse_pattern
from repro.reporting import format_table


def _chain_pattern(desc_edges: int):
    """A pattern with the given number of descendant edges plus a branch
    (to keep it outside the PTIME fragments)."""
    return parse_pattern("a" + "//*" * desc_edges + "/e[x]")


def _container(star_chain: int):
    return parse_pattern("a//" + "/".join(["*"] * star_chain) + "/e[x]")


@pytest.mark.parametrize("desc_edges", [1, 2, 3])
def test_c7_scaling_in_descendant_edges(benchmark, desc_edges):
    contained = _chain_pattern(desc_edges)
    container = parse_pattern("a//e[x]")

    def run():
        clear_cache()
        return canonical_containment(contained, container)

    assert benchmark(run)


@pytest.mark.parametrize("star_chain", [1, 2, 3, 4])
def test_c7_scaling_in_star_length(benchmark, star_chain):
    contained = parse_pattern("a//b//e[x]")
    container = _container(star_chain)

    def run():
        clear_cache()
        return canonical_containment(contained, container)

    benchmark(run)


def test_c7_report(benchmark, report):
    rows = []
    benchmark.pedantic(lambda: _compute_rows(rows), rounds=1, iterations=1)
    _finish(rows, report)


def _compute_rows(rows):
    for desc_edges in (1, 2, 3, 4):
        contained = _chain_pattern(desc_edges)
        container = parse_pattern("a//e[x]")
        bound = expansion_bound(container)
        clear_cache()
        STATS.reset()
        canonical_containment(contained, container)
        rows.append(
            [
                desc_edges,
                star_length(container),
                bound,
                count_canonical_models(contained, bound),
                STATS.canonical_models_checked,
            ]
        )


def _finish(rows, report):
    report(
        format_table(
            ["# desc edges", "star(Q)", "bound", "models (bound^m)", "checked"],
            rows,
            title="C7: canonical-model counts — the coNP mechanism",
        )
    )
    # Exponential growth shape: models = bound ** (descendant edges).
    for desc_edges, _star, bound, models, checked in rows:
        assert models == bound ** desc_edges
        assert checked == models  # containment holds, so none short-circuits


def test_c7_bitset_speedup_vs_seed(benchmark, report):
    """Bitset engine vs the preserved seed engine, ≥ 4 descendant edges.

    The committed baseline lives in ``BENCH_containment.json`` (written by
    ``benchmarks/bench_perf_guard.py``); this benchmark reproduces the
    comparison inline with a conservative floor assertion.
    """
    import time

    from repro.core.embedding_reference import reference_canonical_containment

    rows = []

    def compare():
        for desc_edges in (4, 5):
            contained = _chain_pattern(desc_edges)
            container = parse_pattern("a//e[x]")
            assert canonical_containment(
                contained, container
            ) == reference_canonical_containment(contained, container)
            timings = []
            for fn in (canonical_containment, reference_canonical_containment):
                start = time.perf_counter()
                rounds = 0
                while time.perf_counter() - start < 0.5:
                    fn(contained, container)
                    rounds += 1
                timings.append(rounds / (time.perf_counter() - start))
            bitset_ops, seed_ops = timings
            rows.append([desc_edges, f"{bitset_ops:.1f}", f"{seed_ops:.1f}",
                         f"{bitset_ops / seed_ops:.1f}x"])

    benchmark.pedantic(compare, rounds=1, iterations=1)
    report(
        format_table(
            ["# desc edges", "bitset ops/s", "seed ops/s", "speedup"],
            rows,
            title="C7b: bitset engine speedup over the seed implementation",
        )
    )
    for row in rows:
        assert float(row[3].rstrip("x")) >= 3.0  # recorded: 5–17x
