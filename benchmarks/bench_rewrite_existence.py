"""Experiment C3 — "our algorithms involve only a few containment tests".

Section 1 claims the practical value of the approach: a rewriting
decision costs at most two equivalence tests on resolved instances.
This benchmark runs the solver over mixed workloads (rewritable +
mutated) and reports the distribution of equivalence-test counts and
decision outcomes, plus end-to-end latency.
"""

from __future__ import annotations

from collections import Counter

from repro.core.containment import clear_cache
from repro.core.rewrite import RewriteSolver, RewriteStatus
from repro.reporting import format_table
from repro.workloads.instances import InstanceConfig, make_instances

WORKLOAD = make_instances(InstanceConfig(count=40, mutate_ratio=0.5), seed=2024)
TIMED_WORKLOAD = WORKLOAD[:10]


def test_c3_solver_throughput(benchmark):
    solver = RewriteSolver(use_fallback=False)

    def run():
        clear_cache()
        return [solver.solve(q, v).status for q, v, _ in TIMED_WORKLOAD]

    statuses = benchmark(run)
    assert len(statuses) == len(TIMED_WORKLOAD)


def test_c3_report(benchmark, report):
    solver = RewriteSolver(use_fallback=False)
    clear_cache()
    test_counts: Counter[int] = Counter()
    outcomes: Counter[str] = Counter()

    def run():
        for query, view, _ in WORKLOAD:
            result = solver.solve(query, view)
            test_counts[result.equivalence_tests] += 1
            outcomes[result.status.value] += 1

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{tests} equivalence test(s)", count]
        for tests, count in sorted(test_counts.items())
    ]
    rows += [[f"outcome: {status}", count] for status, count in sorted(outcomes.items())]
    report(
        format_table(
            ["measure", "instances"],
            rows,
            title=f"C3: tests per decision over {len(WORKLOAD)} instances "
            "(claim: ≤ 2 on resolved cases)",
        )
    )
    decided = outcomes["found"] + outcomes["no-rewriting"]
    assert decided == len(WORKLOAD), "all workload instances should resolve"
    assert max(test_counts) <= 2
