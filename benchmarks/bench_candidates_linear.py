"""Experiment C1 — "natural candidates can be constructed in linear time".

Section 4 claims the two natural candidates are constructible in linear
time.  This benchmark measures construction cost against query size for
a fixed view depth; the reported series should grow linearly in |P|
(constant per-node cost), in sharp contrast to the equivalence tests
that follow it in the solver.
"""

from __future__ import annotations

import time

import pytest

from repro.core.candidates import natural_candidates
from repro.patterns.random import PatternConfig, random_pattern
from repro.reporting import format_series

SIZES = [4, 8, 16, 32, 64]


def _query_of_depth(depth: int):
    config = PatternConfig(
        depth=depth, branch_prob=0.6, max_branch_size=2, wildcard_prob=0.2
    )
    return random_pattern(config, seed=depth)


@pytest.mark.parametrize("depth", SIZES)
def test_c1_candidate_construction(benchmark, depth):
    query = _query_of_depth(depth)
    candidates = benchmark(natural_candidates, query, depth // 2)
    assert 1 <= len(candidates) <= 2


def test_c1_linear_shape(benchmark, report):
    points = []

    def compute():
        _measure(points)

    benchmark.pedantic(compute, rounds=1, iterations=1)
    _finish(points, report)


def _measure(points):
    for depth in SIZES:
        query = _query_of_depth(depth)
        k = depth // 2
        start = time.perf_counter()
        repeats = 200
        for _ in range(repeats):
            natural_candidates(query, k)
        elapsed = (time.perf_counter() - start) / repeats
        points.append((query.size(), elapsed * 1e6))


def _finish(points, report):
    report(
        format_series("C1: candidate construction (|P| -> µs/op)", points)
    )
    # Linear shape check: cost per node roughly constant (within 8x of
    # the smallest ratio, generous for interpreter noise).
    ratios = [cost / size for size, cost in points]
    assert max(ratios) <= 8 * min(ratios), ratios
