"""Perf guard — ops/sec for the containment hot path, recorded to JSON.

Runs a fixed pattern corpus through :func:`repro.core.containment.contains`
and the canonical engine, measures operations per second, and measures the
bitset engine's speedup over the preserved seed implementation
(:mod:`repro.core.embedding_reference`) on patterns with ≥ 4 descendant
edges.  Results are written to ``BENCH_containment.json`` at the repo
root so future PRs can diff against this PR's baseline:

    make bench            # or: PYTHONPATH=src python benchmarks/bench_perf_guard.py

The pytest wrapper (``pytest benchmarks/bench_perf_guard.py``) runs the
same measurements with soft assertions (agreement is exact; the speedup
threshold is deliberately below the recorded value to avoid flaking on
slow machines).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.core.containment import (
    canonical_containment,
    clear_cache,
    contains,
)
from repro.core.embedding_reference import reference_canonical_containment
from repro.patterns.parse import parse_pattern

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_containment.json"

#: Fixed corpus for the ``contains`` ops/sec smoke number: a mix of
#: hom-complete pairs (PTIME path) and coNP pairs (canonical engine).
CONTAINS_CORPUS = [
    ("a/b/c", "a//c"),
    ("a[b]/c", "a/c"),
    ("a[b][c]/d", "a[c]/d"),
    ("a//*/e", "a/*//e"),
    ("a//b[c]", "a//b"),
    ("a/*//e", "a//*/e"),
    ("a//*/*/e", "a/*/*//e"),
    ("a[.//x]/b", "a/b"),
    ("a//b//c[d]", "a//c[d]"),
    ("a//a", "a//*"),
]

#: Canonical-engine cases with ≥ 4 descendant edges — the acceptance
#: target for the bitset engine's speedup over the seed implementation.
SPEEDUP_CASES = {
    "4-desc-edges-bound-2": ("a//*//*//*//*/e[x]", "a//e[x]"),
    "4-desc-edges-bound-5": ("a//b//c//d//e[x]", "a//*/*/*/e[x]"),
    "5-desc-edges-bound-4": ("a//b[c//d]//e//f//g", "a//*/*/g"),
}


def _ops_per_sec(fn, min_seconds: float = 1.0, min_rounds: int = 3) -> float:
    fn()  # warmup
    rounds = 0
    start = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and rounds >= min_rounds:
            return rounds / elapsed


def measure_contains_corpus() -> float:
    """Uncached ``contains`` throughput over the fixed corpus."""
    pairs = [
        (parse_pattern(a), parse_pattern(b)) for a, b in CONTAINS_CORPUS
    ]

    def run() -> None:
        clear_cache()
        for p1, p2 in pairs:
            contains(p1, p2)

    per_corpus = _ops_per_sec(run)
    return per_corpus * len(pairs)


def measure_speedups() -> dict[str, dict[str, float]]:
    """Bitset vs seed canonical containment on the ≥4-descendant cases."""
    results: dict[str, dict[str, float]] = {}
    for name, (a, b) in SPEEDUP_CASES.items():
        p1, p2 = parse_pattern(a), parse_pattern(b)
        expected = reference_canonical_containment(p1, p2)
        actual = canonical_containment(p1, p2)
        assert actual == expected, f"engine disagreement on {name}"
        bitset = _ops_per_sec(lambda: canonical_containment(p1, p2))
        seed = _ops_per_sec(lambda: reference_canonical_containment(p1, p2))
        results[name] = {
            "bitset_ops_per_sec": round(bitset, 2),
            "seed_ops_per_sec": round(seed, 2),
            "speedup": round(bitset / seed, 2),
        }
    return results


def run_guard() -> dict:
    report = {
        "generated_by": "benchmarks/bench_perf_guard.py",
        "python": platform.python_version(),
        "contains_corpus_ops_per_sec": round(measure_contains_corpus(), 2),
        "speedup_vs_seed": measure_speedups(),
    }
    return report


def write_report(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest wrapper (soft smoke assertions)
# ----------------------------------------------------------------------

def test_perf_guard(report=None):
    guard = run_guard()
    write_report(guard)
    if report is not None:
        report(json.dumps(guard, indent=2))
    for name, row in guard["speedup_vs_seed"].items():
        # Recorded speedups are 5–17×; assert a conservative floor so the
        # guard flags real regressions without flaking under load.
        assert row["speedup"] >= 3.0, (name, row)
    assert guard["contains_corpus_ops_per_sec"] > 100


if __name__ == "__main__":
    result = run_guard()
    write_report(result)
    print(json.dumps(result, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
