"""Perf guard — ops/sec for the containment hot path, recorded to JSON.

Runs a fixed pattern corpus through :func:`repro.core.containment.contains`
and the canonical engine, measures operations per second, and compares the
bitset engine against the preserved seed implementation
(:mod:`repro.core.embedding_reference`) on patterns with ≥ 4 descendant
edges.  Results are written to ``BENCH_containment.json`` at the repo
root so future PRs can diff against this PR's baseline:

    make bench-containment   # measure + floor-check + rewrite the JSON
    make bench-check         # measure + floor-check only (CI guard)

Three columns per speedup case:

* ``seed_ops_per_sec`` — the preserved per-set-bit seed implementation;
* ``bitset_ops_per_sec`` — a **cold** containment call (all caches
  cleared first): engine construction + the word-parallel DP over every
  model;
* ``multicore_ops_per_sec`` — ``canonical_containment(..., workers=2)``
  with warm cross-call state: the engine LRU, the per-container embeds
  memo, and (on a multi-core box) the process shards.  On a single-core
  box the sharded path degrades to inline (``multicore_mode`` records
  which happened), and the memo alone carries the speedup.

**Floors are checked into the JSON** (``floors``) and enforced on every
run: a measurement below its floor makes the script exit non-zero
*without* rewriting the JSON, so perf regressions fail loudly instead of
silently re-baselining.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.core import parallel
from repro.core.containment import (
    STATS,
    canonical_containment,
    clear_cache,
    contains,
)
from repro.core.embedding_reference import reference_canonical_containment
from repro.patterns.parse import parse_pattern

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_containment.json"

#: Fixed corpus for the ``contains`` ops/sec smoke number: a mix of
#: hom-complete pairs (PTIME path) and coNP pairs (canonical engine).
CONTAINS_CORPUS = [
    ("a/b/c", "a//c"),
    ("a[b]/c", "a/c"),
    ("a[b][c]/d", "a[c]/d"),
    ("a//*/e", "a/*//e"),
    ("a//b[c]", "a//b"),
    ("a/*//e", "a//*/e"),
    ("a//*/*/e", "a/*/*//e"),
    ("a[.//x]/b", "a/b"),
    ("a//b//c[d]", "a//c[d]"),
    ("a//a", "a//*"),
]

#: Canonical-engine cases with ≥ 4 descendant edges — the acceptance
#: target for the bitset engine's speedup over the seed implementation.
SPEEDUP_CASES = {
    "4-desc-edges-bound-2": ("a//*//*//*//*/e[x]", "a//e[x]"),
    "4-desc-edges-bound-5": ("a//b//c//d//e[x]", "a//*/*/*/e[x]"),
    "5-desc-edges-bound-4": ("a//b[c//d]//e//f//g", "a//*/*/g"),
}

#: PR 5's recorded bitset numbers (this box) — the baseline the
#: multicore column's gain floors are measured against.
PR5_BITSET_OPS = {
    "4-desc-edges-bound-2": 7274.77,
    "4-desc-edges-bound-5": 135.46,
    "5-desc-edges-bound-4": 112.34,
}

#: Per-measurement floors, embedded in the JSON and enforced on every
#: run.  ``speedup``: cold bitset vs seed.  ``multicore_gain``: the
#: warm ``workers=2`` column vs PR 5's bitset ops/sec — the big-bound
#: cases must clear ≥ 4× (the PR 6 acceptance target); the tiny-bound
#: case only must not regress.
FLOORS = {
    "contains_corpus_ops_per_sec": 2000.0,
    "speedup": {
        "4-desc-edges-bound-2": 3.0,
        "4-desc-edges-bound-5": 3.0,
        "5-desc-edges-bound-4": 3.0,
    },
    "multicore_gain": {
        "4-desc-edges-bound-2": 1.0,
        "4-desc-edges-bound-5": 4.0,  # the PR 6 acceptance target
        "5-desc-edges-bound-4": 3.0,
    },
}

#: Worker count for the multicore column.
MULTICORE_WORKERS = 2


def _ops_per_sec(fn, min_seconds: float = 1.0, min_rounds: int = 3) -> float:
    fn()  # warmup
    rounds = 0
    start = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and rounds >= min_rounds:
            return rounds / elapsed


def measure_contains_corpus() -> float:
    """Uncached ``contains`` throughput over the fixed corpus."""
    pairs = [
        (parse_pattern(a), parse_pattern(b)) for a, b in CONTAINS_CORPUS
    ]

    def run() -> None:
        clear_cache()
        for p1, p2 in pairs:
            contains(p1, p2)

    per_corpus = _ops_per_sec(run)
    return per_corpus * len(pairs)


def measure_speedups() -> dict[str, dict]:
    """Seed vs cold bitset vs warm multicore on the ≥4-descendant cases."""
    results: dict[str, dict] = {}
    for name, (a, b) in SPEEDUP_CASES.items():
        p1, p2 = parse_pattern(a), parse_pattern(b)
        expected = reference_canonical_containment(p1, p2)
        for workers in (0, MULTICORE_WORKERS):
            clear_cache()
            actual = canonical_containment(p1, p2, workers=workers)
            assert actual == expected, (
                f"engine disagreement on {name} (workers={workers})"
            )

        def cold() -> None:
            clear_cache()
            canonical_containment(p1, p2)

        bitset = _ops_per_sec(cold)
        seed = _ops_per_sec(lambda: reference_canonical_containment(p1, p2))
        clear_cache()
        fallbacks_before = STATS.shard_fallbacks
        multicore = _ops_per_sec(
            lambda: canonical_containment(p1, p2, workers=MULTICORE_WORKERS)
        )
        mode = (
            "inline-fallback"
            if STATS.shard_fallbacks > fallbacks_before
            else "sharded"
        )
        results[name] = {
            "bitset_ops_per_sec": round(bitset, 2),
            "seed_ops_per_sec": round(seed, 2),
            "speedup": round(bitset / seed, 2),
            "multicore_ops_per_sec": round(multicore, 2),
            "multicore_workers": MULTICORE_WORKERS,
            "multicore_mode": mode,
            "multicore_gain_vs_pr5": round(multicore / PR5_BITSET_OPS[name], 2),
        }
    return results


def run_guard() -> dict:
    report = {
        "generated_by": "benchmarks/bench_perf_guard.py",
        "python": platform.python_version(),
        "cpu_count": parallel._cpu_count(),
        "contains_corpus_ops_per_sec": round(measure_contains_corpus(), 2),
        "speedup_vs_seed": measure_speedups(),
        "pr5_bitset_ops_per_sec": dict(PR5_BITSET_OPS),
        "floors": FLOORS,
    }
    return report


def floor_violations(report: dict) -> list[str]:
    """Every measurement in ``report`` below its recorded floor."""
    floors = report.get("floors", FLOORS)
    problems: list[str] = []
    corpus_floor = floors["contains_corpus_ops_per_sec"]
    corpus = report["contains_corpus_ops_per_sec"]
    if corpus < corpus_floor:
        problems.append(
            f"contains_corpus_ops_per_sec {corpus} < floor {corpus_floor}"
        )
    for name, row in report["speedup_vs_seed"].items():
        floor = floors["speedup"].get(name)
        if floor is not None and row["speedup"] < floor:
            problems.append(f"{name}: speedup {row['speedup']} < floor {floor}")
        gain_floor = floors["multicore_gain"].get(name)
        gain = row.get("multicore_gain_vs_pr5")
        if gain_floor is not None and gain is not None and gain < gain_floor:
            problems.append(
                f"{name}: multicore_gain_vs_pr5 {gain} < floor {gain_floor}"
            )
    return problems


def write_report(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest wrapper (soft smoke assertions)
# ----------------------------------------------------------------------

def test_perf_guard(report=None):
    guard = run_guard()
    if report is not None:
        report(json.dumps(guard, indent=2))
    assert floor_violations(guard) == []
    write_report(guard)


if __name__ == "__main__":
    check_only = "--check" in sys.argv[1:]
    result = run_guard()
    if check_only and RESULT_PATH.exists():
        # The committed JSON's floors are the contract; the in-script
        # table only seeds fresh baselines.
        committed = json.loads(RESULT_PATH.read_text())
        result["floors"] = committed.get("floors", FLOORS)
    print(json.dumps(result, indent=2))
    problems = floor_violations(result)
    if problems:
        print("\nFLOOR VIOLATIONS (JSON not rewritten):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        sys.exit(1)
    if check_only:
        print(f"\nfloors OK against {RESULT_PATH} (check mode: not rewritten)")
    else:
        write_report(result)
        print(f"\nfloors OK; written to {RESULT_PATH}")
