"""AST lint: forbid handlers that swallow interrupts.

The ``ShardPool`` bug this PR fixes was a textbook instance: a broad
``except BaseException`` around the process-pool dispatch ate
``KeyboardInterrupt`` and turned Ctrl-C into a silent inline fallback.
This checker keeps the class of bug out of the tree permanently,
without external tooling — the reference container has no ruff, so a
stdlib :mod:`ast` walk is the gate (the rule is ruff's ``E722`` plus
the ``BaseException`` half of ``BLE001``).

Flagged, per ``except`` clause:

* bare ``except:``;
* ``except BaseException`` (alone or inside a tuple) whose handler body
  does not unconditionally re-raise (a top-level bare ``raise``);
* ``except asyncio.CancelledError`` (alone or inside a tuple) whose
  handler body does not unconditionally re-raise.  On modern Python
  ``CancelledError`` derives from ``BaseException`` precisely so broad
  handlers cannot eat it; a handler that names it and then swallows it
  breaks task cancellation — ``close()`` hangs, drains never finish
  (the async serving tier's graceful-drain contract, PR 8);
* ``REP001``: ``except ReplicaUnavailableError`` (alone or inside a
  tuple) whose handler body neither raises nor calls anything named
  like a retry.  A down replica is a *routing* event, not an answer —
  a handler that catches it and falls through silently turns a
  failover into a lost request (the replicated read tier's failure
  ladder, PR 9).  Any ``raise`` in the handler subtree counts (the
  availability decision may be conditional), as does any call whose
  name contains ``retry`` (case-insensitive).

* ``OBS001``: a direct wall-clock read — ``time.time()`` or
  ``time.monotonic()`` called as an expression, via the module
  attribute or a name imported from :mod:`time` — anywhere outside
  ``faults.py`` or the ``obs`` package.  The observability layer's
  determinism contract (PR 10) requires every timestamp to flow
  through an injectable clock seam (:class:`repro.faults.VirtualClock`
  or a ``clock=`` parameter defaulting to ``time.monotonic``); an
  inline call bakes real time into a code path virtual-time replay
  cannot reach.  Referencing ``time.monotonic`` *without calling it*
  (e.g. as a default clock value) is fine, as is
  ``time.perf_counter()`` (pure measurement, never scheduling).

Suppression: a ``# noqa`` / ``# noqa: BLE001`` / ``# noqa: E722`` /
``# noqa: ASY001`` / ``# noqa: REP001`` / ``# noqa: OBS001`` comment
on the offending line — used by tests that collect exceptions
crossing thread boundaries on purpose, and by the replica tier's own
sync loop (a ship failure parks the replica for the *next* sync; that
is the retry, just not spelled in this handler).

Run with:

    make lint     # or: python tools/lint_exceptions.py [paths...]

Exits non-zero listing ``path:line: message`` for every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories scanned when no paths are given on the command line.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")

#: noqa codes that silence this checker (a plain ``# noqa`` also does).
NOQA_CODES = {"E722", "BLE001", "ASY001", "REP001", "OBS001"}

#: ``time`` module functions whose *call* OBS001 forbids outside the
#: clock seams.  ``perf_counter`` is deliberately absent: it measures,
#: it never schedules, so virtual-time replay is indifferent to it.
CLOCK_CALLS = {"time", "monotonic"}


def _mentions_base_exception(node: ast.expr | None) -> bool:
    """Does the handler's type expression name ``BaseException``?"""
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_mentions_base_exception(el) for el in node.elts)
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    return False


def _mentions_cancelled_error(node: ast.expr | None) -> bool:
    """Does the handler's type expression name ``CancelledError``?

    Matches ``asyncio.CancelledError`` (any attribute spelling) and the
    bare imported name, alone or inside a tuple.
    """
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_mentions_cancelled_error(el) for el in node.elts)
    if isinstance(node, ast.Name):
        return node.id == "CancelledError"
    if isinstance(node, ast.Attribute):
        return node.attr == "CancelledError"
    return False


def _mentions_replica_unavailable(node: ast.expr | None) -> bool:
    """Does the handler's type expression name ``ReplicaUnavailableError``?"""
    if node is None:
        return False
    if isinstance(node, ast.Tuple):
        return any(_mentions_replica_unavailable(el) for el in node.elts)
    if isinstance(node, ast.Name):
        return node.id == "ReplicaUnavailableError"
    if isinstance(node, ast.Attribute):
        return node.attr == "ReplicaUnavailableError"
    return False


def _handles_failover(handler: ast.ExceptHandler) -> bool:
    """Does the handler visibly route around the down replica (REP001)?

    True when the handler subtree contains any ``raise`` (re-raise or
    typed escalation — possibly conditional, unlike the interrupt
    rules, because availability decisions legitimately branch) or any
    call whose name contains ``retry`` (case-insensitive), e.g.
    ``self._evict_and_retry(replica)``.
    """
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = ""
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if "retry" in name.lower():
                    return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a top-level bare ``raise``?

    Top-level only: a ``raise`` inside an ``if`` may not run, and the
    interrupt would still be swallowed on the other branch.
    """
    return any(
        isinstance(stmt, ast.Raise) and stmt.exc is None
        for stmt in handler.body
    )


def _clock_seam_file(path: Path) -> bool:
    """Is this file one of the sanctioned clock seams (OBS001 exempt)?

    ``faults.py`` *defines* the injectable clocks; the ``obs`` package
    consumes a clock parameter that legitimately defaults to
    ``time.monotonic``.  Everywhere else must take a clock, not read
    one.
    """
    return path.name == "faults.py" or "obs" in path.parts


def _time_imports(tree: ast.Module) -> set[str]:
    """Local names bound by ``from time import time/monotonic``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_CALLS:
                    names.add(alias.asname or alias.name)
    return names


def _clock_call_name(node: ast.Call, imported: set[str]) -> str | None:
    """``"time.time"``-style label if this call reads the wall clock."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in CLOCK_CALLS
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return f"time.{func.attr}"
    if isinstance(func, ast.Name) and func.id in imported:
        return func.id
    return None


def _noqa_lines(source: str) -> set[int]:
    """1-based line numbers carrying a suppressing ``# noqa`` comment."""
    lines: set[int] = set()
    for number, line in enumerate(source.splitlines(), start=1):
        _, _, comment = line.partition("#")
        if not comment:
            continue
        directive = comment.strip()
        if not directive.lower().startswith("noqa"):
            continue
        rest = directive[4:].strip()
        if not rest.startswith(":"):
            lines.add(number)  # plain "# noqa" (anything after is prose)
            continue
        codes = {
            code.strip().upper()
            for code in rest[1:].strip().split(" ")[0].split(",")
        }
        if codes & NOQA_CODES:
            lines.add(number)
    return lines


def check_file(path: Path) -> list[str]:
    """``path:line: message`` for every violation in one file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    suppressed = _noqa_lines(source)
    problems: list[str] = []
    if not _clock_seam_file(path):
        imported = _time_imports(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if node.lineno in suppressed:
                continue
            label = _clock_call_name(node, imported)
            if label is not None:
                problems.append(
                    f"{path}:{node.lineno}: OBS001 direct '{label}()' "
                    "call — inject a clock (repro.faults) so "
                    "virtual-time replay stays deterministic"
                )
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.lineno in suppressed:
            continue
        if node.type is None:
            problems.append(
                f"{path}:{node.lineno}: bare 'except:' swallows "
                "KeyboardInterrupt/SystemExit — catch Exception instead"
            )
        elif _mentions_base_exception(node.type) and not _reraises(node):
            problems.append(
                f"{path}:{node.lineno}: 'except BaseException' without a "
                "bare re-raise swallows interrupts — catch Exception, or "
                "re-raise"
            )
        elif _mentions_cancelled_error(node.type) and not _reraises(node):
            problems.append(
                f"{path}:{node.lineno}: 'except CancelledError' without a "
                "bare re-raise swallows task cancellation — clean up, "
                "then re-raise"
            )
        elif _mentions_replica_unavailable(node.type) and not (
            _handles_failover(node)
        ):
            problems.append(
                f"{path}:{node.lineno}: REP001 'except "
                "ReplicaUnavailableError' that neither retries nor "
                "re-raises loses the request — fail over to a sibling "
                "or escalate"
            )
    return problems


def run_lint(paths: list[Path]) -> list[str]:
    problems: list[str] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            problems.extend(check_file(file))
    return problems


# ----------------------------------------------------------------------
# pytest wrapper (tests/test_tooling.py imports and asserts this)
# ----------------------------------------------------------------------

def default_paths() -> list[Path]:
    return [
        REPO_ROOT / root
        for root in DEFAULT_ROOTS
        if (REPO_ROOT / root).is_dir()
    ]


if __name__ == "__main__":
    targets = (
        [Path(arg) for arg in sys.argv[1:]]
        if len(sys.argv) > 1
        else default_paths()
    )
    found = run_lint(targets)
    for problem in found:
        print(problem, file=sys.stderr)
    if found:
        sys.exit(1)
    def _short(target: Path) -> str:
        try:
            return str(target.relative_to(REPO_ROOT))
        except ValueError:
            return str(target)

    print(
        "exception-handler lint OK "
        f"({', '.join(_short(target) for target in targets)})"
    )
