"""Offline analysis of JSONL trace exports (PR 10).

Reads the span records emitted by
:func:`repro.obs.export.export_traces_jsonl` and renders two views:

* a **per-layer breakdown** — for every span name (``serve.request``,
  ``catalog.route``, ``engine.answer``, ...) the call count, total
  wall time, and *self* time (duration minus the duration of direct
  children), so a hot layer is visible even when its children account
  for most of the clock;
* the **slowest requests** — the top-N root spans by duration, each
  with its own per-layer breakdown, for drilling into tail latency.

The loader is deliberately dumb: each line is one JSON object with at
least ``trace_id``, ``span_id``, ``parent_id``, ``name``; ``start`` /
``end`` are optional (structure-only exports get zero durations but
still count spans).  Nothing here imports the live tracer — the report
works on any file matching the schema, including exports from another
machine.

Run with:

    python tools/trace_report.py traces.jsonl [--top N]
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

__all__ = [
    "load_records",
    "layer_breakdown",
    "slowest_roots",
    "render_report",
]


def load_records(path: Path | str) -> list[dict]:
    """Parse one span dict per non-blank line of a JSONL export."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not JSON: {exc}") from exc
            if not isinstance(record, dict) or "span_id" not in record:
                raise ValueError(f"{path}:{number}: not a span record")
            records.append(record)
    return records


def _duration(record: dict) -> float:
    start = record.get("start")
    end = record.get("end")
    if start is None or end is None:
        return 0.0
    return max(0.0, float(end) - float(start))


def _children_by_parent(records: list[dict]) -> dict[tuple, list[dict]]:
    """Direct children keyed by ``(trace_id, parent_span_id)``."""
    children: dict[tuple, list[dict]] = defaultdict(list)
    for record in records:
        parent = record.get("parent_id")
        if parent is not None:
            children[(record.get("trace_id"), parent)].append(record)
    return children


def layer_breakdown(records: list[dict]) -> list[dict]:
    """Per-span-name totals, sorted by total time descending.

    ``self`` is the span's duration minus its *direct* children's
    durations (clamped at zero: overlapping batch spans can make the
    children sum exceed the parent when requests share a batch).
    """
    children = _children_by_parent(records)
    layers: dict[str, dict] = {}
    for record in records:
        duration = _duration(record)
        child_time = sum(
            _duration(child)
            for child in children.get(
                (record.get("trace_id"), record.get("span_id")), ()
            )
        )
        entry = layers.setdefault(
            record.get("name", "?"),
            {"name": record.get("name", "?"), "count": 0,
             "total": 0.0, "self": 0.0},
        )
        entry["count"] += 1
        entry["total"] += duration
        entry["self"] += max(0.0, duration - child_time)
    return sorted(
        layers.values(), key=lambda e: (-e["total"], e["name"])
    )


def slowest_roots(records: list[dict], n: int = 10) -> list[dict]:
    """Top-N root spans by duration, each with its subtree breakdown."""
    by_trace: dict = defaultdict(list)
    for record in records:
        by_trace[record.get("trace_id")].append(record)
    roots = [r for r in records if r.get("parent_id") is None]
    roots.sort(key=lambda r: (-_duration(r), r.get("trace_id", "")))
    top: list[dict] = []
    for root in roots[:n]:
        subtree = by_trace[root.get("trace_id")]
        top.append(
            {
                "trace_id": root.get("trace_id"),
                "name": root.get("name"),
                "duration": _duration(root),
                "attrs": root.get("attrs", {}),
                "spans": len(subtree),
                "layers": layer_breakdown(subtree),
            }
        )
    return top


def _fmt_seconds(value: float) -> str:
    return f"{value * 1000:9.3f}ms"


def render_report(records: list[dict], top: int = 10) -> str:
    """Human-readable report text for a batch of span records."""
    lines: list[str] = []
    roots = sum(1 for r in records if r.get("parent_id") is None)
    lines.append(
        f"{len(records)} spans, {roots} request trees"
    )
    lines.append("")
    lines.append("per-layer breakdown")
    lines.append(
        f"  {'layer':<24} {'count':>7} {'total':>11} {'self':>11}"
    )
    for entry in layer_breakdown(records):
        lines.append(
            f"  {entry['name']:<24} {entry['count']:>7} "
            f"{_fmt_seconds(entry['total'])} {_fmt_seconds(entry['self'])}"
        )
    slow = slowest_roots(records, top)
    if slow:
        lines.append("")
        lines.append(f"slowest {len(slow)} requests")
        for rank, root in enumerate(slow, start=1):
            attrs = " ".join(
                f"{key}={value}"
                for key, value in sorted(root["attrs"].items())
            )
            lines.append(
                f"  #{rank} {root['name']} "
                f"{_fmt_seconds(root['duration'])} "
                f"spans={root['spans']}"
                + (f" {attrs}" if attrs else "")
            )
            for entry in root["layers"]:
                lines.append(
                    f"      {entry['name']:<22} {entry['count']:>5} "
                    f"{_fmt_seconds(entry['total'])}"
                )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise a JSONL trace export per layer and "
        "per slow request."
    )
    parser.add_argument("path", type=Path, help="JSONL trace export")
    parser.add_argument(
        "--top", type=int, default=10,
        help="how many slow requests to detail (default 10)",
    )
    args = parser.parse_args(argv)
    try:
        records = load_records(args.path)
    except (OSError, ValueError) as exc:
        print(f"trace_report: {exc}", file=sys.stderr)
        return 1
    if not records:
        print("trace_report: no spans in export", file=sys.stderr)
        return 1
    print(render_report(records, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
