"""Leak-safe fleets of single-process executor shards.

Extracted from the catalog server (PR 5), whose picklable-spec pool
plumbing is also the shape the containment layer's sharded
canonical-model checking reuses (:mod:`repro.core.parallel`).  The
shared contract:

* each shard is a ``ProcessPoolExecutor`` with exactly **one** worker,
  primed by a module-level initializer with that shard's own picklable
  initargs — so per-shard state (a rebuilt catalog, a warm canonical
  engine) lives in exactly one process and stays warm across tasks;
* construction is all-or-nothing: if a later shard fails to start, the
  earlier shards are shut down instead of leaking their worker
  processes (the caller never receives the object, so its ``close`` is
  unreachable).
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Sequence

__all__ = ["ShardPool"]


class ShardPool:
    """A fixed fleet of single-worker ``ProcessPoolExecutor`` shards."""

    __slots__ = ("_shards", "_closed")

    def __init__(
        self,
        initializer: Callable[..., None] | None,
        initargs_per_shard: Sequence[tuple],
    ):
        self._closed = False
        self._shards: list[ProcessPoolExecutor] = []
        try:
            for initargs in initargs_per_shard:
                self._shards.append(
                    ProcessPoolExecutor(
                        max_workers=1,
                        initializer=initializer,
                        initargs=initargs,
                    )
                )
        except (KeyboardInterrupt, SystemExit):
            # Interrupts still get leak-safe cleanup but must propagate
            # untouched — callers' fallback paths (which catch
            # ``Exception``) are not allowed to swallow them.
            self._discard_partial()
            raise
        except Exception:
            self._discard_partial()
            raise

    def _discard_partial(self) -> None:
        """Tear down a half-built fleet without waiting on workers."""
        for shard in self._shards:
            shard.shutdown(wait=False)
        self._shards = []

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, shard_index: int, fn: Callable, /, *args) -> Future:
        """Submit ``fn(*args)`` to the given shard's worker process."""
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        return self._shards[shard_index].submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Shut every shard down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.shutdown(wait=wait)
        self._shards = []
