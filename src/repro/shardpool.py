"""Leak-safe fleets of single-process executor shards.

Extracted from the catalog server (PR 5), whose picklable-spec pool
plumbing is also the shape the containment layer's sharded
canonical-model checking reuses (:mod:`repro.core.parallel`).  The
shared contract:

* each shard is a ``ProcessPoolExecutor`` with exactly **one** worker,
  primed by a module-level initializer with that shard's own picklable
  initargs — so per-shard state (a rebuilt catalog, a warm canonical
  engine) lives in exactly one process and stays warm across tasks;
* construction is all-or-nothing: if a later shard fails to start, the
  earlier shards are shut down instead of leaking their worker
  processes (the caller never receives the object, so its ``close`` is
  unreachable).

Failure semantics (PR 8):

* a shard whose worker process died — for real
  (``BrokenProcessPool``) or simulated through an injected
  :class:`~repro.faults.FaultPolicy` crash — surfaces as
  :class:`~repro.errors.ShardCrashError` on every subsequent
  submission until :meth:`ShardPool.restart` replaces it with a fresh
  executor (re-running the shard's initializer, so the replacement
  warm-starts the same way the original did);
* ``fault_policy`` is the deterministic test seam: consulted before
  every submission, it can fail the returned future (``crash`` /
  ``error``), return a future that never completes (``hang``), or
  advance a virtual clock (``delay``) — see :mod:`repro.faults`.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from .errors import ShardCrashError
from .faults import FaultPolicy
from .obs import span

__all__ = ["ShardPool"]


def _failed_future(exc: BaseException) -> Future:
    future: Future = Future()
    future.set_exception(exc)
    return future


class ShardPool:
    """A fixed fleet of single-worker ``ProcessPoolExecutor`` shards."""

    __slots__ = (
        "_shards",
        "_closed",
        "_initializer",
        "_initargs",
        "_broken",
        "_fault_policy",
    )

    def __init__(
        self,
        initializer: Callable[..., None] | None,
        initargs_per_shard: Sequence[tuple],
        *,
        fault_policy: FaultPolicy | None = None,
    ):
        self._closed = False
        self._initializer = initializer
        self._initargs = [tuple(initargs) for initargs in initargs_per_shard]
        self._broken: set[int] = set()
        self._fault_policy = fault_policy
        self._shards: list[ProcessPoolExecutor] = []
        try:
            for initargs in self._initargs:
                self._shards.append(self._spawn(initargs))
        except (KeyboardInterrupt, SystemExit):
            # Interrupts still get leak-safe cleanup but must propagate
            # untouched — callers' fallback paths (which catch
            # ``Exception``) are not allowed to swallow them.
            self._discard_partial()
            raise
        except Exception:
            self._discard_partial()
            raise

    def _spawn(self, initargs: tuple) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=self._initializer,
            initargs=initargs,
        )

    def _discard_partial(self) -> None:
        """Tear down a half-built fleet without waiting on workers."""
        for shard in self._shards:
            shard.shutdown(wait=False)
        self._shards = []

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def closed(self) -> bool:
        return self._closed

    def broken_shards(self) -> set[int]:
        """Indexes of shards currently marked dead (await restart)."""
        return set(self._broken)

    def submit(self, shard_index: int, fn: Callable, /, *args) -> Future:
        """Submit ``fn(*args)`` to the given shard's worker process.

        A dead shard (real ``BrokenProcessPool`` seen earlier, or a
        simulated crash) yields a future already failed with
        :class:`~repro.errors.ShardCrashError` — submissions never
        block on a corpse, and the caller decides between
        :meth:`restart` and degrading elsewhere.
        """
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        with span("shard.submit", shard=shard_index) as scope:
            if self._fault_policy is not None:
                action = self._fault_policy.on_submit(shard_index)
                if action is not None:
                    scope.set(injected=action.kind)
                    if action.kind == "crash":
                        self._broken.add(shard_index)
                        return _failed_future(
                            ShardCrashError(
                                f"shard {shard_index} crashed (injected)"
                            )
                        )
                    if action.kind == "error":
                        assert action.exc is not None
                        return _failed_future(action.exc)
                    if action.kind == "hang":
                        return Future()  # never resolves: bound your waits
                    # "delay" advanced the policy's virtual clock already;
                    # the submission itself proceeds normally.
            if shard_index in self._broken:
                scope.set(outcome="broken")
                return _failed_future(
                    ShardCrashError(
                        f"shard {shard_index} is down (restart before "
                        "resubmitting)"
                    )
                )
            try:
                return self._shards[shard_index].submit(fn, *args)
            except BrokenProcessPool as exc:
                self._broken.add(shard_index)
                scope.set(outcome="worker_died")
                return _failed_future(
                    ShardCrashError(
                        f"shard {shard_index} worker died: {exc}"
                    )
                )

    def restart(self, shard_index: int) -> None:
        """Replace one shard with a fresh executor (initializer re-runs).

        The recovery half of the crash contract: after a
        :class:`~repro.errors.ShardCrashError` the caller may retry
        once on a restarted shard before degrading.  Safe to call on a
        healthy shard (it is recycled all the same).
        """
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        self._shards[shard_index].shutdown(wait=False)
        self._shards[shard_index] = self._spawn(self._initargs[shard_index])
        self._broken.discard(shard_index)

    def shutdown(self, wait: bool = True) -> None:
        """Shut every shard down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.shutdown(wait=wait)
        self._shards = []
