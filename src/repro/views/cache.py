"""A semantic query cache built on view rewriting.

This reproduces the motivating scenario of the paper's related work
([3] XPath view frameworks, [5] XCache, [13] query caching, [18] query
pattern mining): previously answered queries are kept as materialized
views, and a new query is answered from the cache whenever it can be
*equivalently rewritten* over some cached view — the sound-and-complete
alternative to the "incomplete algorithms (e.g., XPath matching)" the
paper criticizes in Section 1.

:class:`ViewCache` offers a simple LRU policy, hit/miss statistics, and a
pluggable admission rule.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..core.embedding import evaluate, evaluate_forest
from ..core.rewrite import RewriteSolver
from ..patterns.ast import Pattern
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree

__all__ = ["CacheStats", "CachedView", "ViewCache"]


@dataclass
class CacheStats:
    """Hit/miss counters for the view cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rewrite_attempts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rewrite_attempts = 0


@dataclass
class CachedView:
    """One cache entry: a view pattern and its forest on the document."""

    pattern: Pattern
    forest: frozenset[TNode]


class ViewCache:
    """An LRU cache of materialized views over a single document.

    Parameters
    ----------
    document:
        The document queries run against.
    capacity:
        Maximum number of cached views (LRU eviction).
    solver:
        Rewriting solver used for cache-answerability checks.
    admit:
        Whether answered queries are admitted as new views.
    """

    def __init__(
        self,
        document: XMLTree,
        capacity: int = 16,
        solver: RewriteSolver | None = None,
        admit: bool = True,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.document = document
        self.capacity = capacity
        self.solver = solver or RewriteSolver()
        self.admit = admit
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, CachedView] = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[CachedView]:
        """Cached views, LRU order (least recent first)."""
        return list(self._entries.values())

    def seed(self, pattern: Pattern) -> None:
        """Materialize and cache a view up front."""
        self._insert(pattern)

    def _insert(self, pattern: Pattern) -> None:
        key = pattern.canonical_key()
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        forest = frozenset(evaluate(pattern, self.document))
        self._entries[key] = CachedView(pattern=pattern, forest=forest)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def query(self, pattern: Pattern) -> set[TNode]:
        """Answer a query, preferring cached views.

        A cache *hit* requires an equivalent rewriting over some cached
        view (exact-match hits are the special case ``R = identity-ish``,
        found by the same machinery).  On a miss the query is evaluated
        directly and, if admission is on, cached as a new view.
        """
        for key in list(self._entries):
            entry = self._entries[key]
            self.stats.rewrite_attempts += 1
            decision = self.solver.solve(pattern, entry.pattern)
            if decision.found:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return set(evaluate_forest(decision.rewriting, entry.forest))
        self.stats.misses += 1
        answer = evaluate(pattern, self.document)
        if self.admit:
            self._insert(pattern)
        return answer
