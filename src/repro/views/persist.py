"""Persistent storage backends for the materialized view store.

The paper's serving scenario (§1, §2.4) only pays off if the
materialized forests ``V(t)`` survive the process that computed them: a
restarted server that must re-evaluate every view over every document is
back to the cold path the rewriting machinery was meant to avoid.  This
module gives :class:`~repro.views.store.ViewStore` a pluggable storage
layer:

* :class:`StoreBackend` — the protocol the store materializes through.
  A backend is a mapping ``(document digest, pattern digest) ->
  materialized node ids`` with save/load/invalidate; the store treats a
  ``load`` miss as "evaluate and save".
* :class:`MemoryBackend` — the process-local dict implementation; the
  default, equivalent to the pre-persistence behavior.
* :class:`SnapshotBackend` — an append-only snapshot log on disk.  Each
  record is one JSON line carrying its own SHA-256 checksum, so a torn
  tail write (or any hand-corrupted line) is detected and *skipped* on
  open rather than poisoning the store — a corrupt or missing entry
  simply falls back to re-evaluation.

Besides materializations, backends persist **selection records**: the
view advisor's chosen view set for one ``(document digest, workload
fingerprint)`` pair (see :func:`repro.views.advisor.serialize_selection`).
Re-advising is the dominant warm-start cost, so a catalog that finds a
matching selection record skips the advisor entirely; the fingerprint
binds the advisor's exact inputs, so a changed workload or budget can
never be served a stale selection.

Keying and integrity
--------------------
Node identity does not survive a process, so materializations are
persisted as **preorder indexes** into their document.  Two digests make
that sound across processes:

* :func:`document_digest` binds the exact *ordered* labeled shape of the
  document (depth + label per node, preorder).  Preorder indexes are only
  resolved against a document whose digest matches the stored key, so a
  mutated document can never be served stale node sets — its digest
  differs and its entries are rebuilt (and
  :meth:`~repro.views.store.ViewStore.refresh` explicitly invalidates the
  old digest's entries).
* :func:`pattern_digest` hashes :meth:`Pattern.signature()
  <repro.patterns.ast.Pattern.signature>` — the canonical flat signature,
  stable across processes and interning epochs (unlike
  ``Pattern.memo_key``, whose tokens die with the process/epoch).

As a final guard the store validates loaded indexes against the live
document size; out-of-range ids are treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, Sequence

logger = logging.getLogger(__name__)

#: Process-wide once-flag for the directory-fsync warning: the failure
#: is non-fatal and typically environmental (platform without openable
#: directories), so one log line per process is signal, more is noise.
#: The per-backend count lives in ``BackendStats.fsync_failures``.
_FSYNC_FAILURE_LOGGED = False

from ..patterns.ast import Pattern
from ..xmltree.tree import XMLTree

__all__ = [
    "BackendStats",
    "LogTail",
    "MemoryBackend",
    "ShipResult",
    "SnapshotBackend",
    "StoreBackend",
    "document_digest",
    "pattern_digest",
]

#: Snapshot log format version; bumped on incompatible record changes.
FORMAT_VERSION = 1


def document_digest(tree: XMLTree) -> str:
    """SHA-256 over the ordered labeled shape of a document.

    The serialization walks the tree in preorder emitting
    ``depth:len(label):label`` per node, so the digest changes whenever
    any persisted preorder index could resolve differently — equal
    digests guarantee that equal indexes denote structurally identical
    positions.
    """
    hasher = hashlib.sha256()
    stack: list[tuple] = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        label = node.label
        hasher.update(f"{depth}:{len(label)}:{label};".encode())
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    return hasher.hexdigest()


def pattern_digest(pattern: Pattern) -> str:
    """SHA-256 of the pattern's canonical signature.

    Equal digests iff isomorphic patterns (modulo SHA-256 collisions);
    stable across processes and ``memo_key`` interning epochs, which is
    what makes it a valid persisted key.
    """
    return hashlib.sha256(pattern.signature().encode()).hexdigest()


@dataclass
class BackendStats:
    """Counters for one backend's lifetime.

    ``corrupt_records`` counts snapshot-log lines rejected on open
    (bad JSON, wrong version, checksum mismatch); each rejected line is
    skipped, never served.  The ``selection_*`` counters track advisor
    selection records separately from materializations — a warm start is
    one where ``selection_hits`` rose.  ``fsync_failures`` counts
    directory-fsync failures after a compaction rename: non-fatal (the
    rename stays atomic) but a crash-durability window the operator
    should be able to see instead of it vanishing into a bare ``pass``.
    ``io_errors`` counts storage operations that failed at the I/O
    layer (e.g. SQLite errors): reads degrade to misses and writes are
    skipped — serving proceeds, durability is what was lost, and this
    counter is how an operator notices.  ``evicted_rows`` counts rows
    deleted by TTL pruning (:meth:`SqliteBackend.prune
    <repro.catalog.sqlite_backend.SqliteBackend.prune>`) — stale
    digests aged out, distinct from explicit ``invalidations``.
    """

    hits: int = 0
    misses: int = 0
    saves: int = 0
    invalidations: int = 0
    corrupt_records: int = 0
    selection_hits: int = 0
    selection_misses: int = 0
    selection_saves: int = 0
    fsync_failures: int = 0
    io_errors: int = 0
    evicted_rows: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
            "invalidations": self.invalidations,
            "corrupt_records": self.corrupt_records,
            "selection_hits": self.selection_hits,
            "selection_misses": self.selection_misses,
            "selection_saves": self.selection_saves,
            "fsync_failures": self.fsync_failures,
            "io_errors": self.io_errors,
            "evicted_rows": self.evicted_rows,
        }


class StoreBackend(Protocol):
    """Storage protocol behind :class:`~repro.views.store.ViewStore`.

    Implementations map ``(document_digest, pattern_digest)`` to the
    sorted preorder indexes of the materialized answer nodes.  ``load``
    returns ``None`` on a miss (the store then evaluates and ``save``\\ s);
    ``invalidate_document`` drops every entry for one document digest.
    ``reject_loaded`` is the store's report that a just-loaded entry
    failed validation (e.g. out-of-range indexes): the backend drops
    the entry and reclassifies the lookup as a miss in its own stats —
    counter ownership stays inside the backend.

    ``load_selection``/``save_selection`` persist the view advisor's
    chosen view set per ``(document digest, workload fingerprint)``.
    Payloads are JSON-serializable dicts produced by
    :func:`repro.views.advisor.serialize_selection`; backends treat them
    as opaque.  ``invalidate_document`` drops a document's selections
    along with its materializations — both are keyed by the digest that
    just went stale.

    The ``durable`` flag tells callers whether entries outlive the
    process (used by tooling/reporting only — the store's logic is
    identical for both kinds).
    """

    durable: bool
    stats: BackendStats

    def load(self, doc_digest: str, pat_digest: str) -> list[int] | None: ...

    def save(
        self,
        doc_digest: str,
        pat_digest: str,
        node_ids: Sequence[int],
        *,
        xpath: str = "",
    ) -> None: ...

    def load_selection(self, doc_digest: str, fingerprint: str) -> dict | None: ...

    def save_selection(
        self, doc_digest: str, fingerprint: str, payload: dict
    ) -> None: ...

    def invalidate_document(self, doc_digest: str) -> None: ...

    def reject_loaded(self, doc_digest: str, pat_digest: str) -> None: ...

    def close(self) -> None: ...


class _RejectLoadedMixin:
    """Shared ``reject_loaded``: drop the entry, hit → miss + corrupt."""

    def reject_loaded(self, doc_digest: str, pat_digest: str) -> None:
        self._entries.pop((doc_digest, pat_digest), None)
        self.stats.hits -= 1
        self.stats.misses += 1
        self.stats.corrupt_records += 1


class _SelectionMapMixin:
    """Shared selection-record bookkeeping over a ``_selections`` dict.

    Payloads are JSON round-tripped on save and copied on load, so a
    caller mutating its dict after the fact can never alias the stored
    record — the same isolation a durable backend gives for free.
    """

    def load_selection(self, doc_digest: str, fingerprint: str) -> dict | None:
        payload = self._selections.get((doc_digest, fingerprint))
        if payload is None:
            self.stats.selection_misses += 1
            return None
        self.stats.selection_hits += 1
        return json.loads(json.dumps(payload))

    def _store_selection(
        self, doc_digest: str, fingerprint: str, payload: dict
    ) -> dict:
        clean = json.loads(json.dumps(payload))
        self._selections[(doc_digest, fingerprint)] = clean
        self.stats.selection_saves += 1
        return clean

    def _drop_selections(self, doc_digest: str) -> None:
        for key in [k for k in self._selections if k[0] == doc_digest]:
            del self._selections[key]


class MemoryBackend(_RejectLoadedMixin, _SelectionMapMixin):
    """The in-process backend: a plain dict, nothing survives exit.

    This is the default for :class:`~repro.views.store.ViewStore` and
    reproduces the pre-persistence behavior exactly (every
    materialization computed at most once per store per document shape).
    """

    durable = False

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._entries: dict[tuple[str, str], list[int]] = {}
        self._selections: dict[tuple[str, str], dict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def load(self, doc_digest: str, pat_digest: str) -> list[int] | None:
        entry = self._entries.get((doc_digest, pat_digest))
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return list(entry)

    def save(
        self,
        doc_digest: str,
        pat_digest: str,
        node_ids: Sequence[int],
        *,
        xpath: str = "",
    ) -> None:
        self._entries[(doc_digest, pat_digest)] = list(node_ids)
        self.stats.saves += 1

    def save_selection(
        self, doc_digest: str, fingerprint: str, payload: dict
    ) -> None:
        self._store_selection(doc_digest, fingerprint, payload)

    def invalidate_document(self, doc_digest: str) -> None:
        stale = [key for key in self._entries if key[0] == doc_digest]
        for key in stale:
            del self._entries[key]
        self._drop_selections(doc_digest)
        self.stats.invalidations += 1

    def close(self) -> None:
        pass


def _fsync_directory(path: Path) -> bool:
    """Durably persist a directory entry change (rename/replace).

    ``os.replace`` is atomic but its durability requires syncing the
    *directory*, not just the file.  Platforms whose directories cannot
    be opened or fsynced (e.g. Windows) skip — the rename is still
    atomic there, only the crash-durability window stays.  Returns
    ``True`` when the directory entry was durably synced so callers can
    count (and log) the failure instead of losing it silently.
    """
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(dir_fd)
    except OSError:
        return False
    finally:
        os.close(dir_fd)
    return True


def _note_fsync_failure(stats: BackendStats, path: Path) -> None:
    """Count a directory-fsync failure; warn once per process."""
    global _FSYNC_FAILURE_LOGGED
    stats.fsync_failures += 1
    if not _FSYNC_FAILURE_LOGGED:
        _FSYNC_FAILURE_LOGGED = True
        logger.warning(
            "directory fsync failed after compacting %s: the rename is "
            "atomic but not crash-durable (counted in "
            "BackendStats.fsync_failures; logged once per process)",
            path,
        )


def _record_checksum(record: dict) -> str:
    """Checksum over the canonical JSON of a record minus its ``sum``."""
    body = {key: value for key, value in record.items() if key != "sum"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _valid_record(record) -> bool:
    """Structural + checksum validation of one parsed log record."""
    return (
        isinstance(record, dict)
        and record.get("v") == FORMAT_VERSION
        and record.get("sum") == _record_checksum(record)
    )


@dataclass(frozen=True)
class LogTail:
    """One :meth:`SnapshotBackend.read_since` result — a shippable tail.

    ``records`` are the validated records with sequence number strictly
    greater than the requested ``since``, in file order; ``corrupt``
    counts lines in the file that failed validation (a nonzero count
    during replication catch-up means the tail is torn and the reader
    should re-ship); ``last_seqno`` is the writer's current high-water
    mark, so a reader can tell "nothing new" from "records lost".
    """

    records: tuple[dict, ...]
    corrupt: int
    last_seqno: int


@dataclass(frozen=True)
class ShipResult:
    """One :meth:`SnapshotBackend.apply_records` result.

    ``applied`` counts records appended and applied; ``skipped`` counts
    idempotent duplicates (sequence number at or below the reader's
    high-water mark — safe to receive twice); ``rejected`` counts
    records failing structural/checksum validation; ``gap_at`` is the
    first sequence number that did not extend the reader's log
    contiguously (``None`` when the batch was contiguous).  A reader
    seeing ``rejected > 0`` or ``gap_at is not None`` must treat the
    shipment as torn and re-request from its last applied seqno (in
    practice: a full snapshot re-ship).
    """

    applied: int
    skipped: int
    rejected: int
    gap_at: int | None

    @property
    def clean(self) -> bool:
        return self.rejected == 0 and self.gap_at is None


class SnapshotBackend(_RejectLoadedMixin, _SelectionMapMixin):
    """Append-only snapshot log: one self-checksummed JSON record per line.

    Records are ``put`` (a materialization for one
    ``(document digest, pattern digest)`` key — later puts supersede
    earlier ones), ``selection`` (an advisor selection for one
    ``(document digest, workload fingerprint)`` key) or ``invalidate``
    (drop every entry — materializations and selections — for a document
    digest, appended by :meth:`~repro.views.store.ViewStore.refresh`
    when a document's shape changes).  Opening replays the log into an
    in-memory map, skipping — and counting, in
    ``stats.corrupt_records`` — any line whose JSON, format version or
    SHA-256 checksum does not verify, so a torn write or hand-edited
    file degrades to re-evaluation instead of an error.

    Writes are appended and flushed immediately (``fsync`` when
    ``sync=True``); :meth:`compact` rewrites the log with only the live
    entries, dropping superseded and invalidated records.

    Replication (PR 9): every appended record carries a monotone
    sequence number ``seq`` (covered by the checksum), so the log
    doubles as a shippable replication stream.  :meth:`read_since`
    returns the validated tail past a reader's high-water mark and
    :meth:`apply_records` applies a shipped tail idempotently on the
    reader side, detecting duplicates, torn records and gaps — see
    :mod:`repro.catalog.replication`.  Compaction preserves each live
    record's original ``seq`` (the file stays seq-ascending), but drops
    superseded records, so a reader catching up across a compaction
    boundary sees a gap and re-ships — safe, never wrong.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    durable = True

    def __init__(self, path: str | Path, *, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        self.stats = BackendStats()
        self._entries: dict[tuple[str, str], list[int]] = {}
        self._selections: dict[tuple[str, str], dict] = {}
        # Human-readable provenance per entry (the view's XPath at save
        # time); carried through the log so compaction preserves it.
        self._xpaths: dict[tuple[str, str], str] = {}
        # Monotone sequence numbers: the high-water mark plus each live
        # record's own seq (compaction re-emits records with their
        # original numbers, keeping the file seq-ascending).
        self._last_seqno = 0
        self._entry_seqs: dict[tuple[str, str], int] = {}
        self._selection_seqs: dict[tuple[str, str], int] = {}
        self._replay_log()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        # A torn tail write may have left the file without a final
        # newline; appending straight after it would corrupt the first
        # new record too.  Start appends on a fresh line instead.
        if self.path.stat().st_size > 0:
            with open(self.path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                if probe.read(1) != b"\n":
                    self._fh.write("\n")
                    self._fh.flush()

    # ------------------------------------------------------------------
    # Log I/O
    # ------------------------------------------------------------------
    def _replay_log(self) -> None:
        if not self.path.exists():
            return
        try:
            # errors="replace": a bit-flipped byte that breaks UTF-8
            # must degrade to a corrupt *line* (the mangled JSON fails
            # to parse), never to a crashed reload.
            lines = self.path.read_text(
                encoding="utf-8", errors="replace"
            ).splitlines()
        except OSError:
            self.stats.corrupt_records += 1
            return
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.stats.corrupt_records += 1
                continue
            if not _valid_record(record):
                self.stats.corrupt_records += 1
                continue
            self._apply(record)

    def _record_seq(self, record: dict) -> int:
        """The record's sequence number (0 for pre-seqno logs)."""
        seq = record.get("seq")
        return seq if isinstance(seq, int) and seq > 0 else 0

    def _apply(self, record: dict) -> None:
        seq = self._record_seq(record)
        self._last_seqno = max(self._last_seqno, seq)
        op = record.get("op")
        if op == "put":
            key = (record["doc"], record["pat"])
            self._entries[key] = list(record["ids"])
            self._xpaths[key] = record.get("xpath", "")
            self._entry_seqs[key] = seq
        elif op == "selection":
            key = (record["doc"], record["fp"])
            self._selections[key] = record["payload"]
            self._selection_seqs[key] = seq
        elif op == "invalidate":
            doc = record["doc"]
            for key in [k for k in self._entries if k[0] == doc]:
                del self._entries[key]
                self._xpaths.pop(key, None)
                self._entry_seqs.pop(key, None)
            self._drop_selections(doc)
            for key in [k for k in self._selection_seqs if k[0] == doc]:
                del self._selection_seqs[key]
        else:  # unknown op from a future version: ignore, keep the rest
            self.stats.corrupt_records += 1

    def _append(self, record: dict) -> None:
        record["seq"] = self._last_seqno + 1
        record["v"] = FORMAT_VERSION
        record["sum"] = _record_checksum(record)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._last_seqno = record["seq"]

    # ------------------------------------------------------------------
    # StoreBackend protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def load(self, doc_digest: str, pat_digest: str) -> list[int] | None:
        entry = self._entries.get((doc_digest, pat_digest))
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return list(entry)

    def save(
        self,
        doc_digest: str,
        pat_digest: str,
        node_ids: Sequence[int],
        *,
        xpath: str = "",
    ) -> None:
        ids = sorted(node_ids)
        key = (doc_digest, pat_digest)
        record = {"op": "put", "doc": doc_digest, "pat": pat_digest,
                  "xpath": xpath, "ids": ids}
        self._append(record)
        self._entries[key] = ids
        self._xpaths[key] = xpath
        self._entry_seqs[key] = record["seq"]
        self.stats.saves += 1

    def save_selection(
        self, doc_digest: str, fingerprint: str, payload: dict
    ) -> None:
        clean = self._store_selection(doc_digest, fingerprint, payload)
        record = {"op": "selection", "doc": doc_digest, "fp": fingerprint,
                  "payload": clean}
        self._append(record)
        self._selection_seqs[(doc_digest, fingerprint)] = record["seq"]

    def invalidate_document(self, doc_digest: str) -> None:
        self._append({"op": "invalidate", "doc": doc_digest})
        for key in [k for k in self._entries if k[0] == doc_digest]:
            del self._entries[key]
            self._xpaths.pop(key, None)
            self._entry_seqs.pop(key, None)
        self._drop_selections(doc_digest)
        for key in [k for k in self._selection_seqs if k[0] == doc_digest]:
            del self._selection_seqs[key]
        self.stats.invalidations += 1

    def reject_loaded(self, doc_digest: str, pat_digest: str) -> None:
        super().reject_loaded(doc_digest, pat_digest)
        self._xpaths.pop((doc_digest, pat_digest), None)
        self._entry_seqs.pop((doc_digest, pat_digest), None)

    def compact(self) -> int:
        """Rewrite the log keeping only live entries; returns their count.

        Live materializations *and* live selection records are carried
        over; superseded puts and anything dropped by an ``invalidate``
        are gone.  Safe against crashes mid-compaction: the new log is
        written to a sibling temp file first (the live append handle
        stays open, so a failed write leaves the backend fully usable),
        atomically renamed over the old one, and the parent directory is
        fsynced after the rename — without the directory sync a crash
        between rename and the directory's own writeback could resurrect
        the pre-compaction log (or, on some filesystems, neither file).
        """
        live: list[dict] = []
        for (doc, pat), ids in sorted(self._entries.items()):
            live.append(
                {"op": "put", "doc": doc, "pat": pat,
                 "xpath": self._xpaths.get((doc, pat), ""),
                 "ids": ids, "seq": self._entry_seqs.get((doc, pat), 0)}
            )
        for (doc, fp), payload in sorted(self._selections.items()):
            live.append(
                {"op": "selection", "doc": doc, "fp": fp,
                 "payload": payload,
                 "seq": self._selection_seqs.get((doc, fp), 0)}
            )
        # Original seqs, seq-ascending file order: a reader resuming
        # from a pre-compaction high-water mark still sees a monotone
        # stream (with gaps where superseded records were dropped —
        # which apply_records reports, forcing the safe re-ship).
        live.sort(key=lambda rec: rec["seq"])
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "w", encoding="utf-8") as out:
            for record in live:
                record["v"] = FORMAT_VERSION
                record["sum"] = _record_checksum(record)
                out.write(json.dumps(record, sort_keys=True) + "\n")
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self.path)
        if not _fsync_directory(self.path.parent):
            _note_fsync_failure(self.stats, self.path)
        # Swap handles only after the replace succeeded — the old handle
        # points at the replaced inode and must not receive new appends.
        self._fh.close()
        self._fh = open(self.path, "a", encoding="utf-8")
        return len(self._entries)

    # ------------------------------------------------------------------
    # Replication: log shipping (writer side) and idempotent apply
    # (reader side) — see repro.catalog.replication
    # ------------------------------------------------------------------
    @property
    def last_seqno(self) -> int:
        """High-water mark: the largest sequence number ever appended."""
        return self._last_seqno

    def read_since(self, seqno: int) -> LogTail:
        """The validated log tail past ``seqno``, ready to ship.

        Re-reads the file (appends are flushed, so the on-disk state is
        current), validates every line exactly like open-time replay,
        and returns the records whose sequence number exceeds ``seqno``
        in file order.  Lines failing validation are counted in the
        tail's ``corrupt`` field (not in this backend's stats — the
        file may be a shipped copy whose corruption belongs to the
        reader's ledger).
        """
        records: list[dict] = []
        corrupt = 0
        try:
            lines = self.path.read_text(
                encoding="utf-8", errors="replace"
            ).splitlines()
        except OSError:
            return LogTail(records=(), corrupt=1, last_seqno=self._last_seqno)
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if not _valid_record(record):
                corrupt += 1
                continue
            if self._record_seq(record) > seqno:
                records.append(record)
        return LogTail(
            records=tuple(records),
            corrupt=corrupt,
            last_seqno=self._last_seqno,
        )

    def apply_records(self, records: Sequence[dict]) -> ShipResult:
        """Apply a shipped record batch idempotently; append what lands.

        The reader-side half of log shipping.  Records at or below this
        backend's high-water mark are skipped (duplicates are safe);
        records failing validation are rejected (counted here *and* in
        ``stats.corrupt_records``); the first record that does not
        extend the log contiguously stops the batch and is reported as
        ``gap_at``.  Applied records are appended verbatim (their
        checksums were computed by the writer and re-verify here), so
        this backend's own log remains a valid shipping source.
        """
        applied = skipped = rejected = 0
        gap_at: int | None = None
        for record in records:
            if not _valid_record(record):
                rejected += 1
                self.stats.corrupt_records += 1
                continue
            seq = self._record_seq(record)
            if seq <= self._last_seqno:
                skipped += 1
                continue
            if seq != self._last_seqno + 1:
                gap_at = seq
                break
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            if self.sync:
                os.fsync(self._fh.fileno())
            self._apply(record)
            applied += 1
        return ShipResult(
            applied=applied, skipped=skipped, rejected=rejected, gap_at=gap_at
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SnapshotBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
