"""Materialized view storage (paper Section 2.4).

A *materialized view* is the precomputed result ``V(t)`` of applying a
view pattern ``V`` to a document ``t`` — a set of subtrees of ``t``,
represented by their root nodes (node identity inside the original
document is preserved, which is what makes ``R(V(t)) = P(t)`` an equality
of answer sets).

:class:`ViewStore` manages named documents and named views and their
materializations; the query engine (:mod:`repro.views.engine`) evaluates
rewritings against these stored forests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.embedding import TreeIndex, evaluate
from ..errors import UnknownViewError, ViewEngineError
from ..patterns.ast import Pattern
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree

__all__ = ["MaterializedView", "ViewStore"]


@dataclass
class MaterializedView:
    """A view definition plus its materialization per document.

    Attributes
    ----------
    name:
        View identifier.
    pattern:
        The view pattern ``V``.
    results:
        ``document name -> frozenset of answer nodes`` (the roots of the
        subtrees in ``V(t)``).
    """

    name: str
    pattern: Pattern
    results: dict[str, frozenset[TNode]] = field(default_factory=dict)

    def answer_count(self, document: str | None = None) -> int:
        """Stored answer cardinality (for one document or overall)."""
        if document is not None:
            return len(self.results.get(document, frozenset()))
        return sum(len(nodes) for nodes in self.results.values())


class ViewStore:
    """Named documents and materialized views over them.

    Typical usage::

        store = ViewStore()
        store.add_document("bib", tree)
        store.define_view("entries", parse_pattern("dblp/*[author]"))
        forest = store.view_answers("entries", "bib")

    Mutation contract: registered documents are treated as immutable.
    After mutating a document tree in place, call :meth:`refresh` —
    it re-materializes every view *and* rebuilds the cached tree index
    that :meth:`evaluate` (and so direct answering) runs on.
    """

    def __init__(self) -> None:
        self._documents: dict[str, XMLTree] = {}
        self._views: dict[str, MaterializedView] = {}
        # Per-document bitset indexes, shared across every pattern
        # evaluated on that document (materialization, direct answering,
        # replay).  Dropped by :meth:`refresh` (document mutation).
        self._indexes: dict[str, TreeIndex] = {}

    def _index(self, name: str) -> TreeIndex:
        index = self._indexes.get(name)
        if index is None:
            index = TreeIndex(self.document(name).root)
            self._indexes[name] = index
        return index

    def evaluate(self, pattern: Pattern, document: str):
        """``pattern(t)`` on a named document, via the cached tree index.

        Correct as long as the document has not been mutated since the
        last :meth:`add_document`/:meth:`refresh` (see the class-level
        mutation contract).
        """
        return evaluate(pattern, self.document(document), index=self._index(document))

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def add_document(self, name: str, tree: XMLTree) -> None:
        """Register a document; existing views are materialized over it."""
        if name in self._documents:
            raise ViewEngineError(f"document {name!r} already registered")
        self._documents[name] = tree
        index = self._index(name)
        for view in self._views.values():
            view.results[name] = frozenset(evaluate(view.pattern, tree, index=index))

    def document(self, name: str) -> XMLTree:
        """Look up a document by name."""
        try:
            return self._documents[name]
        except KeyError:
            raise ViewEngineError(f"unknown document {name!r}") from None

    def documents(self) -> list[str]:
        """Registered document names."""
        return sorted(self._documents)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def define_view(self, name: str, pattern: Pattern) -> MaterializedView:
        """Define a view and materialize it over all documents."""
        if name in self._views:
            raise ViewEngineError(f"view {name!r} already defined")
        view = MaterializedView(name=name, pattern=pattern)
        for doc_name, tree in self._documents.items():
            view.results[doc_name] = frozenset(
                evaluate(pattern, tree, index=self._index(doc_name))
            )
        self._views[name] = view
        return view

    def drop_view(self, name: str) -> None:
        """Remove a view and its materializations."""
        self._view(name)
        del self._views[name]

    def _view(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise UnknownViewError(f"unknown view {name!r}") from None

    def view(self, name: str) -> MaterializedView:
        """Look up a view by name."""
        return self._view(name)

    def views(self) -> list[MaterializedView]:
        """All views, sorted by name."""
        return [self._views[name] for name in sorted(self._views)]

    def view_answers(self, view_name: str, document: str) -> frozenset[TNode]:
        """The stored forest ``V(t)`` for one view and document."""
        view = self._view(view_name)
        self.document(document)  # validate
        return view.results.get(document, frozenset())

    def refresh(self, document: str) -> None:
        """Rebuild the document's index and re-materialize every view.

        Required after any in-place mutation of the document tree, even
        for stores without views — the cached index behind
        :meth:`evaluate` describes the pre-mutation shape.
        """
        tree = self.document(document)
        self._indexes.pop(document, None)  # the old index describes the old shape
        index = self._index(document)
        for view in self._views.values():
            view.results[document] = frozenset(
                evaluate(view.pattern, tree, index=index)
            )
