"""Materialized view storage (paper Section 2.4).

A *materialized view* is the precomputed result ``V(t)`` of applying a
view pattern ``V`` to a document ``t`` — a set of subtrees of ``t``,
represented by their root nodes (node identity inside the original
document is preserved, which is what makes ``R(V(t)) = P(t)`` an equality
of answer sets).

:class:`ViewStore` manages named documents and named views and their
materializations; the query engine (:mod:`repro.views.engine`) evaluates
rewritings against these stored forests.

Storage backends
----------------
Materializations flow through a :class:`~repro.views.persist.StoreBackend`
keyed by ``(document digest, pattern digest)`` — see
:mod:`repro.views.persist` for the protocol and the digest/keying rules.
The default :class:`~repro.views.persist.MemoryBackend` keeps entries in
process memory (the historical behavior); pass
``ViewStore(backend=SnapshotBackend(path))`` for a disk-backed store
whose materializations survive restarts: a re-registered document with
the same shape loads its forests instead of re-evaluating every view.
Node identity is restored by resolving persisted preorder indexes
against the live document, so Prop 2.4's identity-based answer sets
keep working across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.embedding import TreeIndex, evaluate
from ..errors import UnknownDocumentError, UnknownViewError, ViewEngineError
from ..patterns.ast import Pattern
from ..patterns.serialize import to_xpath
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree
from .persist import MemoryBackend, StoreBackend, document_digest, pattern_digest

__all__ = ["MaterializedView", "ViewStore"]


@dataclass
class MaterializedView:
    """A view definition plus its materialization per document.

    Attributes
    ----------
    name:
        View identifier.
    pattern:
        The view pattern ``V``.
    results:
        ``document name -> frozenset of answer nodes`` (the roots of the
        subtrees in ``V(t)``).
    """

    name: str
    pattern: Pattern
    results: dict[str, frozenset[TNode]] = field(default_factory=dict)

    def answer_count(self, document: str | None = None) -> int:
        """Stored answer cardinality (for one document or overall)."""
        if document is not None:
            return len(self.results.get(document, frozenset()))
        return sum(len(nodes) for nodes in self.results.values())


class ViewStore:
    """Named documents and materialized views over them.

    Typical usage::

        store = ViewStore()
        store.add_document("bib", tree)
        store.define_view("entries", parse_pattern("dblp/*[author]"))
        forest = store.view_answers("entries", "bib")

    Mutation contract: registered documents are treated as immutable.
    After mutating a document tree in place, call :meth:`refresh` —
    it re-materializes every view *and* rebuilds the cached tree index
    that :meth:`evaluate` (and so direct answering) runs on.

    Parameters
    ----------
    backend:
        Storage backend for materializations (see
        :mod:`repro.views.persist`).  Defaults to a fresh in-memory
        backend; pass a :class:`~repro.views.persist.SnapshotBackend`
        for a disk-backed store.
    """

    def __init__(self, backend: StoreBackend | None = None) -> None:
        self.backend: StoreBackend = backend if backend is not None else MemoryBackend()
        self._documents: dict[str, XMLTree] = {}
        self._views: dict[str, MaterializedView] = {}
        # Per-document bitset indexes, shared across every pattern
        # evaluated on that document (materialization, direct answering,
        # replay).  Dropped by :meth:`refresh` (document mutation).
        self._indexes: dict[str, TreeIndex] = {}
        # Per-document shape digest and preorder node list — the stable
        # addressing persisted materializations are keyed/resolved by.
        # Both dropped by :meth:`refresh`.
        self._digests: dict[str, str] = {}
        self._preorders: dict[str, list[TNode]] = {}
        self._positions: dict[str, dict[int, int]] = {}

    def _index(self, name: str) -> TreeIndex:
        index = self._indexes.get(name)
        if index is None:
            index = TreeIndex(self.document(name).root)
            self._indexes[name] = index
        return index

    def _digest(self, name: str) -> str:
        digest = self._digests.get(name)
        if digest is None:
            digest = document_digest(self.document(name))
            self._digests[name] = digest
        return digest

    def _preorder(self, name: str) -> list[TNode]:
        order = self._preorders.get(name)
        if order is None:
            order = list(self.document(name).nodes())
            self._preorders[name] = order
        return order

    def _position(self, name: str) -> dict[int, int]:
        position = self._positions.get(name)
        if position is None:
            position = {
                id(node): i for i, node in enumerate(self._preorder(name))
            }
            self._positions[name] = position
        return position

    def document_digest(self, name: str) -> str:
        """The shape digest persisted materializations are keyed by."""
        return self._digest(name)

    def node_ids(self, name: str, nodes) -> list[int]:
        """Sorted preorder indexes of ``nodes`` within a named document.

        The process-independent encoding of an answer set — what the
        backends persist and what the catalog server ships across
        process boundaries (node identity does not pickle).
        """
        position = self._position(name)
        return sorted(position[id(node)] for node in nodes)

    def nodes_at(self, name: str, ids) -> set[TNode]:
        """Resolve preorder indexes back to live nodes (:meth:`node_ids`
        inverse).

        The engine's intersection plans meet their legs as preorder-id
        sets and resolve the survivors through here; raises on an
        out-of-range index (ids must come from this document).
        """
        order = self._preorder(name)
        resolved = set()
        for i in ids:
            if not 0 <= i < len(order):
                raise ViewEngineError(
                    f"preorder index {i} out of range for document "
                    f"{name!r} ({len(order)} nodes)"
                )
            resolved.add(order[i])
        return resolved

    def _materialize(self, pattern: Pattern, doc_name: str) -> frozenset[TNode]:
        """``V(t)`` through the backend: load if present, else evaluate+save.

        Loaded entries are preorder indexes; they resolve against the
        live document because the backend key includes the document's
        shape digest.  Out-of-range indexes (a stale or hand-edited
        entry) are treated as a miss and rebuilt.
        """
        digest = self._digest(doc_name)
        pat_key = pattern_digest(pattern)
        order = self._preorder(doc_name)
        loaded = self.backend.load(digest, pat_key)
        if loaded is not None:
            if all(0 <= i < len(order) for i in loaded):
                return frozenset(order[i] for i in loaded)
            # A rejected entry is not a served hit: the backend
            # reclassifies it as a miss so warm-start monitoring
            # (`backend["hits"] > 0`) cannot mistake an all-stale store
            # for a working one.
            self.backend.reject_loaded(digest, pat_key)
        nodes = frozenset(
            evaluate(pattern, self.document(doc_name), index=self._index(doc_name))
        )
        position = self._position(doc_name)
        self.backend.save(
            digest,
            pat_key,
            sorted(position[id(node)] for node in nodes),
            xpath=to_xpath(pattern),
        )
        return nodes

    def close(self) -> None:
        """Close the storage backend (flushes a disk-backed log)."""
        self.backend.close()

    def evaluate(self, pattern: Pattern, document: str):
        """``pattern(t)`` on a named document, via the cached tree index.

        Correct as long as the document has not been mutated since the
        last :meth:`add_document`/:meth:`refresh` (see the class-level
        mutation contract).
        """
        return evaluate(pattern, self.document(document), index=self._index(document))

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def add_document(self, name: str, tree: XMLTree) -> None:
        """Register a document; existing views are materialized over it."""
        if name in self._documents:
            raise ViewEngineError(f"document {name!r} already registered")
        self._documents[name] = tree
        for view in self._views.values():
            view.results[name] = self._materialize(view.pattern, name)

    def document(self, name: str) -> XMLTree:
        """Look up a document by name."""
        try:
            return self._documents[name]
        except KeyError:
            raise UnknownDocumentError(f"unknown document {name!r}") from None

    def documents(self) -> list[str]:
        """Registered document names."""
        return sorted(self._documents)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def define_view(self, name: str, pattern: Pattern) -> MaterializedView:
        """Define a view and materialize it over all documents."""
        if name in self._views:
            raise ViewEngineError(f"view {name!r} already defined")
        view = MaterializedView(name=name, pattern=pattern)
        for doc_name in self._documents:
            view.results[doc_name] = self._materialize(pattern, doc_name)
        self._views[name] = view
        return view

    def drop_view(self, name: str) -> None:
        """Remove a view and its materializations."""
        self._view(name)
        del self._views[name]

    def _view(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise UnknownViewError(f"unknown view {name!r}") from None

    def view(self, name: str) -> MaterializedView:
        """Look up a view by name."""
        return self._view(name)

    def views(self) -> list[MaterializedView]:
        """All views, sorted by name."""
        return [self._views[name] for name in sorted(self._views)]

    def view_answers(self, view_name: str, document: str) -> frozenset[TNode]:
        """The stored forest ``V(t)`` for one view and document."""
        view = self._view(view_name)
        self.document(document)  # validate
        return view.results.get(document, frozenset())

    def refresh(self, document: str) -> None:
        """Rebuild the document's index and re-materialize every view.

        Required after any in-place mutation of the document tree, even
        for stores without views — the cached index behind
        :meth:`evaluate` describes the pre-mutation shape.

        If the mutation changed the document's shape digest, the
        backend's entries under the old digest are invalidated (a
        disk-backed store appends an ``invalidate`` record), so stale
        materializations are dropped rather than left to accumulate.
        A shape-preserving rewrite keeps its entries: the digest binds
        everything the persisted indexes depend on.  Invalidation is
        skipped while another registered document still has the old
        shape — its entries remain live under that digest.  (Sharing a
        snapshot log across *stores* has no such guard: invalidation is
        garbage collection, never required for correctness, but it can
        cost another same-shape store its warm start.)
        """
        self.document(document)  # validate the name first
        old_digest = self._digests.pop(document, None)
        self._indexes.pop(document, None)  # the old index describes the old shape
        self._preorders.pop(document, None)
        self._positions.pop(document, None)
        new_digest = self._digest(document)
        if old_digest is not None and old_digest != new_digest:
            old_shape_still_used = any(
                self._digest(other) == old_digest
                for other in self._documents
                if other != document
            )
            if not old_shape_still_used:
                self.backend.invalidate_document(old_digest)
        for view in self._views.values():
            view.results[document] = self._materialize(view.pattern, document)
