"""View selection for a query workload (paper §6, open problem 4).

    "Given a set of queries that are frequently asked, what is an
    optimal set of views that should be maintained so that the queries
    could be evaluated as quickly as possible?"

This module implements a practical greedy advisor for that problem:

* **candidate views** are the selection-path prefixes ``P≤k`` of the
  workload queries (the shapes for which the paper's natural candidates
  are designed, so rewritability checks are fast and usually decisive);
* each candidate is scored by the workload weight of the queries it can
  answer (decided by the rewriting solver) against its estimated storage
  cost (answer count on a sample document when provided, else pattern
  generality);
* a **greedy set-cover** pass picks views until the budget is exhausted
  or every answerable query is covered.

This is explicitly a heuristic for an open problem; the solver-backed
answerability test is exact, the selection is greedy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.embedding import evaluate
from ..core.rewrite import RewriteSolver
from ..core.selection import sub_le
from ..patterns.ast import Pattern
from ..xmltree.tree import XMLTree

__all__ = ["AdvisorResult", "CandidateView", "advise_views"]


@dataclass
class CandidateView:
    """A scored candidate view.

    Attributes
    ----------
    pattern:
        The view pattern.
    covered:
        Indices of workload queries answerable from this view.
    benefit:
        Total weight of covered queries.
    cost:
        Estimated storage cost (sample answer count, or pattern size
        fallback).
    """

    pattern: Pattern
    covered: set[int] = field(default_factory=set)
    benefit: float = 0.0
    cost: float = 1.0


@dataclass
class AdvisorResult:
    """Outcome of view selection.

    Attributes
    ----------
    views:
        Chosen views, in selection order.
    coverage:
        query index -> chosen view index (first view answering it).
    uncovered:
        Workload indices no candidate view could answer.
    """

    views: list[CandidateView] = field(default_factory=list)
    coverage: dict[int, int] = field(default_factory=dict)
    uncovered: list[int] = field(default_factory=list)


def _candidate_views(queries: Sequence[Pattern]) -> list[Pattern]:
    """Distinct selection-path prefixes of the workload queries."""
    seen: set[tuple] = set()
    candidates: list[Pattern] = []
    for query in queries:
        if query.is_empty:
            continue
        for k in range(query.depth + 1):
            prefix = sub_le(query, k)
            key = prefix.canonical_key()
            if key not in seen:
                seen.add(key)
                candidates.append(prefix)
    return candidates


def advise_views(
    queries: Sequence[Pattern],
    weights: Sequence[float] | None = None,
    max_views: int = 3,
    sample: XMLTree | None = None,
    solver: RewriteSolver | None = None,
    max_cost_fraction: float = 0.6,
) -> AdvisorResult:
    """Pick up to ``max_views`` views for a weighted query workload.

    Parameters
    ----------
    queries:
        The workload patterns.
    weights:
        Per-query weights (frequencies); uniform when None.
    max_views:
        Budget on the number of materialized views.
    sample:
        Optional sample document for storage-cost estimation.
    solver:
        Rewriting solver (the answerability oracle).
    max_cost_fraction:
        With a sample, candidates whose stored size exceeds this fraction
        of the document are discarded — a view that stores (almost) the
        whole document prunes nothing, so answering from it is no better
        than direct evaluation.
    """
    solver = solver or RewriteSolver(use_fallback=False)
    weights = list(weights) if weights is not None else [1.0] * len(queries)
    if len(weights) != len(queries):
        raise ValueError("weights must align with queries")

    scored: list[CandidateView] = []
    for pattern in _candidate_views(queries):
        candidate = CandidateView(pattern=pattern)
        for index, query in enumerate(queries):
            if solver.solve(query, pattern).found:
                candidate.covered.add(index)
                candidate.benefit += weights[index]
        if not candidate.covered:
            continue
        if sample is not None:
            # Materializing V stores the subtrees rooted at its answers;
            # cost is their total node count (a root view costs the
            # whole document, as it should).
            answers = evaluate(pattern, sample)
            candidate.cost = float(max(sum(n.size() for n in answers), 1))
            if candidate.cost > max_cost_fraction * sample.size():
                continue  # stores (nearly) the whole document: no benefit
        else:
            # Generality proxy: shallower, less constrained views are
            # assumed to store more.
            candidate.cost = float(max(1, 16 - 2 * pattern.size()))
        scored.append(candidate)

    result = AdvisorResult()
    remaining = set(range(len(queries)))
    answerable = set().union(*(c.covered for c in scored)) if scored else set()
    while len(result.views) < max_views and remaining & answerable:
        # Greedy: maximize newly covered workload weight, break ties by
        # cheaper storage.
        def _key(candidate: CandidateView) -> tuple[float, float]:
            gain_weight = sum(weights[i] for i in candidate.covered & remaining)
            return (gain_weight, -candidate.cost)

        best = max(scored, key=_key)
        gain = best.covered & remaining
        if not gain:
            break
        view_index = len(result.views)
        result.views.append(best)
        for index in sorted(gain):
            result.coverage[index] = view_index
        remaining -= gain
        scored.remove(best)
        if not scored:
            break
    result.uncovered = sorted(remaining)
    return result
