"""View selection for a query workload (paper §6, open problem 4).

    "Given a set of queries that are frequently asked, what is an
    optimal set of views that should be maintained so that the queries
    could be evaluated as quickly as possible?"

This module implements a practical greedy advisor for that problem:

* **candidate views** are the selection-path prefixes ``P≤k`` of the
  workload queries (the shapes for which the paper's natural candidates
  are designed, so rewritability checks are fast and usually decisive);
* each candidate is scored by the workload weight of the queries it can
  answer against its estimated storage cost (answer count on a sample
  document when provided, else pattern generality);
* a **greedy set-cover** pass picks views until the budget is exhausted
  or every answerable query is covered.

Batched scoring
---------------
The default scorer decides answerability with containment machinery
only — the same discipline as ``QueryEngine.plan`` — and never issues a
per-pair :class:`~repro.core.rewrite.RewriteSolver` call:

1. duplicate workload queries are folded first (query streams repeat by
   design), so every decision is made once per *distinct* query;
2. candidates whose sample storage cost is over budget are dropped
   before any answerability work — they would be discarded whatever
   they cover, and near-root views are exactly the ones with the
   largest canonical-model spaces;
3. a candidate that is the query's own prefix ``P≤k`` answers it by
   construction (``P≥k ∘ P≤k ≡ P``: the k-node branches merely appear
   twice in the composition) — zero tests;
4. the Proposition 3.1 syntactic prechecks refute most other pairs for
   free, and double as *upper bounds* for a lazy-greedy selection: a
   candidate's exact coverage is computed — through one
   :class:`~repro.core.containment.ContainmentBatch` per query, shared
   across candidates via the cross-call engine LRU — only when the
   candidate reaches the top of the selection heap (Minoux's lazy
   evaluation; provably the same selection as the eager greedy);
5. surviving pairs verify a natural candidate ``R`` (Section 4) by two
   containment tests, ``P ⊑ R ∘ V`` through the batch and ``R ∘ V ⊑ P``
   through the memoized ``contains``, after an equivalence-preserving
   prune of the composition's duplicated branches
   (:func:`~repro.core.containment.prune_subsumed_branches` — since
   promoted into the shared containment dispatch, so the solver path
   applies it too; the advisor still prunes eagerly to feed its
   isomorphism fast path).

Every claimed coverage carries a *verified* rewriting, so the full
solver agrees on each claim.  The pre-batching per-pair implementation
is retained as ``scorer="solver"`` — the reference for equivalence
testing and the baseline the replay benchmark measures against.

This is explicitly a heuristic for an open problem; the
containment-backed answerability test is exact on its claims (sound),
the selection is greedy.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
from dataclasses import dataclass, field
from typing import Sequence

from ..core.candidates import natural_candidates
from ..core.composition import compose
from ..core.containment import (
    ContainmentBatch,
    contains,
    prune_subsumed_branches_memoized,
)
from ..core.embedding import TreeIndex, evaluate
from ..core.intersect import merge_parts
from ..core.rewrite import RewriteSolver, precheck_refutation
from ..core.selection import sub_ge, sub_le
from ..errors import ContainmentBudgetError, ViewEngineError
from ..patterns.ast import Pattern
from ..patterns.parse import parse_pattern
from ..patterns.serialize import to_xpath
from ..xmltree.tree import XMLTree

__all__ = [
    "AdvisorResult",
    "AdvisorStats",
    "CandidateView",
    "PairSelection",
    "advise_views",
    "deserialize_selection",
    "selection_fingerprint",
    "serialize_selection",
]

#: Version tag baked into selection fingerprints and payloads: any
#: change to the advisor's selection semantics must bump it, so stale
#: persisted selections are recomputed rather than silently reused.
SELECTION_FORMAT = 1

#: How many non-selected candidates join the pair-crediting seed pool
#: (``tractable_only=False``).  Already-selected views always join for
#: free — a pair over two chosen views costs zero extra slots.
_PAIR_SEED_LIMIT = 6


@dataclass
class AdvisorStats:
    """Counters for one :func:`advise_views` run.

    ``solver_calls`` stays 0 on the batched scoring path — the replay
    benchmark and the regression tests assert exactly that.
    ``intersection_pairs_scored``/``intersection_pairs_selected`` track
    the pair-crediting phase (``tractable_only=False``; both stay 0
    otherwise).
    """

    candidates: int = 0
    distinct_queries: int = 0
    candidates_scored: int = 0
    pairs_considered: int = 0
    precheck_rejections: int = 0
    prefix_fast_path: int = 0
    containment_tests: int = 0
    solver_calls: int = 0
    intersection_pairs_scored: int = 0
    intersection_pairs_selected: int = 0


@dataclass
class CandidateView:
    """A scored candidate view.

    Attributes
    ----------
    pattern:
        The view pattern.
    covered:
        Indices of workload queries answerable from this view.
    rewritings:
        ``query index -> verified rewriting`` for each covered query.
    benefit:
        Total weight of covered queries.
    cost:
        Estimated storage cost (sample answer count, or pattern size
        fallback).
    """

    pattern: Pattern
    covered: set[int] = field(default_factory=set)
    rewritings: dict[int, Pattern] = field(default_factory=dict)
    benefit: float = 0.0
    cost: float = 1.0


@dataclass
class PairSelection:
    """A credited view *pair*: queries answerable only by intersection.

    Attributes
    ----------
    view_indexes:
        Indexes into :attr:`AdvisorResult.views` of the two members.
    covered:
        Workload indices answerable from the pair's intersection (and
        from no single chosen view).
    rewritings:
        ``workload index -> (compensation for member 0, member 1)`` —
        the verified per-leg rewritings whose compensated compositions
        sandwich the query (see :mod:`repro.core.intersect`).
    benefit:
        Total weight of pair-covered queries.
    """

    view_indexes: tuple[int, int]
    covered: set[int] = field(default_factory=set)
    rewritings: dict[int, tuple[Pattern, Pattern]] = field(
        default_factory=dict
    )
    benefit: float = 0.0


@dataclass
class AdvisorResult:
    """Outcome of view selection.

    Attributes
    ----------
    views:
        Chosen views, in selection order (pair-phase members whose
        singles cover nothing appear with empty ``covered``).
    coverage:
        query index -> chosen view index (first view answering it).
    uncovered:
        Workload indices covered neither by a chosen view nor by a
        credited pair.
    pairs:
        Credited view pairs (``tractable_only=False`` only; empty
        otherwise), in selection order.
    stats:
        Scoring counters for the run.
    """

    views: list[CandidateView] = field(default_factory=list)
    coverage: dict[int, int] = field(default_factory=dict)
    uncovered: list[int] = field(default_factory=list)
    pairs: list[PairSelection] = field(default_factory=list)
    stats: AdvisorStats = field(default_factory=AdvisorStats)


def _candidate_views(
    queries: Sequence[Pattern],
) -> tuple[list[Pattern], list[dict[int, int]]]:
    """Distinct selection-path prefixes of the workload queries.

    Returns the candidates plus, per candidate, its *prefix provenance*:
    ``{query index: k}`` for every workload query of which the candidate
    is (isomorphic to) the depth-``k`` prefix ``P≤k``.  For such pairs
    ``P≥k ∘ P≤k ≡ P`` holds by construction — the k-node branches appear
    twice in the composition, redundantly — so answerability needs no
    containment test at all (the shape
    :func:`~repro.patterns.random.random_rewrite_instance` builds its
    ground truth on).
    """
    seen: dict[tuple, int] = {}
    candidates: list[Pattern] = []
    provenance: list[dict[int, int]] = []
    for index, query in enumerate(queries):
        if query.is_empty:
            continue
        for k in range(query.depth + 1):
            prefix = sub_le(query, k)
            key = prefix.canonical_key()
            ci = seen.get(key)
            if ci is None:
                ci = len(candidates)
                seen[key] = ci
                candidates.append(prefix)
                provenance.append({})
            provenance[ci].setdefault(index, k)
    return candidates, provenance


def _precheck_rejects(query: Pattern, view: Pattern) -> bool:
    """Proposition 3.1 refutations, purely syntactic (no containment).

    Delegates to the solver's own
    :func:`~repro.core.rewrite.precheck_refutation`, so the batched
    scorer and the reference solver can never drift apart.
    """
    return precheck_refutation(query, view) is not None


class _BatchedScorer:
    """Lazily scores candidates against the folded workload.

    One :class:`ContainmentBatch` per distinct query is kept for the
    whole run, so every candidate evaluated against that query reuses
    the query-side canonical setup (and, through the cross-call engine
    LRU, so do later advisor runs on the same queries).
    """

    def __init__(
        self,
        unique: Sequence[Pattern],
        candidates: Sequence[Pattern],
        provenance: Sequence[dict[int, int]],
        max_models: int | None,
        stats: AdvisorStats,
    ):
        self.unique = unique
        self.candidates = candidates
        self.provenance = provenance
        self.max_models = max_models
        self.stats = stats
        self._batches: dict[int, ContainmentBatch] = {}
        self._possible: dict[int, set[int]] = {}
        self._coverage: dict[int, dict[int, Pattern]] = {}
        self._parts: dict[tuple[int, int], tuple[Pattern, Pattern] | None] = {}

    def _batch(self, ui: int) -> ContainmentBatch:
        batch = self._batches.get(ui)
        if batch is None:
            batch = ContainmentBatch(
                self.unique[ui], max_models=self.max_models
            )
            self._batches[ui] = batch
        return batch

    def part(self, ci: int, ui: int) -> tuple[Pattern, Pattern] | None:
        """An intersection *part* of query ``ui`` from candidate ``ci``.

        Returns ``(compensation R, composition R ∘ V)`` with
        ``P ⊑ R ∘ V`` verified through the query's shared batch — the
        over-approximation an intersection leg needs — or None.  The
        un-relaxed natural candidate is preferred (it is tighter).
        Memoized per (candidate, query); budget overruns memoize None.
        """
        key = (ci, ui)
        if key in self._parts:
            return self._parts[key]
        view = self.candidates[ci]
        query = self.unique[ui]
        found: tuple[Pattern, Pattern] | None = None
        if (
            not view.is_empty
            and not query.is_empty
            and view.depth <= query.depth
        ):
            batch = self._batch(ui)
            for candidate in natural_candidates(query, view.depth):
                composition = compose(candidate, view)
                if composition.is_empty:
                    continue
                composition = prune_subsumed_branches_memoized(composition)
                self.stats.containment_tests += 1
                try:
                    forward = batch.contains(composition)
                except ContainmentBudgetError:
                    break
                if forward:
                    found = (candidate, composition)
                    break
        self._parts[key] = found
        return found

    def upper_bound(self, ci: int) -> set[int]:
        """Unique-query indices that *might* be answerable (no tests)."""
        cached = self._possible.get(ci)
        if cached is not None:
            return cached
        view = self.candidates[ci]
        possible: set[int] = set()
        for ui, query in enumerate(self.unique):
            if query.is_empty:
                # Υ is answerable from any view via the empty rewriting
                # (the solver's "empty-query" rule).
                possible.add(ui)
            elif ui in self.provenance[ci]:
                possible.add(ui)
            elif not view.is_empty and not _precheck_rejects(query, view):
                possible.add(ui)
            else:
                self.stats.precheck_rejections += 1
        self._possible[ci] = possible
        return possible

    def coverage(self, ci: int) -> dict[int, Pattern]:
        """Exact coverage ``{unique index: verified rewriting}``.

        Only the pairs the (memoized) upper bound kept are tested — the
        syntactic precheck already ran there, once.
        """
        cached = self._coverage.get(ci)
        if cached is not None:
            return cached
        self.stats.candidates_scored += 1
        view = self.candidates[ci]
        covered: dict[int, Pattern] = {}
        for ui in sorted(self.upper_bound(ci)):
            query = self.unique[ui]
            self.stats.pairs_considered += 1
            if query.is_empty:
                covered[ui] = Pattern.empty()
                continue
            k = self.provenance[ci].get(ui)
            if k is not None:
                self.stats.prefix_fast_path += 1
                covered[ui] = sub_ge(query, k)
                continue
            batch = self._batches.get(ui)
            if batch is None:
                batch = ContainmentBatch(query, max_models=self.max_models)
                self._batches[ui] = batch
            for candidate in natural_candidates(query, view.depth):
                composition = compose(candidate, view)
                if composition.is_empty:
                    continue
                # The memoized variant: the containment dispatch below
                # looks the same pattern up again and must hit, not
                # repeat the sibling sweep.
                composition = prune_subsumed_branches_memoized(composition)
                if composition.memo_key() == query.memo_key():
                    # R ∘ V is isomorphic to P: equivalence is free.
                    covered[ui] = candidate
                    break
                self.stats.containment_tests += 1
                if not batch.contains(composition):
                    continue
                self.stats.containment_tests += 1
                if contains(composition, query, max_models=self.max_models):
                    covered[ui] = candidate
                    break
        self._coverage[ci] = covered
        return covered


def _solver_coverage(
    queries: Sequence[Pattern],
    candidates: Sequence[Pattern],
    solver: RewriteSolver,
    stats: AdvisorStats,
) -> list[dict[int, Pattern]]:
    """Reference scorer: one solver call per (query, candidate) pair."""
    coverage: list[dict[int, Pattern]] = [{} for _ in candidates]
    for ci, view in enumerate(candidates):
        for qi, query in enumerate(queries):
            stats.pairs_considered += 1
            stats.solver_calls += 1
            decision = solver.solve(query, view)
            if decision.found:
                coverage[ci][qi] = decision.rewriting
    return coverage


def _pair_coverage(
    scorer: _BatchedScorer,
    ci: int,
    cj: int,
    targets: set[int],
) -> dict[int, tuple[Pattern, Pattern]]:
    """Unique-query indices answerable from the *intersection* of two
    candidates (and verified so), with their per-leg compensations.

    A query is pair-covered when both candidates yield a forward part
    (``P ⊑ Ri ∘ Vi``, via :meth:`_BatchedScorer.part`) and the merged
    composition — exactness certificate included, so
    ``tractable_only=False`` here is safe — contains back into the
    query.  Merges isomorphic to either part alone are skipped: those
    queries belong to single-view coverage, not pair credit.
    """
    covered: dict[int, tuple[Pattern, Pattern]] = {}
    for ui in sorted(targets):
        query = scorer.unique[ui]
        if query.is_empty:
            continue
        pi = scorer.part(ci, ui)
        pj = scorer.part(cj, ui)
        if pi is None or pj is None:
            continue
        merged = merge_parts([pi[1], pj[1]], tractable_only=False)
        if merged is None:
            continue
        merged = prune_subsumed_branches_memoized(merged)
        if merged.memo_key() in (pi[1].memo_key(), pj[1].memo_key()):
            continue
        scorer.stats.containment_tests += 1
        try:
            if contains(merged, query, max_models=scorer.max_models):
                covered[ui] = (pi[0], pj[0])
        except ContainmentBudgetError:
            continue
    return covered


def advise_views(
    queries: Sequence[Pattern],
    weights: Sequence[float] | None = None,
    max_views: int = 3,
    sample: XMLTree | None = None,
    solver: RewriteSolver | None = None,
    max_cost_fraction: float = 0.6,
    scorer: str = "batched",
    max_models: int | None = None,
    tractable_only: bool = True,
) -> AdvisorResult:
    """Pick up to ``max_views`` views for a weighted query workload.

    Parameters
    ----------
    queries:
        The workload patterns.
    weights:
        Per-query weights (frequencies); uniform when None.
    max_views:
        Budget on the number of materialized views.
    sample:
        Optional sample document for storage-cost estimation.
    solver:
        Rewriting solver; only consulted by ``scorer="solver"`` (the
        batched path never calls it).
    max_cost_fraction:
        With a sample, candidates whose stored size exceeds this fraction
        of the document are discarded — a view that stores (almost) the
        whole document prunes nothing, so answering from it is no better
        than direct evaluation.
    scorer:
        ``"batched"`` (default) scores candidates through
        :class:`ContainmentBatch` with no per-pair solver calls;
        ``"solver"`` is the per-pair reference path.
    max_models:
        Canonical-model budget per containment test on the batched path
        (defaults to the solver's budget when a solver is given).
    tractable_only:
        When False, a pair-crediting phase runs after the single-view
        greedy (batched scorer only): queries no single chosen view
        answers are re-tried against the *intersections* of view pairs,
        mirroring the tractability/completeness trade of view-
        intersection rewriting — completeness costs the intractable
        regime's certificates, so it is opt-in.  Credited pairs land in
        :attr:`AdvisorResult.pairs`; the default True keeps the
        historical single-view selection bit-identical.

    Notes
    -----
    Determinism: for fixed inputs the selection (and every counter in
    :class:`AdvisorStats`) is reproducible — the batched scorer's lazy
    evaluation provably matches the eager greedy, and the replay
    harness's :meth:`ReplayReport.counters()
    <repro.workloads.replay.ReplayReport.counters>` contract relies on
    this.  Throughput, however, rides on the cross-call canonical-engine
    LRU in :mod:`repro.core.containment` — tune it with
    :func:`~repro.core.containment.set_engine_cache_limit` (0 disables
    cross-call reuse; the replay benchmark uses exactly that to measure
    the pre-batching baseline) and the result cache with
    :func:`~repro.core.containment.set_cache_limit`.
    """
    if scorer not in ("batched", "solver"):
        raise ValueError(f"unknown scorer {scorer!r}")
    weights = list(weights) if weights is not None else [1.0] * len(queries)
    if len(weights) != len(queries):
        raise ValueError("weights must align with queries")
    if any(weight <= 0 for weight in weights):
        # Weights are query frequencies.  Zero/negative weights would
        # also break the lazy-greedy invariant (upper bounds must
        # dominate exact gains), so both scorers reject them.
        raise ValueError("weights must be positive (they are frequencies)")

    sample_index = TreeIndex(sample.root) if sample is not None else None
    sample_size = sample.size() if sample is not None else 0

    def estimated_cost(pattern: Pattern) -> float:
        if sample_index is not None:
            # Materializing V stores the subtrees rooted at its answers;
            # cost is their total node count (a root view costs the
            # whole document, as it should).  Subtree sizes come from the
            # postorder index: descendants of i are start[i] .. i-1.
            answers = evaluate(pattern, sample, index=sample_index)
            total = sum(
                i - sample_index.start[i] + 1
                for i in (sample_index.index[id(n)] for n in answers)
            )
            return float(max(total, 1))
        # Generality proxy: shallower, less constrained views are
        # assumed to store more.
        return float(max(1, 16 - 2 * pattern.size()))

    def over_budget(cost: float) -> bool:
        return sample is not None and cost > max_cost_fraction * sample_size

    stats = AdvisorStats()
    if scorer == "solver":
        if solver is None:
            solver = RewriteSolver(use_fallback=False, max_models=max_models)
        return _advise_eager(
            queries, weights, max_views, solver, stats,
            estimated_cost, over_budget,
        )

    if max_models is None and solver is not None:
        max_models = solver.max_models

    # Fold duplicate queries (streams repeat queries by design): every
    # scoring decision is made once per distinct query.
    unique: list[Pattern] = []
    orig_to_uniq: list[int] = []
    seen: dict[tuple, int] = {}
    for query in queries:
        key = query.canonical_key()
        ui = seen.get(key)
        if ui is None:
            ui = len(unique)
            seen[key] = ui
            unique.append(query)
        orig_to_uniq.append(ui)
    stats.distinct_queries = len(unique)
    weight_u = [0.0] * len(unique)
    for index, ui in enumerate(orig_to_uniq):
        weight_u[ui] += weights[index]

    candidates, provenance = _candidate_views(unique)
    stats.candidates = len(candidates)
    costs = [estimated_cost(pattern) for pattern in candidates]
    keep = [ci for ci, cost in enumerate(costs) if not over_budget(cost)]
    scorer_state = _BatchedScorer(
        unique, candidates, provenance, max_models, stats
    )

    # Lazy greedy (Minoux): the heap holds (-gain, cost, index) with
    # gain an upper bound until the candidate's coverage has been
    # computed exactly; an entry whose gain is stale (bound-based, or
    # exact but predating the last selection) is re-evaluated and pushed
    # back instead of selected.  Because upper bounds dominate exact
    # gains and shrink monotonically as queries are covered, this
    # selects exactly the views the eager greedy would.
    result = AdvisorResult(stats=stats)
    remaining_u = set(range(len(unique)))
    ub_sets = {ci: scorer_state.upper_bound(ci) for ci in keep}
    heap = [
        (-sum(weight_u[ui] for ui in ub_sets[ci]), costs[ci], ci, False)
        for ci in keep
    ]
    heapq.heapify(heap)
    chosen_unique: list[tuple[int, dict[int, Pattern]]] = []
    while heap and len(chosen_unique) < max_views and remaining_u:
        neg_gain, cost, ci, exact = heapq.heappop(heap)
        if not exact:
            covered = scorer_state.coverage(ci)
            gain = sum(weight_u[ui] for ui in covered if ui in remaining_u)
            heapq.heappush(heap, (-gain, cost, ci, True))
            continue
        covered = scorer_state.coverage(ci)
        gain = sum(weight_u[ui] for ui in covered if ui in remaining_u)
        if gain < -neg_gain:  # stale: predates the last selection
            heapq.heappush(heap, (-gain, cost, ci, True))
            continue
        if gain <= 0:
            break
        chosen_unique.append((ci, covered))
        remaining_u -= set(covered)

    # Pair-crediting phase (opt-in): queries left uncovered by every
    # single view may still be answerable from the *intersection* of two
    # views.  Seed pool = already-chosen views (free: no extra slots)
    # plus the few unchosen candidates with the highest residual upper
    # bound; greedy over pairs by (gain, fewer new slots).
    pair_selected: list[tuple[int, int, dict]] = []
    if not tractable_only and remaining_u and max_views >= 2:
        chosen_cis = [ci for ci, _ in chosen_unique]
        extras = sorted(
            (ci for ci in keep if ci not in chosen_cis),
            key=lambda ci: (
                -sum(weight_u[ui] for ui in ub_sets[ci] & remaining_u),
                costs[ci],
                ci,
            ),
        )[:_PAIR_SEED_LIMIT]
        pool = sorted(set(chosen_cis) | set(extras))
        pair_cov: dict[tuple[int, int], dict] = {}
        for i, j in itertools.combinations(pool, 2):
            stats.intersection_pairs_scored += 1
            pair_cov[(i, j)] = _pair_coverage(
                scorer_state, i, j, remaining_u
            )
        while remaining_u:
            in_views = {ci for ci, _ in chosen_unique}
            best_pair = None
            best_key = (0.0, 0)
            for (i, j), cov in sorted(pair_cov.items()):
                slots = (i not in in_views) + (j not in in_views)
                if len(chosen_unique) + slots > max_views:
                    continue
                gain = sum(
                    weight_u[ui] for ui in cov if ui in remaining_u
                )
                key = (gain, -slots)
                if gain > 0 and key > best_key:
                    best_key = key
                    best_pair = (i, j)
            if best_pair is None:
                break
            i, j = best_pair
            for member in (i, j):
                if member not in in_views:
                    chosen_unique.append((member, {}))
            cov = {
                ui: pair_cov[(i, j)][ui]
                for ui in pair_cov[(i, j)]
                if ui in remaining_u
            }
            pair_selected.append((i, j, cov))
            stats.intersection_pairs_selected += 1
            remaining_u -= set(cov)

    # Translate back to original workload indices.
    for view_index, (ci, covered) in enumerate(chosen_unique):
        view = CandidateView(
            pattern=candidates[ci],
            cost=costs[ci],
        )
        for index, ui in enumerate(orig_to_uniq):
            if ui in covered:
                view.covered.add(index)
                view.rewritings[index] = covered[ui]
                view.benefit += weights[index]
                if index not in result.coverage:
                    result.coverage[index] = view_index
        result.views.append(view)
    view_position = {ci: idx for idx, (ci, _) in enumerate(chosen_unique)}
    pair_covered_workload: set[int] = set()
    for i, j, cov in pair_selected:
        pair = PairSelection(
            view_indexes=(view_position[i], view_position[j])
        )
        for index, ui in enumerate(orig_to_uniq):
            if ui in cov:
                pair.covered.add(index)
                pair.rewritings[index] = cov[ui]
                pair.benefit += weights[index]
                pair_covered_workload.add(index)
        result.pairs.append(pair)
    result.uncovered = sorted(
        index
        for index in range(len(queries))
        if index not in result.coverage
        and index not in pair_covered_workload
    )
    return result


# ----------------------------------------------------------------------
# Selection persistence (catalog warm starts)
# ----------------------------------------------------------------------

def selection_fingerprint(
    queries: Sequence[Pattern],
    weights: Sequence[float] | None = None,
    max_views: int = 3,
    max_cost_fraction: float = 0.6,
    max_models: int | None = None,
    scorer: str = "batched",
    tractable_only: bool = True,
) -> str:
    """SHA-256 over everything the advisor's selection depends on.

    The fingerprint binds the workload (pattern signatures, in order,
    with their weights), the budgets and the scorer, plus
    :data:`SELECTION_FORMAT`.  It deliberately does *not* bind the
    sample document: persisted selections are keyed
    ``(document digest, fingerprint)`` by the storage backend, so the
    document half of the key lives there — advise against one document,
    and its digest scopes the record.

    Equal fingerprints ⇒ :func:`advise_views` would make the identical
    selection (signatures identify patterns up to isomorphism and the
    advisor is deterministic), which is what lets a warm start skip
    re-advising without any risk of serving a stale view set.
    """
    body = {
        "format": SELECTION_FORMAT,
        "queries": [query.signature() for query in queries],
        "weights": list(weights) if weights is not None else None,
        "max_views": max_views,
        "max_cost_fraction": max_cost_fraction,
        "max_models": max_models,
        "scorer": scorer,
    }
    if not tractable_only:
        # Added only for the non-default mode so every fingerprint
        # computed before the pair phase existed stays byte-identical
        # (persisted selections survive the upgrade).
        body["intersections"] = {"pairs": True}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def serialize_selection(result: AdvisorResult) -> dict:
    """A JSON-safe record of a selection, for storage-backend persistence.

    Patterns are stored as XPath (round-trips through
    :func:`~repro.patterns.parse.parse_pattern` to an isomorphic
    pattern); enough coverage metadata rides along for reporting, but
    rewritings are *not* persisted — the engine re-derives (and caches)
    them in one decision per (query, view), which is cheap next to
    advising.  Pair credits (``tractable_only=False`` runs) ride along
    under a ``"pairs"`` key, present only when non-empty so historical
    payloads stay byte-identical; :func:`deserialize_selection` ignores
    it (pair members are already in ``"views"``).
    """
    payload = {
        "format": SELECTION_FORMAT,
        "views": [
            {
                "xpath": to_xpath(view.pattern),
                "cost": view.cost,
                "benefit": view.benefit,
            }
            for view in result.views
        ],
        "uncovered": list(result.uncovered),
    }
    if result.pairs:
        payload["pairs"] = [
            {
                "views": list(pair.view_indexes),
                "benefit": pair.benefit,
                "covered": sorted(pair.covered),
            }
            for pair in result.pairs
        ]
    return payload


def deserialize_selection(payload: dict) -> list[Pattern]:
    """The selected view patterns from a persisted record, in order.

    Raises :class:`~repro.errors.ViewEngineError` on a record whose
    format tag does not match — the caller should fall back to
    re-advising (exactly what a fingerprint mismatch would have done).
    """
    if not isinstance(payload, dict) or payload.get("format") != SELECTION_FORMAT:
        raise ViewEngineError(
            "unsupported selection record "
            f"(format {payload.get('format') if isinstance(payload, dict) else payload!r})"
        )
    return [parse_pattern(row["xpath"]) for row in payload["views"]]


def _advise_eager(
    queries: Sequence[Pattern],
    weights: list[float],
    max_views: int,
    solver: RewriteSolver,
    stats: AdvisorStats,
    estimated_cost,
    over_budget,
) -> AdvisorResult:
    """The pre-batching reference path: full matrix, eager greedy."""
    candidates, _ = _candidate_views(queries)
    stats.candidates = len(candidates)
    stats.distinct_queries = len(
        {query.canonical_key() for query in queries}
    )
    coverage = _solver_coverage(queries, candidates, solver, stats)

    scored: list[CandidateView] = []
    for pattern, covered in zip(candidates, coverage):
        if not covered:
            continue
        cost = estimated_cost(pattern)
        if over_budget(cost):
            continue
        scored.append(
            CandidateView(
                pattern=pattern,
                covered=set(covered),
                rewritings=dict(covered),
                benefit=sum(weights[index] for index in covered),
                cost=cost,
            )
        )

    result = AdvisorResult(stats=stats)
    remaining = set(range(len(queries)))
    answerable = set().union(*(c.covered for c in scored)) if scored else set()
    while len(result.views) < max_views and remaining & answerable:
        # Greedy: maximize newly covered workload weight, break ties by
        # cheaper storage.
        def _key(candidate: CandidateView) -> tuple[float, float]:
            gain_weight = sum(weights[i] for i in candidate.covered & remaining)
            return (gain_weight, -candidate.cost)

        best = max(scored, key=_key)
        gain = best.covered & remaining
        if not gain:
            break
        view_index = len(result.views)
        result.views.append(best)
        for index in sorted(gain):
            result.coverage[index] = view_index
        remaining -= gain
        scored.remove(best)
        if not scored:
            break
    result.uncovered = sorted(remaining)
    return result
