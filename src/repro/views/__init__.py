"""Materialized views and rewriting-backed query answering (Section 2.4
plus the paper's motivating applications).

* :class:`ViewStore` / :class:`MaterializedView` — named documents and
  precomputed ``V(t)`` forests.
* :class:`QueryEngine` — plans and executes queries directly or via a
  rewriting over a stored view (Prop 2.4 guarantees equal answers).
* :class:`ViewCache` — an LRU semantic query cache in the style of the
  systems the paper cites ([3, 5, 13, 18]), but with sound-and-complete
  rewriting decisions.
"""

from .advisor import AdvisorResult, CandidateView, advise_views
from .cache import CachedView, CacheStats, ViewCache
from .engine import EngineStats, QueryEngine, QueryPlan
from .store import MaterializedView, ViewStore

__all__ = [
    "AdvisorResult",
    "CandidateView",
    "advise_views",
    "CachedView",
    "CacheStats",
    "ViewCache",
    "EngineStats",
    "QueryEngine",
    "QueryPlan",
    "MaterializedView",
    "ViewStore",
]
