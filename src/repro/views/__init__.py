"""Materialized views and rewriting-backed query answering (Section 2.4
plus the paper's motivating applications).

* :class:`ViewStore` / :class:`MaterializedView` — named documents and
  precomputed ``V(t)`` forests.
* :class:`QueryEngine` — plans and executes queries directly or via a
  rewriting over a stored view (Prop 2.4 guarantees equal answers).
* :class:`ViewCache` — an LRU semantic query cache in the style of the
  systems the paper cites ([3, 5, 13, 18]), but with sound-and-complete
  rewriting decisions.
* :mod:`repro.views.persist` — storage backends behind the store:
  the in-memory default and the append-only disk snapshot log that
  makes materializations survive process restarts.
"""

from .advisor import AdvisorResult, CandidateView, advise_views
from .cache import CachedView, CacheStats, ViewCache
from .engine import BatchAnswer, EngineStats, QueryEngine, QueryPlan
from .persist import (
    BackendStats,
    MemoryBackend,
    SnapshotBackend,
    StoreBackend,
    document_digest,
    pattern_digest,
)
from .store import MaterializedView, ViewStore

__all__ = [
    "AdvisorResult",
    "CandidateView",
    "advise_views",
    "CachedView",
    "CacheStats",
    "ViewCache",
    "BatchAnswer",
    "EngineStats",
    "QueryEngine",
    "QueryPlan",
    "BackendStats",
    "MemoryBackend",
    "SnapshotBackend",
    "StoreBackend",
    "document_digest",
    "pattern_digest",
    "MaterializedView",
    "ViewStore",
]
