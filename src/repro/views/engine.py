"""Rewriting-backed query answering over materialized views.

The engine answers a query pattern ``P`` over a document ``t`` either

* **directly** — evaluating ``P`` on ``t``, or
* **via a view** — finding a rewriting ``R`` with ``R ∘ V ≡ P``
  (Section 2.4) and evaluating ``R`` over the stored forest ``V(t)``;
  by Proposition 2.4 the answers are identical.

The engine records per-query plans and counters, which benchmark C5 uses
to reproduce the paper's motivating speedup scenario (the view forest is
usually far smaller than the document).

Batched and async serving
-------------------------
:meth:`QueryEngine.answer_many` answers a whole batch at once: duplicate
queries are folded by ``memo_key`` so each *distinct* query is planned
and executed exactly once (query streams repeat by design — the fold is
usually large), every execution shares the store's per-document
:class:`~repro.core.embedding.TreeIndex`, and each distinct query's
view-equivalence prefilter runs as one
:class:`~repro.core.containment.ContainmentBatch`-backed
:func:`~repro.core.containment.contains_all` sweep over all undecided
views.  The per-batch :class:`EngineStats` delta comes back on the
:class:`BatchAnswer`.  :meth:`QueryEngine.serve` wraps that in an
``asyncio`` loop that drains a request queue into batches.

Performance knobs
-----------------
Planning cost is dominated by containment, so the engine inherits the
two process-wide LRU knobs in :mod:`repro.core.containment`:
:func:`~repro.core.containment.set_cache_limit` bounds the memoized
containment-result cache, and
:func:`~repro.core.containment.set_engine_cache_limit` bounds the
cross-call canonical-engine LRU keyed by ``(memo_key, bound)`` (0
disables cross-call reuse; hits/evictions surface in
:class:`~repro.core.containment.ContainmentStats`).  Per-engine rewrite
decisions are additionally cached in ``_decisions``; that cache is
epoch-guarded, so a
:func:`~repro.patterns.ast.reset_memo_interning` call in a long-lived
service invalidates it automatically.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.composition import compose
from ..core.containment import contains, contains_all
from ..core.embedding import evaluate, evaluate_forest
from ..core.rewrite import RewriteResult, RewriteSolver, RewriteStatus
from ..errors import ViewEngineError
from ..patterns.ast import Pattern, memo_epoch
from ..xmltree.node import TNode
from .store import ViewStore

__all__ = ["QueryPlan", "EngineStats", "BatchAnswer", "QueryEngine"]


@dataclass
class QueryPlan:
    """How a query was (or would be) answered.

    ``kind`` is ``"view"`` or ``"direct"``; for view plans, ``view_name``
    and the verified ``rewriting`` are set.
    """

    kind: str
    view_name: str | None = None
    rewriting: Pattern | None = None
    rewrite_result: RewriteResult | None = None


@dataclass
class EngineStats:
    """Counters over the engine's lifetime.

    ``decision_cache_hits`` counts rewrite decisions served from the
    per-engine cache instead of the solver — the number the replay
    harness reports as plan-cache effectiveness on repeating streams.
    """

    direct_answers: int = 0
    view_answers: int = 0
    rewrites_attempted: int = 0
    rewrites_found: int = 0
    decision_cache_hits: int = 0

    def reset(self) -> None:
        self.direct_answers = 0
        self.view_answers = 0
        self.rewrites_attempted = 0
        self.rewrites_found = 0
        self.decision_cache_hits = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "direct_answers": self.direct_answers,
            "view_answers": self.view_answers,
            "rewrites_attempted": self.rewrites_attempted,
            "rewrites_found": self.rewrites_found,
            "decision_cache_hits": self.decision_cache_hits,
        }


@dataclass
class BatchAnswer:
    """Outcome of one :meth:`QueryEngine.answer_many` call.

    Attributes
    ----------
    answers:
        One answer set per input query, in input order (duplicates get
        the same — shared — set object).
    plans:
        The plan used for each input query, in input order.
    distinct_queries:
        Number of distinct (up to isomorphism) queries in the batch.
    folded_queries:
        Duplicates served from the batch fold without planning or
        execution (``len(answers) - distinct_queries``).
    stats:
        The :class:`EngineStats` delta attributable to this batch.
    elapsed_seconds:
        Wall time for the whole batch.
    """

    answers: list[set[TNode]] = field(default_factory=list)
    plans: list[QueryPlan] = field(default_factory=list)
    distinct_queries: int = 0
    folded_queries: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def queries_per_sec(self) -> float:
        """Batch throughput (0.0 for an empty or instantaneous batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.answers) / self.elapsed_seconds


class QueryEngine:
    """Answer queries over a :class:`~repro.views.store.ViewStore`.

    Parameters
    ----------
    store:
        The view store holding documents and materialized views.
    solver:
        Rewriting solver (defaults to the paper's full solver).
    """

    def __init__(self, store: ViewStore, solver: RewriteSolver | None = None):
        self.store = store
        self.solver = solver or RewriteSolver()
        self.stats = EngineStats()
        # Cache of rewrite decisions keyed by (query key, view name).
        # Query keys are memo_key tokens, valid only within one interning
        # epoch — _decision_cache() drops the dict when the epoch moves.
        self._decisions: dict[tuple, RewriteResult] = {}
        self._decisions_epoch = memo_epoch()

    def _decision_cache(self) -> dict[tuple, RewriteResult]:
        """The decision cache, cleared if the interning epoch changed."""
        epoch = memo_epoch()
        if epoch != self._decisions_epoch:
            self._decisions.clear()
            self._decisions_epoch = epoch
        return self._decisions

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def rewrite_against(self, query: Pattern, view_name: str) -> RewriteResult:
        """Find (and cache) a rewriting of ``query`` using a named view."""
        view = self.store.view(view_name)
        decisions = self._decision_cache()
        key = (query.memo_key(), view_name)
        cached = decisions.get(key)
        if cached is not None:
            self.stats.decision_cache_hits += 1
            return cached
        self.stats.rewrites_attempted += 1
        decision = self.solver.solve(query, view.pattern)
        if decision.found:
            self.stats.rewrites_found += 1
        decisions[key] = decision
        return decision

    def _seed_equivalent_decisions(self, query: Pattern) -> None:
        """Batched fast path: views equivalent to the query rewrite trivially.

        ``V ≡ P`` means the single-node rewriting ``R = out(V)`` works
        (``R ∘ V = V ≡ P``).  The forward containments ``P ⊑ V`` are
        decided for *all* undecided views in one :func:`contains_all`
        batch — sharing the canonical-model setup for ``P`` — and only
        views passing it pay for the backward check.  Decisions found
        here are cached so the full solver is never invoked for them.
        """
        decisions = self._decision_cache()
        undecided = [
            view
            for view in self.store.views()
            if (query.memo_key(), view.name) not in decisions
            and not view.pattern.is_empty
        ]
        if not undecided or query.is_empty:
            return
        # Respect the solver's canonical-model budget: without it this
        # prefilter could enumerate an unbounded model space the solver
        # itself would have refused.
        budget = self.solver.max_models
        forward = contains_all(
            query,
            [view.pattern for view in undecided],
            max_models=budget,
        )
        for view, fwd in zip(undecided, forward):
            if not fwd or not contains(view.pattern, query, max_models=budget):
                continue
            rewriting = Pattern.single(view.pattern.output.label)
            decision = RewriteResult(
                status=RewriteStatus.FOUND,
                rewriting=rewriting,
                rule="view-equivalent",
                equivalence_tests=1,
                trace=[
                    f"view {view.name!r} is equivalent to the query; "
                    "the single-node rewriting applies."
                ],
            )
            self.stats.rewrites_attempted += 1
            self.stats.rewrites_found += 1
            decisions[(query.memo_key(), view.name)] = decision

    def plan(self, query: Pattern, document: str) -> QueryPlan:
        """Choose a plan: the usable view with the smallest stored forest.

        Falls back to a direct plan when no view admits a rewriting.
        """
        best: QueryPlan | None = None
        best_size: int | None = None
        self._seed_equivalent_decisions(query)
        for view in self.store.views():
            decision = self.rewrite_against(query, view.name)
            if not decision.found:
                continue
            size = view.answer_count(document)
            if best_size is None or size < best_size:
                best = QueryPlan(
                    kind="view",
                    view_name=view.name,
                    rewriting=decision.rewriting,
                    rewrite_result=decision,
                )
                best_size = size
        return best or QueryPlan(kind="direct")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def answer_direct(self, query: Pattern, document: str) -> set[TNode]:
        """Evaluate ``P(t)`` directly on the document."""
        self.stats.direct_answers += 1
        return self.store.evaluate(query, document)

    def answer_with_view(
        self, query: Pattern, view_name: str, document: str
    ) -> set[TNode]:
        """Answer via one specific view; raises if no rewriting exists.

        Evaluates the rewriting over the stored forest ``V(t)`` — the
        document itself is *not* touched (the paper's caching scenario).
        """
        decision = self.rewrite_against(query, view_name)
        if not decision.found:
            raise ViewEngineError(
                f"query has no rewriting using view {view_name!r} "
                f"(status: {decision.status.value})"
            )
        forest = self.store.view_answers(view_name, document)
        self.stats.view_answers += 1
        return evaluate_forest(decision.rewriting, forest)

    def answer(self, query: Pattern, document: str) -> set[TNode]:
        """Answer using the planner's choice (view if possible)."""
        plan = self.plan(query, document)
        if plan.kind == "view":
            assert plan.view_name is not None
            return self.answer_with_view(query, plan.view_name, document)
        return self.answer_direct(query, document)

    # ------------------------------------------------------------------
    # Batched / async serving
    # ------------------------------------------------------------------
    def answer_many(
        self, queries: Sequence[Pattern], document: str
    ) -> BatchAnswer:
        """Answer a batch of queries, folding duplicates.

        Each *distinct* query (up to isomorphism, via ``memo_key``) is
        planned and executed exactly once; duplicates receive the same
        answer set without touching the planner, the decision cache or
        the store.  All executions share the store's cached per-document
        :class:`~repro.core.embedding.TreeIndex`, and each distinct
        query's view-equivalence prefilter decides all undecided views
        through a single batched containment sweep
        (:meth:`_seed_equivalent_decisions`).  Answer sets are shared
        between duplicates — copy before mutating.

        Returns a :class:`BatchAnswer` with per-input answers/plans and
        the per-batch :class:`EngineStats` delta.
        """
        before = self.stats.snapshot()
        t0 = time.perf_counter()
        answers: dict[int, set[TNode]] = {}
        plans: dict[int, QueryPlan] = {}
        result = BatchAnswer()
        for query in queries:
            key = query.memo_key()
            if key not in answers:
                plan = self.plan(query, document)
                if plan.kind == "view":
                    assert plan.view_name is not None
                    answer = self.answer_with_view(query, plan.view_name, document)
                else:
                    answer = self.answer_direct(query, document)
                answers[key] = answer
                plans[key] = plan
            result.answers.append(answers[key])
            result.plans.append(plans[key])
        result.elapsed_seconds = time.perf_counter() - t0
        result.distinct_queries = len(answers)
        result.folded_queries = len(result.answers) - len(answers)
        after = self.stats.snapshot()
        result.stats = {key: after[key] - before[key] for key in after}
        return result

    async def serve(
        self,
        requests: "asyncio.Queue",
        document: str,
        *,
        batch_size: int = 32,
    ) -> int:
        """Async serving loop: drain the queue into batches, answer, resolve.

        ``requests`` carries ``(query, future)`` pairs — the future is
        resolved with the query's answer set (or the raised exception).
        The loop blocks on the first request, then greedily drains up to
        ``batch_size`` already-queued requests so bursts are folded
        through :meth:`answer_many`; an explicit ``None`` item shuts the
        loop down after the in-flight batch.  Returns the number of
        requests served.

        Planning/execution is synchronous CPU work — the loop yields to
        the event loop between batches, not within one, so pick
        ``batch_size`` for the latency you can tolerate.
        """
        if batch_size < 1:
            raise ViewEngineError("serve batch_size must be >= 1")
        served = 0
        stopping = False
        while not stopping:
            item = await requests.get()
            if item is None:
                requests.task_done()
                break
            batch = [item]
            while len(batch) < batch_size:
                try:
                    nxt = requests.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            try:
                result = self.answer_many([query for query, _ in batch], document)
                for (_, future), answer in zip(batch, result.answers):
                    if not future.done():
                        future.set_result(answer)
            except Exception:
                # One pathological query must not fail its batchmates:
                # fall back to per-request answering so only the
                # offending request(s) carry an exception.
                for query, future in batch:
                    if future.done():
                        continue
                    try:
                        future.set_result(self.answer(query, document))
                    except Exception as exc:
                        future.set_exception(exc)
            served += len(batch)
            # One task_done per consumed item (plus the drained sentinel,
            # when stopping), so producers may await requests.join().
            for _ in range(len(batch) + (1 if stopping else 0)):
                requests.task_done()
            await asyncio.sleep(0)  # let producers/consumers run
        return served

    # ------------------------------------------------------------------
    # Verification helper (Prop 2.4 end-to-end)
    # ------------------------------------------------------------------
    def verify_plan(self, query: Pattern, view_name: str, document: str) -> bool:
        """Check ``R(V(t)) = P(t)`` for the chosen rewriting on one doc.

        Always True when a rewriting was found (Prop 2.4); exposed for
        tests and demos.
        """
        via_view = self.answer_with_view(query, view_name, document)
        direct = evaluate(query, self.store.document(document))
        decision = self.rewrite_against(query, view_name)
        composed = compose(decision.rewriting, self.store.view(view_name).pattern)
        via_composition = evaluate(composed, self.store.document(document))
        return via_view == direct == via_composition
