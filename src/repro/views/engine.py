"""Rewriting-backed query answering over materialized views.

The engine answers a query pattern ``P`` over a document ``t`` either

* **directly** — evaluating ``P`` on ``t``, or
* **via a view** — finding a rewriting ``R`` with ``R ∘ V ≡ P``
  (Section 2.4) and evaluating ``R`` over the stored forest ``V(t)``;
  by Proposition 2.4 the answers are identical.

The engine records per-query plans and counters, which benchmark C5 uses
to reproduce the paper's motivating speedup scenario (the view forest is
usually far smaller than the document).

Batched and async serving
-------------------------
:meth:`QueryEngine.answer_many` answers a whole batch at once: duplicate
queries are folded by ``memo_key`` so each *distinct* query is planned
and executed exactly once (query streams repeat by design — the fold is
usually large), every execution shares the store's per-document
:class:`~repro.core.embedding.TreeIndex`, and each distinct query's
view-equivalence prefilter runs as one
:class:`~repro.core.containment.ContainmentBatch`-backed
:func:`~repro.core.containment.contains_all` sweep over all undecided
views.  The per-batch :class:`EngineStats` delta comes back on the
:class:`BatchAnswer`.  :meth:`QueryEngine.serve` wraps that in an
``asyncio`` loop that drains a request queue into batches (optionally
running each batch in an :class:`~concurrent.futures.Executor` so
planning stays off the event loop).  An optional **cross-batch answer
cache** (``answer_cache_size``) memoizes whole answer sets per
``(document, query)``, validated against the store's document digest —
the catalog layer (:mod:`repro.catalog`) turns it on for its engines.

Performance knobs
-----------------
Planning cost is dominated by containment, so the engine inherits the
two process-wide LRU knobs in :mod:`repro.core.containment`:
:func:`~repro.core.containment.set_cache_limit` bounds the memoized
containment-result cache, and
:func:`~repro.core.containment.set_engine_cache_limit` bounds the
cross-call canonical-engine LRU keyed by ``(memo_key, bound)`` (0
disables cross-call reuse; hits/evictions surface in
:class:`~repro.core.containment.ContainmentStats`).  Per-engine rewrite
decisions are additionally cached in ``_decisions``; that cache is
epoch-guarded, so a
:func:`~repro.patterns.ast.reset_memo_interning` call in a long-lived
service invalidates it automatically.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Sequence

from ..core.composition import compose
from ..core.containment import contains, contains_all
from ..core.embedding import evaluate, evaluate_forest
from ..core.rewrite import RewriteResult, RewriteSolver, RewriteStatus
from ..errors import ViewEngineError
from ..patterns.ast import Pattern, memo_epoch
from ..xmltree.node import TNode
from .store import ViewStore

__all__ = ["QueryPlan", "EngineStats", "BatchAnswer", "QueryEngine"]


@dataclass
class QueryPlan:
    """How a query was (or would be) answered.

    ``kind`` is ``"view"`` or ``"direct"``; for view plans, ``view_name``
    and the verified ``rewriting`` are set.
    """

    kind: str
    view_name: str | None = None
    rewriting: Pattern | None = None
    rewrite_result: RewriteResult | None = None


@dataclass
class EngineStats:
    """Counters over the engine's lifetime.

    ``decision_cache_hits`` counts rewrite decisions served from the
    per-engine cache instead of the solver — the number the replay
    harness reports as plan-cache effectiveness on repeating streams.
    ``answer_cache_hits`` counts whole *answers* served from the
    cross-batch answer cache (disabled unless the engine was built with
    ``answer_cache_size > 0``).
    """

    direct_answers: int = 0
    view_answers: int = 0
    rewrites_attempted: int = 0
    rewrites_found: int = 0
    decision_cache_hits: int = 0
    answer_cache_hits: int = 0

    def reset(self) -> None:
        self.direct_answers = 0
        self.view_answers = 0
        self.rewrites_attempted = 0
        self.rewrites_found = 0
        self.decision_cache_hits = 0
        self.answer_cache_hits = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "direct_answers": self.direct_answers,
            "view_answers": self.view_answers,
            "rewrites_attempted": self.rewrites_attempted,
            "rewrites_found": self.rewrites_found,
            "decision_cache_hits": self.decision_cache_hits,
            "answer_cache_hits": self.answer_cache_hits,
        }


@dataclass
class BatchAnswer:
    """Outcome of one :meth:`QueryEngine.answer_many` call.

    Attributes
    ----------
    answers:
        One answer set per input query, in input order (duplicates get
        the same — shared — set object).
    plans:
        The plan used for each input query, in input order.
    distinct_queries:
        Number of distinct (up to isomorphism) queries in the batch.
    folded_queries:
        Duplicates served from the batch fold without planning or
        execution (``len(answers) - distinct_queries``).
    stats:
        The :class:`EngineStats` delta attributable to this batch.
    elapsed_seconds:
        Wall time for the whole batch.
    """

    answers: list[set[TNode]] = field(default_factory=list)
    plans: list[QueryPlan] = field(default_factory=list)
    distinct_queries: int = 0
    folded_queries: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def queries_per_sec(self) -> float:
        """Batch throughput (0.0 for an empty or instantaneous batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.answers) / self.elapsed_seconds


class QueryEngine:
    """Answer queries over a :class:`~repro.views.store.ViewStore`.

    Parameters
    ----------
    store:
        The view store holding documents and materialized views.
    solver:
        Rewriting solver (defaults to the paper's full solver).
    answer_cache_size:
        Capacity of the cross-batch answer cache (0 — the default —
        disables it).  When enabled, whole answer sets are memoized by
        ``(document name, query memo_key)`` and validated on every hit
        against the store's current document digest, so an in-place
        mutation followed by :meth:`ViewStore.refresh
        <repro.views.store.ViewStore.refresh>` can never serve a stale
        answer — the digest token moved, the entry is dropped.  Cached
        sets are shared with callers (the :meth:`answer_many` duplicate
        contract): copy before mutating.
    """

    def __init__(
        self,
        store: ViewStore,
        solver: RewriteSolver | None = None,
        *,
        answer_cache_size: int = 0,
    ):
        if answer_cache_size < 0:
            raise ViewEngineError("answer_cache_size must be >= 0")
        self.store = store
        self.solver = solver or RewriteSolver()
        self.stats = EngineStats()
        self.answer_cache_size = answer_cache_size
        # Cache of rewrite decisions keyed by (query key, view name).
        # Query keys are memo_key tokens, valid only within one interning
        # epoch — _decision_cache() drops the dict when the epoch moves.
        self._decisions: dict[tuple, RewriteResult] = {}
        self._decisions_epoch = memo_epoch()
        # Cross-batch answer cache: (document name, query memo_key) ->
        # (document digest at caching time, answer set, plan).  Same
        # epoch guard as the decision cache (memo_key tokens die with
        # the epoch); the digest is re-validated on every hit.
        self._answers: "OrderedDict[tuple[str, int], tuple[str, set[TNode], QueryPlan]]" = (
            OrderedDict()
        )
        self._answers_epoch = memo_epoch()

    def _decision_cache(self) -> dict[tuple, RewriteResult]:
        """The decision cache, cleared if the interning epoch changed."""
        epoch = memo_epoch()
        if epoch != self._decisions_epoch:
            self._decisions.clear()
            self._decisions_epoch = epoch
        return self._decisions

    # ------------------------------------------------------------------
    # Cross-batch answer cache
    # ------------------------------------------------------------------
    def _answer_cache(self) -> "OrderedDict[tuple[str, int], tuple[str, set[TNode], QueryPlan]]":
        """The answer cache, cleared if the interning epoch changed."""
        epoch = memo_epoch()
        if epoch != self._answers_epoch:
            self._answers.clear()
            self._answers_epoch = epoch
        return self._answers

    def _cached_answer(
        self, query: Pattern, document: str
    ) -> tuple[set[TNode], QueryPlan] | None:
        """A validated cache hit, or None.

        The entry's digest token must equal the store's *current* digest
        for the document — the validity token that makes the cache safe
        across :meth:`ViewStore.refresh`.
        """
        if self.answer_cache_size == 0:
            return None
        cache = self._answer_cache()
        key = (document, query.memo_key())
        entry = cache.get(key)
        if entry is None:
            return None
        token, answer, plan = entry
        if token != self.store.document_digest(document):
            del cache[key]
            return None
        cache.move_to_end(key)
        self.stats.answer_cache_hits += 1
        return answer, plan

    def _remember_answer(
        self, query: Pattern, document: str, answer: set[TNode], plan: QueryPlan
    ) -> None:
        if self.answer_cache_size == 0:
            return
        cache = self._answer_cache()
        key = (document, query.memo_key())
        cache[key] = (self.store.document_digest(document), answer, plan)
        cache.move_to_end(key)
        while len(cache) > self.answer_cache_size:
            cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def rewrite_against(self, query: Pattern, view_name: str) -> RewriteResult:
        """Find (and cache) a rewriting of ``query`` using a named view."""
        view = self.store.view(view_name)
        decisions = self._decision_cache()
        key = (query.memo_key(), view_name)
        cached = decisions.get(key)
        if cached is not None:
            self.stats.decision_cache_hits += 1
            return cached
        self.stats.rewrites_attempted += 1
        decision = self.solver.solve(query, view.pattern)
        if decision.found:
            self.stats.rewrites_found += 1
        decisions[key] = decision
        return decision

    def _seed_equivalent_decisions(self, query: Pattern) -> None:
        """Batched fast path: views equivalent to the query rewrite trivially.

        ``V ≡ P`` means the single-node rewriting ``R = out(V)`` works
        (``R ∘ V = V ≡ P``).  The forward containments ``P ⊑ V`` are
        decided for *all* undecided views in one :func:`contains_all`
        batch — sharing the canonical-model setup for ``P`` — and only
        views passing it pay for the backward check.  Decisions found
        here are cached so the full solver is never invoked for them.
        """
        decisions = self._decision_cache()
        undecided = [
            view
            for view in self.store.views()
            if (query.memo_key(), view.name) not in decisions
            and not view.pattern.is_empty
        ]
        if not undecided or query.is_empty:
            return
        # Respect the solver's canonical-model budget: without it this
        # prefilter could enumerate an unbounded model space the solver
        # itself would have refused.
        budget = self.solver.max_models
        forward = contains_all(
            query,
            [view.pattern for view in undecided],
            max_models=budget,
        )
        for view, fwd in zip(undecided, forward):
            if not fwd or not contains(view.pattern, query, max_models=budget):
                continue
            rewriting = Pattern.single(view.pattern.output.label)
            decision = RewriteResult(
                status=RewriteStatus.FOUND,
                rewriting=rewriting,
                rule="view-equivalent",
                equivalence_tests=1,
                trace=[
                    f"view {view.name!r} is equivalent to the query; "
                    "the single-node rewriting applies."
                ],
            )
            self.stats.rewrites_attempted += 1
            self.stats.rewrites_found += 1
            decisions[(query.memo_key(), view.name)] = decision

    def plan(self, query: Pattern, document: str) -> QueryPlan:
        """Choose a plan: the usable view with the smallest stored forest.

        Falls back to a direct plan when no view admits a rewriting.
        """
        best: QueryPlan | None = None
        best_size: int | None = None
        self._seed_equivalent_decisions(query)
        for view in self.store.views():
            decision = self.rewrite_against(query, view.name)
            if not decision.found:
                continue
            size = view.answer_count(document)
            if best_size is None or size < best_size:
                best = QueryPlan(
                    kind="view",
                    view_name=view.name,
                    rewriting=decision.rewriting,
                    rewrite_result=decision,
                )
                best_size = size
        return best or QueryPlan(kind="direct")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def answer_direct(self, query: Pattern, document: str) -> set[TNode]:
        """Evaluate ``P(t)`` directly on the document."""
        self.stats.direct_answers += 1
        return self.store.evaluate(query, document)

    def answer_with_view(
        self, query: Pattern, view_name: str, document: str
    ) -> set[TNode]:
        """Answer via one specific view; raises if no rewriting exists.

        Evaluates the rewriting over the stored forest ``V(t)`` — the
        document itself is *not* touched (the paper's caching scenario).
        """
        decision = self.rewrite_against(query, view_name)
        if not decision.found:
            raise ViewEngineError(
                f"query has no rewriting using view {view_name!r} "
                f"(status: {decision.status.value})"
            )
        forest = self.store.view_answers(view_name, document)
        self.stats.view_answers += 1
        return evaluate_forest(decision.rewriting, forest)

    def answer(self, query: Pattern, document: str) -> set[TNode]:
        """Answer using the planner's choice (view if possible).

        With an answer cache enabled, a repeated query skips planning
        *and* execution entirely (the cached set is shared — copy before
        mutating).
        """
        cached = self._cached_answer(query, document)
        if cached is not None:
            return cached[0]
        plan = self.plan(query, document)
        if plan.kind == "view":
            assert plan.view_name is not None
            answer = self.answer_with_view(query, plan.view_name, document)
        else:
            answer = self.answer_direct(query, document)
        self._remember_answer(query, document, answer, plan)
        return answer

    # ------------------------------------------------------------------
    # Batched / async serving
    # ------------------------------------------------------------------
    def answer_many(
        self, queries: Sequence[Pattern], document: str
    ) -> BatchAnswer:
        """Answer a batch of queries, folding duplicates.

        Each *distinct* query (up to isomorphism, via ``memo_key``) is
        planned and executed exactly once; duplicates receive the same
        answer set without touching the planner, the decision cache or
        the store.  All executions share the store's cached per-document
        :class:`~repro.core.embedding.TreeIndex`, and each distinct
        query's view-equivalence prefilter decides all undecided views
        through a single batched containment sweep
        (:meth:`_seed_equivalent_decisions`).  With an answer cache
        enabled (``answer_cache_size > 0``) the fold extends *across*
        batches: a distinct query seen in an earlier batch is served
        from the cache — digest-validated — without planning or
        execution.  Answer sets are shared between duplicates — copy
        before mutating.

        Returns a :class:`BatchAnswer` with per-input answers/plans and
        the per-batch :class:`EngineStats` delta.
        """
        before = self.stats.snapshot()
        t0 = time.perf_counter()
        answers: dict[int, set[TNode]] = {}
        plans: dict[int, QueryPlan] = {}
        result = BatchAnswer()
        for query in queries:
            key = query.memo_key()
            if key not in answers:
                cached = self._cached_answer(query, document)
                if cached is not None:
                    answers[key], plans[key] = cached
                else:
                    plan = self.plan(query, document)
                    if plan.kind == "view":
                        assert plan.view_name is not None
                        answer = self.answer_with_view(
                            query, plan.view_name, document
                        )
                    else:
                        answer = self.answer_direct(query, document)
                    self._remember_answer(query, document, answer, plan)
                    answers[key] = answer
                    plans[key] = plan
            result.answers.append(answers[key])
            result.plans.append(plans[key])
        result.elapsed_seconds = time.perf_counter() - t0
        result.distinct_queries = len(answers)
        result.folded_queries = len(result.answers) - len(answers)
        after = self.stats.snapshot()
        result.stats = {key: after[key] - before[key] for key in after}
        return result

    async def serve(
        self,
        requests: "asyncio.Queue",
        document: str,
        *,
        batch_size: int = 32,
        executor: Executor | None = None,
    ) -> int:
        """Async serving loop: drain the queue into batches, answer, resolve.

        ``requests`` carries ``(query, future)`` pairs — the future is
        resolved with the query's answer set (or the raised exception).
        The loop blocks on the first request, then greedily drains up to
        ``batch_size`` already-queued requests so bursts are folded
        through :meth:`answer_many`; an explicit ``None`` item shuts the
        loop down after the in-flight batch.  Returns the number of
        requests served.

        Planning/execution is synchronous CPU work.  Without an
        ``executor`` the loop yields to the event loop between batches,
        not within one — pick ``batch_size`` for the latency you can
        tolerate.  With an ``executor`` each batch's
        :meth:`answer_many` runs off the event loop via
        :meth:`~asyncio.loop.run_in_executor`, so other coroutines stay
        responsive while a batch plans.  The executor must share this
        engine's address space (a ``ThreadPoolExecutor``): answer sets
        are live node references.  Process-level sharding is the
        catalog server's job (:mod:`repro.catalog.server`), which ships
        picklable requests to workers instead of engine objects.
        """
        if batch_size < 1:
            raise ViewEngineError("serve batch_size must be >= 1")
        served = 0
        stopping = False
        loop = asyncio.get_running_loop()
        while not stopping:
            item = await requests.get()
            if item is None:
                requests.task_done()
                break
            batch = [item]
            while len(batch) < batch_size:
                try:
                    nxt = requests.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            try:
                queries = [query for query, _ in batch]
                if executor is not None:
                    result = await loop.run_in_executor(
                        executor, self.answer_many, queries, document
                    )
                else:
                    result = self.answer_many(queries, document)
                for (_, future), answer in zip(batch, result.answers):
                    if not future.done():
                        future.set_result(answer)
            except Exception:
                # One pathological query must not fail its batchmates:
                # fall back to per-request answering so only the
                # offending request(s) carry an exception.  The fallback
                # is the same CPU-bound work, so it stays off the event
                # loop too when an executor was provided.
                for query, future in batch:
                    if future.done():
                        continue
                    try:
                        if executor is not None:
                            answer = await loop.run_in_executor(
                                executor, self.answer, query, document
                            )
                        else:
                            answer = self.answer(query, document)
                        future.set_result(answer)
                    except Exception as exc:
                        future.set_exception(exc)
            served += len(batch)
            # One task_done per consumed item (plus the drained sentinel,
            # when stopping), so producers may await requests.join().
            for _ in range(len(batch) + (1 if stopping else 0)):
                requests.task_done()
            await asyncio.sleep(0)  # let producers/consumers run
        return served

    # ------------------------------------------------------------------
    # Verification helper (Prop 2.4 end-to-end)
    # ------------------------------------------------------------------
    def verify_plan(self, query: Pattern, view_name: str, document: str) -> bool:
        """Check ``R(V(t)) = P(t)`` for the chosen rewriting on one doc.

        Always True when a rewriting was found (Prop 2.4); exposed for
        tests and demos.
        """
        via_view = self.answer_with_view(query, view_name, document)
        direct = evaluate(query, self.store.document(document))
        decision = self.rewrite_against(query, view_name)
        composed = compose(decision.rewriting, self.store.view(view_name).pattern)
        via_composition = evaluate(composed, self.store.document(document))
        return via_view == direct == via_composition
