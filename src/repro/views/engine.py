"""Rewriting-backed query answering over materialized views.

The engine answers a query pattern ``P`` over a document ``t`` either

* **directly** — evaluating ``P`` on ``t``, or
* **via a view** — finding a rewriting ``R`` with ``R ∘ V ≡ P``
  (Section 2.4) and evaluating ``R`` over the stored forest ``V(t)``;
  by Proposition 2.4 the answers are identical.

The engine records per-query plans and counters, which benchmark C5 uses
to reproduce the paper's motivating speedup scenario (the view forest is
usually far smaller than the document).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.composition import compose
from ..core.containment import contains, contains_all
from ..core.embedding import evaluate, evaluate_forest
from ..core.rewrite import RewriteResult, RewriteSolver, RewriteStatus
from ..errors import ViewEngineError
from ..patterns.ast import Pattern
from ..xmltree.node import TNode
from .store import ViewStore

__all__ = ["QueryPlan", "EngineStats", "QueryEngine"]


@dataclass
class QueryPlan:
    """How a query was (or would be) answered.

    ``kind`` is ``"view"`` or ``"direct"``; for view plans, ``view_name``
    and the verified ``rewriting`` are set.
    """

    kind: str
    view_name: str | None = None
    rewriting: Pattern | None = None
    rewrite_result: RewriteResult | None = None


@dataclass
class EngineStats:
    """Counters over the engine's lifetime.

    ``decision_cache_hits`` counts rewrite decisions served from the
    per-engine cache instead of the solver — the number the replay
    harness reports as plan-cache effectiveness on repeating streams.
    """

    direct_answers: int = 0
    view_answers: int = 0
    rewrites_attempted: int = 0
    rewrites_found: int = 0
    decision_cache_hits: int = 0

    def reset(self) -> None:
        self.direct_answers = 0
        self.view_answers = 0
        self.rewrites_attempted = 0
        self.rewrites_found = 0
        self.decision_cache_hits = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "direct_answers": self.direct_answers,
            "view_answers": self.view_answers,
            "rewrites_attempted": self.rewrites_attempted,
            "rewrites_found": self.rewrites_found,
            "decision_cache_hits": self.decision_cache_hits,
        }


class QueryEngine:
    """Answer queries over a :class:`~repro.views.store.ViewStore`.

    Parameters
    ----------
    store:
        The view store holding documents and materialized views.
    solver:
        Rewriting solver (defaults to the paper's full solver).
    """

    def __init__(self, store: ViewStore, solver: RewriteSolver | None = None):
        self.store = store
        self.solver = solver or RewriteSolver()
        self.stats = EngineStats()
        # Cache of rewrite decisions keyed by (query key, view name).
        self._decisions: dict[tuple, RewriteResult] = {}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def rewrite_against(self, query: Pattern, view_name: str) -> RewriteResult:
        """Find (and cache) a rewriting of ``query`` using a named view."""
        view = self.store.view(view_name)
        key = (query.memo_key(), view_name)
        cached = self._decisions.get(key)
        if cached is not None:
            self.stats.decision_cache_hits += 1
            return cached
        self.stats.rewrites_attempted += 1
        decision = self.solver.solve(query, view.pattern)
        if decision.found:
            self.stats.rewrites_found += 1
        self._decisions[key] = decision
        return decision

    def _seed_equivalent_decisions(self, query: Pattern) -> None:
        """Batched fast path: views equivalent to the query rewrite trivially.

        ``V ≡ P`` means the single-node rewriting ``R = out(V)`` works
        (``R ∘ V = V ≡ P``).  The forward containments ``P ⊑ V`` are
        decided for *all* undecided views in one :func:`contains_all`
        batch — sharing the canonical-model setup for ``P`` — and only
        views passing it pay for the backward check.  Decisions found
        here are cached so the full solver is never invoked for them.
        """
        undecided = [
            view
            for view in self.store.views()
            if (query.memo_key(), view.name) not in self._decisions
            and not view.pattern.is_empty
        ]
        if not undecided or query.is_empty:
            return
        # Respect the solver's canonical-model budget: without it this
        # prefilter could enumerate an unbounded model space the solver
        # itself would have refused.
        budget = self.solver.max_models
        forward = contains_all(
            query,
            [view.pattern for view in undecided],
            max_models=budget,
        )
        for view, fwd in zip(undecided, forward):
            if not fwd or not contains(view.pattern, query, max_models=budget):
                continue
            rewriting = Pattern.single(view.pattern.output.label)
            decision = RewriteResult(
                status=RewriteStatus.FOUND,
                rewriting=rewriting,
                rule="view-equivalent",
                equivalence_tests=1,
                trace=[
                    f"view {view.name!r} is equivalent to the query; "
                    "the single-node rewriting applies."
                ],
            )
            self.stats.rewrites_attempted += 1
            self.stats.rewrites_found += 1
            self._decisions[(query.memo_key(), view.name)] = decision

    def plan(self, query: Pattern, document: str) -> QueryPlan:
        """Choose a plan: the usable view with the smallest stored forest.

        Falls back to a direct plan when no view admits a rewriting.
        """
        best: QueryPlan | None = None
        best_size: int | None = None
        self._seed_equivalent_decisions(query)
        for view in self.store.views():
            decision = self.rewrite_against(query, view.name)
            if not decision.found:
                continue
            size = view.answer_count(document)
            if best_size is None or size < best_size:
                best = QueryPlan(
                    kind="view",
                    view_name=view.name,
                    rewriting=decision.rewriting,
                    rewrite_result=decision,
                )
                best_size = size
        return best or QueryPlan(kind="direct")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def answer_direct(self, query: Pattern, document: str) -> set[TNode]:
        """Evaluate ``P(t)`` directly on the document."""
        self.stats.direct_answers += 1
        return self.store.evaluate(query, document)

    def answer_with_view(
        self, query: Pattern, view_name: str, document: str
    ) -> set[TNode]:
        """Answer via one specific view; raises if no rewriting exists.

        Evaluates the rewriting over the stored forest ``V(t)`` — the
        document itself is *not* touched (the paper's caching scenario).
        """
        decision = self.rewrite_against(query, view_name)
        if not decision.found:
            raise ViewEngineError(
                f"query has no rewriting using view {view_name!r} "
                f"(status: {decision.status.value})"
            )
        forest = self.store.view_answers(view_name, document)
        self.stats.view_answers += 1
        return evaluate_forest(decision.rewriting, forest)

    def answer(self, query: Pattern, document: str) -> set[TNode]:
        """Answer using the planner's choice (view if possible)."""
        plan = self.plan(query, document)
        if plan.kind == "view":
            assert plan.view_name is not None
            return self.answer_with_view(query, plan.view_name, document)
        return self.answer_direct(query, document)

    # ------------------------------------------------------------------
    # Verification helper (Prop 2.4 end-to-end)
    # ------------------------------------------------------------------
    def verify_plan(self, query: Pattern, view_name: str, document: str) -> bool:
        """Check ``R(V(t)) = P(t)`` for the chosen rewriting on one doc.

        Always True when a rewriting was found (Prop 2.4); exposed for
        tests and demos.
        """
        via_view = self.answer_with_view(query, view_name, document)
        direct = evaluate(query, self.store.document(document))
        decision = self.rewrite_against(query, view_name)
        composed = compose(decision.rewriting, self.store.view(view_name).pattern)
        via_composition = evaluate(composed, self.store.document(document))
        return via_view == direct == via_composition
