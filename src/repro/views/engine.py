"""Rewriting-backed query answering over materialized views.

The engine answers a query pattern ``P`` over a document ``t`` either

* **directly** — evaluating ``P`` on ``t``,
* **via a view** — finding a rewriting ``R`` with ``R ∘ V ≡ P``
  (Section 2.4) and evaluating ``R`` over the stored forest ``V(t)``;
  by Proposition 2.4 the answers are identical, or
* **via an intersection of views** — when no single view suffices,
  finding a bounded-width combination whose compensated compositions
  ``Ri ∘ Vi`` provably sandwich ``P`` (:mod:`repro.core.intersect`);
  execution intersects the legs' forest evaluations by preorder index
  and never touches the document.

The engine records per-query plans and counters, which benchmark C5 uses
to reproduce the paper's motivating speedup scenario (the view forest is
usually far smaller than the document).

Batched and async serving
-------------------------
:meth:`QueryEngine.answer_many` answers a whole batch at once: duplicate
queries are folded by ``memo_key`` so each *distinct* query is planned
and executed exactly once (query streams repeat by design — the fold is
usually large), every execution shares the store's per-document
:class:`~repro.core.embedding.TreeIndex`, and each distinct query's
view-equivalence prefilter runs as one
:class:`~repro.core.containment.ContainmentBatch`-backed
:func:`~repro.core.containment.contains_all` sweep over all undecided
views.  The per-batch :class:`EngineStats` delta comes back on the
:class:`BatchAnswer`.  :meth:`QueryEngine.serve` wraps that in an
``asyncio`` loop that drains a request queue into batches (optionally
running each batch in an :class:`~concurrent.futures.Executor` so
planning stays off the event loop).  An optional **cross-batch answer
cache** (``answer_cache_size``) memoizes whole answer sets per
``(document, query)``, validated against the store's document digest —
the catalog layer (:mod:`repro.catalog`) turns it on for its engines.

Performance knobs
-----------------
Planning cost is dominated by containment, so the engine inherits the
two process-wide LRU knobs in :mod:`repro.core.containment`:
:func:`~repro.core.containment.set_cache_limit` bounds the memoized
containment-result cache, and
:func:`~repro.core.containment.set_engine_cache_limit` bounds the
cross-call canonical-engine LRU keyed by ``(memo_key, bound)`` (0
disables cross-call reuse; hits/evictions surface in
:class:`~repro.core.containment.ContainmentStats`).  Per-engine rewrite
decisions are additionally cached in ``_decisions``; that cache is
epoch-guarded, so a
:func:`~repro.patterns.ast.reset_memo_interning` call in a long-lived
service invalidates it automatically.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Sequence

import itertools

from ..core.candidates import natural_candidates
from ..core.composition import compose
from ..core.containment import (
    ContainmentBatch,
    contains,
    contains_all,
    prune_subsumed_branches_memoized,
)
from ..core.embedding import evaluate, evaluate_forest
from ..core.intersect import merge_parts
from ..core.rewrite import RewriteResult, RewriteSolver, RewriteStatus
from ..errors import ContainmentBudgetError, ViewEngineError
from ..obs import span
from ..patterns.ast import Pattern, memo_epoch
from ..xmltree.node import TNode
from .store import ViewStore

__all__ = [
    "IntersectionPart",
    "QueryPlan",
    "EngineStats",
    "BatchAnswer",
    "QueryEngine",
]


@dataclass(frozen=True)
class IntersectionPart:
    """One leg of an intersection plan: a compensated view.

    Executing the leg evaluates ``rewriting`` over the stored forest
    ``V(t)`` of ``view_name`` — exactly a single-view plan's execution,
    except the result is one *over-approximation* ``P(t) ⊆ (R ∘ V)(t)``
    rather than the answer itself.
    """

    view_name: str
    rewriting: Pattern


@dataclass
class QueryPlan:
    """How a query was (or would be) answered.

    ``kind`` is ``"view"``, ``"intersection"`` or ``"direct"``.  For
    view plans, ``view_name`` and the verified ``rewriting`` are set.
    For intersection plans, ``parts`` holds the compensated views (a
    two-level DAG: every leg feeds one intersection node) and ``merged``
    the pattern the legs' intersection was verified equivalent to the
    query through.
    """

    kind: str
    view_name: str | None = None
    rewriting: Pattern | None = None
    rewrite_result: RewriteResult | None = None
    parts: tuple[IntersectionPart, ...] = ()
    merged: Pattern | None = None


@dataclass
class EngineStats:
    """Counters over the engine's lifetime.

    ``decision_cache_hits`` counts rewrite decisions served from the
    per-engine cache instead of the solver — the number the replay
    harness reports as plan-cache effectiveness on repeating streams.
    ``answer_cache_hits`` counts whole *answers* served from the
    cross-batch answer cache (disabled unless the engine was built with
    ``answer_cache_size > 0``).  ``intersection_attempts`` counts
    intersection *searches* (run only when no single view answers and
    not served from the per-engine intersection cache),
    ``intersection_plans`` the searches that produced a verified plan,
    and ``intersection_answers`` plan executions.
    """

    direct_answers: int = 0
    view_answers: int = 0
    rewrites_attempted: int = 0
    rewrites_found: int = 0
    decision_cache_hits: int = 0
    answer_cache_hits: int = 0
    intersection_attempts: int = 0
    intersection_plans: int = 0
    intersection_answers: int = 0

    def reset(self) -> None:
        self.direct_answers = 0
        self.view_answers = 0
        self.rewrites_attempted = 0
        self.rewrites_found = 0
        self.decision_cache_hits = 0
        self.answer_cache_hits = 0
        self.intersection_attempts = 0
        self.intersection_plans = 0
        self.intersection_answers = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "direct_answers": self.direct_answers,
            "view_answers": self.view_answers,
            "rewrites_attempted": self.rewrites_attempted,
            "rewrites_found": self.rewrites_found,
            "decision_cache_hits": self.decision_cache_hits,
            "answer_cache_hits": self.answer_cache_hits,
            "intersection_attempts": self.intersection_attempts,
            "intersection_plans": self.intersection_plans,
            "intersection_answers": self.intersection_answers,
        }


@dataclass
class BatchAnswer:
    """Outcome of one :meth:`QueryEngine.answer_many` call.

    Attributes
    ----------
    answers:
        One answer set per input query, in input order (duplicates get
        the same — shared — set object).
    plans:
        The plan used for each input query, in input order.
    distinct_queries:
        Number of distinct (up to isomorphism) queries in the batch.
    folded_queries:
        Duplicates served from the batch fold without planning or
        execution (``len(answers) - distinct_queries``).
    stats:
        The :class:`EngineStats` delta attributable to this batch.
    elapsed_seconds:
        Wall time for the whole batch.
    """

    answers: list[set[TNode]] = field(default_factory=list)
    plans: list[QueryPlan] = field(default_factory=list)
    distinct_queries: int = 0
    folded_queries: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def queries_per_sec(self) -> float:
        """Batch throughput (0.0 for an empty or instantaneous batch)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.answers) / self.elapsed_seconds


class QueryEngine:
    """Answer queries over a :class:`~repro.views.store.ViewStore`.

    Parameters
    ----------
    store:
        The view store holding documents and materialized views.
    solver:
        Rewriting solver (defaults to the paper's full solver).
    answer_cache_size:
        Capacity of the cross-batch answer cache (0 — the default —
        disables it).  When enabled, whole answer sets are memoized by
        ``(document name, query memo_key)`` and validated on every hit
        against the store's current document digest, so an in-place
        mutation followed by :meth:`ViewStore.refresh
        <repro.views.store.ViewStore.refresh>` can never serve a stale
        answer — the digest token moved, the entry is dropped.  Entries
        are stored as frozen copies and every hit returns a *fresh*
        mutable set, so callers may mutate returned answers freely
        without corrupting later hits.
    intersections:
        When True (the default) a query no single view answers is
        additionally planned as an **intersection of views** (see
        :mod:`repro.core.intersect`): bounded-width view combinations
        whose compensated compositions provably sandwich the query.
    tractable_only:
        Restrict intersection merges to the tractable regime (at most
        one descendant edge on the shared selection spine, where the
        merge is unconditionally exact).  ``False`` also accepts
        descendant-heavy spines through the dominated-segment analysis —
        more complete, same soundness, more merge work per query.
    max_intersection_width:
        Largest number of views combined into one intersection plan
        (>= 2; combinations are enumerated smallest-width first).
    """

    #: Cap on merged-containment tests per intersection search — the
    #: combination space is polynomial but a pathological store should
    #: not stall planning; the search gives up (direct plan) past it.
    _INTERSECTION_TEST_LIMIT = 16

    def __init__(
        self,
        store: ViewStore,
        solver: RewriteSolver | None = None,
        *,
        answer_cache_size: int = 0,
        intersections: bool = True,
        tractable_only: bool = True,
        max_intersection_width: int = 2,
    ):
        if answer_cache_size < 0:
            raise ViewEngineError("answer_cache_size must be >= 0")
        if max_intersection_width < 2:
            raise ViewEngineError("max_intersection_width must be >= 2")
        self.store = store
        self.solver = solver or RewriteSolver()
        self.stats = EngineStats()
        self.answer_cache_size = answer_cache_size
        self.intersections = intersections
        self.tractable_only = tractable_only
        self.max_intersection_width = max_intersection_width
        # Intersection-plan cache: (query key, view-set token) -> plan
        # or None.  Misses are cached too — the search is the expensive
        # part either way.  Epoch-guarded like the decision cache, and
        # keyed on the view *set* so a store mutation invalidates
        # naturally.  Plans are document-independent: parts execute
        # against whichever document the caller names.
        self._intersections: dict[tuple, QueryPlan | None] = {}
        self._intersections_epoch = memo_epoch()
        # Cache of rewrite decisions keyed by (query key, view name).
        # Query keys are memo_key tokens, valid only within one interning
        # epoch — _decision_cache() drops the dict when the epoch moves.
        self._decisions: dict[tuple, RewriteResult] = {}
        self._decisions_epoch = memo_epoch()
        # Cross-batch answer cache: (document name, query memo_key) ->
        # (document digest at caching time, answer set, plan).  Same
        # epoch guard as the decision cache (memo_key tokens die with
        # the epoch); the digest is re-validated on every hit.
        self._answers: "OrderedDict[tuple[str, int], tuple[str, frozenset[TNode], QueryPlan]]" = (
            OrderedDict()
        )
        self._answers_epoch = memo_epoch()

    def _decision_cache(self) -> dict[tuple, RewriteResult]:
        """The decision cache, cleared if the interning epoch changed."""
        epoch = memo_epoch()
        if epoch != self._decisions_epoch:
            self._decisions.clear()
            self._decisions_epoch = epoch
        return self._decisions

    def _intersection_cache(self) -> dict[tuple, "QueryPlan | None"]:
        """The intersection-plan cache, epoch-guarded like decisions."""
        epoch = memo_epoch()
        if epoch != self._intersections_epoch:
            self._intersections.clear()
            self._intersections_epoch = epoch
        return self._intersections

    # ------------------------------------------------------------------
    # Cross-batch answer cache
    # ------------------------------------------------------------------
    def _answer_cache(self) -> "OrderedDict[tuple[str, int], tuple[str, frozenset[TNode], QueryPlan]]":
        """The answer cache, cleared if the interning epoch changed."""
        epoch = memo_epoch()
        if epoch != self._answers_epoch:
            self._answers.clear()
            self._answers_epoch = epoch
        return self._answers

    def _cached_answer(
        self, query: Pattern, document: str
    ) -> tuple[set[TNode], QueryPlan] | None:
        """A validated cache hit, or None.

        The entry's digest token must equal the store's *current* digest
        for the document — the validity token that makes the cache safe
        across :meth:`ViewStore.refresh`.  Hits return a **fresh**
        mutable set per call: the cached entry is a frozen copy, so a
        caller mutating one returned answer can never corrupt what later
        hits see.
        """
        if self.answer_cache_size == 0:
            return None
        cache = self._answer_cache()
        key = (document, query.memo_key())
        entry = cache.get(key)
        if entry is None:
            return None
        token, answer, plan = entry
        if token != self.store.document_digest(document):
            del cache[key]
            return None
        cache.move_to_end(key)
        self.stats.answer_cache_hits += 1
        return set(answer), plan

    def _remember_answer(
        self, query: Pattern, document: str, answer: set[TNode], plan: QueryPlan
    ) -> None:
        if self.answer_cache_size == 0:
            return
        cache = self._answer_cache()
        key = (document, query.memo_key())
        # Store a defensive frozen copy: the caller owns (and may
        # mutate) the set it was handed, the cache owns this one.
        cache[key] = (
            self.store.document_digest(document),
            frozenset(answer),
            plan,
        )
        cache.move_to_end(key)
        while len(cache) > self.answer_cache_size:
            cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def rewrite_against(self, query: Pattern, view_name: str) -> RewriteResult:
        """Find (and cache) a rewriting of ``query`` using a named view."""
        view = self.store.view(view_name)
        decisions = self._decision_cache()
        key = (query.memo_key(), view_name)
        cached = decisions.get(key)
        if cached is not None:
            self.stats.decision_cache_hits += 1
            return cached
        self.stats.rewrites_attempted += 1
        decision = self.solver.solve(query, view.pattern)
        if decision.found:
            self.stats.rewrites_found += 1
        decisions[key] = decision
        return decision

    def _seed_equivalent_decisions(self, query: Pattern) -> None:
        """Batched fast path: views equivalent to the query rewrite trivially.

        ``V ≡ P`` means the single-node rewriting ``R = out(V)`` works
        (``R ∘ V = V ≡ P``).  The forward containments ``P ⊑ V`` are
        decided for *all* undecided views in one :func:`contains_all`
        batch — sharing the canonical-model setup for ``P`` — and only
        views passing it pay for the backward check.  Decisions found
        here are cached so the full solver is never invoked for them.
        """
        decisions = self._decision_cache()
        undecided = [
            view
            for view in self.store.views()
            if (query.memo_key(), view.name) not in decisions
            and not view.pattern.is_empty
        ]
        if not undecided or query.is_empty:
            return
        # Respect the solver's canonical-model budget: without it this
        # prefilter could enumerate an unbounded model space the solver
        # itself would have refused.
        budget = self.solver.max_models
        forward = contains_all(
            query,
            [view.pattern for view in undecided],
            max_models=budget,
        )
        for view, fwd in zip(undecided, forward):
            if not fwd or not contains(view.pattern, query, max_models=budget):
                continue
            rewriting = Pattern.single(view.pattern.output.label)
            decision = RewriteResult(
                status=RewriteStatus.FOUND,
                rewriting=rewriting,
                rule="view-equivalent",
                equivalence_tests=1,
                trace=[
                    f"view {view.name!r} is equivalent to the query; "
                    "the single-node rewriting applies."
                ],
            )
            self.stats.rewrites_attempted += 1
            self.stats.rewrites_found += 1
            decisions[(query.memo_key(), view.name)] = decision

    def plan(self, query: Pattern, document: str) -> QueryPlan:
        """Choose a plan: the usable view with the smallest stored forest.

        When no single view admits a rewriting, tries an intersection
        plan (``intersections=True``); falls back to a direct plan.
        """
        with span("engine.plan") as scope:
            best: QueryPlan | None = None
            best_size: int | None = None
            self._seed_equivalent_decisions(query)
            for view in self.store.views():
                decision = self.rewrite_against(query, view.name)
                if not decision.found:
                    continue
                size = view.answer_count(document)
                if best_size is None or size < best_size:
                    best = QueryPlan(
                        kind="view",
                        view_name=view.name,
                        rewriting=decision.rewriting,
                        rewrite_result=decision,
                    )
                    best_size = size
            if best is None and self.intersections:
                best = self.plan_intersection(query)
            chosen = best or QueryPlan(kind="direct")
            scope.set(kind=chosen.kind)
            return chosen

    def plan_intersection(self, query: Pattern) -> QueryPlan | None:
        """A verified intersection plan for ``query``, or None.

        Searches bounded-width view combinations whose compensated
        compositions ``Qi = Ri ∘ Vi`` sandwich the query:

        * per part, ``P ⊑ Qi`` through one shared
          :class:`~repro.core.containment.ContainmentBatch` (so
          ``P(t) ⊆ ∩ Qi(t)``);
        * the parts merge into an exact pattern ``M`` with
          ``∩ Qi(t) ⊆ M(t)`` (:func:`~repro.core.intersect.merge_parts`);
        * one backward test ``M ⊑ P`` closes ``∩ Qi(t) = P(t)``.

        Results — including misses — are cached per (query, view set);
        plans are document-independent.  Containment-budget overruns
        count the combination as unverified rather than failing the
        query (the solver's ``max_models`` is respected throughout).
        """
        if query.is_empty or not self.intersections:
            return None
        views = [
            view
            for view in self.store.views()
            if not view.pattern.is_empty
            and view.pattern.depth <= query.depth
        ]
        if len(views) < 2:
            return None
        token = tuple(
            (view.name, view.pattern.memo_key()) for view in views
        )
        cache = self._intersection_cache()
        key = (query.memo_key(), token)
        if key in cache:
            return cache[key]
        self.stats.intersection_attempts += 1
        plan = self._search_intersection(query, views)
        if plan is not None:
            self.stats.intersection_plans += 1
        cache[key] = plan
        return plan

    def _search_intersection(self, query: Pattern, views) -> QueryPlan | None:
        budget = self.solver.max_models
        try:
            batch = ContainmentBatch(query, max_models=budget)
        except ContainmentBudgetError:
            return None
        # One part per view: the first natural candidate (§3.1) whose
        # composition provably over-approximates the query.  The
        # un-relaxed candidate is tried first — it is the tighter part.
        parts: list[tuple[str, Pattern, Pattern]] = []
        for view in views:
            for candidate in natural_candidates(query, view.pattern.depth):
                composition = compose(candidate, view.pattern)
                if composition.is_empty:
                    continue
                composition = prune_subsumed_branches_memoized(composition)
                try:
                    forward = batch.contains(composition)
                except ContainmentBudgetError:
                    continue
                if forward:
                    parts.append((view.name, candidate, composition))
                    break
        if len(parts) < 2:
            return None
        part_keys = {composition.memo_key() for _, _, composition in parts}
        tested = 0
        for width in range(2, min(self.max_intersection_width, len(parts)) + 1):
            for combo in itertools.combinations(range(len(parts)), width):
                if tested >= self._INTERSECTION_TEST_LIMIT:
                    return None
                merged = merge_parts(
                    [parts[i][2] for i in combo],
                    tractable_only=self.tractable_only,
                )
                if merged is None:
                    continue
                merged = prune_subsumed_branches_memoized(merged)
                if merged.memo_key() in part_keys:
                    # Degenerate combination: the merge collapses onto a
                    # single part, which the solver already rejected.
                    continue
                tested += 1
                try:
                    exact = contains(merged, query, max_models=budget)
                except ContainmentBudgetError:
                    continue
                if exact:
                    return QueryPlan(
                        kind="intersection",
                        parts=tuple(
                            IntersectionPart(
                                view_name=parts[i][0],
                                rewriting=parts[i][1],
                            )
                            for i in combo
                        ),
                        merged=merged,
                    )
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def answer_direct(self, query: Pattern, document: str) -> set[TNode]:
        """Evaluate ``P(t)`` directly on the document."""
        self.stats.direct_answers += 1
        return self.store.evaluate(query, document)

    def answer_with_view(
        self, query: Pattern, view_name: str, document: str
    ) -> set[TNode]:
        """Answer via one specific view; raises if no rewriting exists.

        Evaluates the rewriting over the stored forest ``V(t)`` — the
        document itself is *not* touched (the paper's caching scenario).
        """
        decision = self.rewrite_against(query, view_name)
        if not decision.found:
            raise ViewEngineError(
                f"query has no rewriting using view {view_name!r} "
                f"(status: {decision.status.value})"
            )
        forest = self.store.view_answers(view_name, document)
        self.stats.view_answers += 1
        return evaluate_forest(decision.rewriting, forest)

    def answer_with_intersection(
        self, query: Pattern, plan: QueryPlan, document: str
    ) -> set[TNode]:
        """Execute an intersection plan over the stored forests.

        Each leg evaluates its compensation over its view's forest
        (never the document); leg results meet as **sorted preorder
        indexes** — the store's process-independent node encoding —
        with an early exit once the running intersection is empty.
        """
        if plan.kind != "intersection" or not plan.parts:
            raise ViewEngineError(
                f"not an intersection plan (kind: {plan.kind!r})"
            )
        ids: set[int] | None = None
        for part in plan.parts:
            forest = self.store.view_answers(part.view_name, document)
            nodes = evaluate_forest(part.rewriting, forest)
            part_ids = set(self.store.node_ids(document, nodes))
            ids = part_ids if ids is None else ids & part_ids
            if not ids:
                break
        self.stats.intersection_answers += 1
        return self.store.nodes_at(document, ids or ())

    def _execute(
        self, query: Pattern, plan: QueryPlan, document: str
    ) -> set[TNode]:
        """Run one plan (shared by :meth:`answer` / :meth:`answer_many`)."""
        with span("engine.execute", kind=plan.kind):
            if plan.kind == "view":
                assert plan.view_name is not None
                return self.answer_with_view(
                    query, plan.view_name, document
                )
            if plan.kind == "intersection":
                return self.answer_with_intersection(query, plan, document)
            return self.answer_direct(query, document)

    def answer(self, query: Pattern, document: str) -> set[TNode]:
        """Answer using the planner's choice (view if possible).

        With an answer cache enabled, a repeated query skips planning
        *and* execution entirely; every hit returns a fresh set the
        caller owns outright.
        """
        with span("engine.answer") as scope:
            cached = self._cached_answer(query, document)
            if cached is not None:
                scope.set(cache="hit", kind=cached[1].kind)
                return cached[0]
            plan = self.plan(query, document)
            answer = self._execute(query, plan, document)
            self._remember_answer(query, document, answer, plan)
            scope.set(cache="miss", kind=plan.kind)
            return answer

    # ------------------------------------------------------------------
    # Batched / async serving
    # ------------------------------------------------------------------
    def answer_many(
        self, queries: Sequence[Pattern], document: str
    ) -> BatchAnswer:
        """Answer a batch of queries, folding duplicates.

        Each *distinct* query (up to isomorphism, via ``memo_key``) is
        planned and executed exactly once; duplicates receive the same
        answer set without touching the planner, the decision cache or
        the store.  All executions share the store's cached per-document
        :class:`~repro.core.embedding.TreeIndex`, and each distinct
        query's view-equivalence prefilter decides all undecided views
        through a single batched containment sweep
        (:meth:`_seed_equivalent_decisions`).  With an answer cache
        enabled (``answer_cache_size > 0``) the fold extends *across*
        batches: a distinct query seen in an earlier batch is served
        from the cache — digest-validated — without planning or
        execution.  Within one batch, duplicates share the same answer
        set object — copy before mutating; cross-batch cache hits hand
        each batch a fresh copy.

        Returns a :class:`BatchAnswer` with per-input answers/plans and
        the per-batch :class:`EngineStats` delta.
        """
        before = self.stats.snapshot()
        t0 = time.perf_counter()
        answers: dict[int, set[TNode]] = {}
        plans: dict[int, QueryPlan] = {}
        result = BatchAnswer()
        for query in queries:
            key = query.memo_key()
            if key not in answers:
                # One span per *distinct* query — duplicates fold for
                # tracing exactly as they do for execution.
                with span("engine.answer") as scope:
                    cached = self._cached_answer(query, document)
                    if cached is not None:
                        answers[key], plans[key] = cached
                        scope.set(cache="hit", kind=plans[key].kind)
                    else:
                        plan = self.plan(query, document)
                        answer = self._execute(query, plan, document)
                        self._remember_answer(
                            query, document, answer, plan
                        )
                        answers[key] = answer
                        plans[key] = plan
                        scope.set(cache="miss", kind=plan.kind)
            result.answers.append(answers[key])
            result.plans.append(plans[key])
        result.elapsed_seconds = time.perf_counter() - t0
        result.distinct_queries = len(answers)
        result.folded_queries = len(result.answers) - len(answers)
        after = self.stats.snapshot()
        result.stats = {key: after[key] - before[key] for key in after}
        return result

    async def serve(
        self,
        requests: "asyncio.Queue",
        document: str,
        *,
        batch_size: int = 32,
        executor: Executor | None = None,
    ) -> int:
        """Async serving loop: drain the queue into batches, answer, resolve.

        ``requests`` carries ``(query, future)`` pairs — the future is
        resolved with the query's answer set (or the raised exception).
        The loop blocks on the first request, then greedily drains up to
        ``batch_size`` already-queued requests so bursts are folded
        through :meth:`answer_many`; an explicit ``None`` item shuts the
        loop down after the in-flight batch.  Returns the number of
        requests served.

        Planning/execution is synchronous CPU work.  Without an
        ``executor`` the loop yields to the event loop between batches,
        not within one — pick ``batch_size`` for the latency you can
        tolerate.  With an ``executor`` each batch's
        :meth:`answer_many` runs off the event loop via
        :meth:`~asyncio.loop.run_in_executor`, so other coroutines stay
        responsive while a batch plans.  The executor must share this
        engine's address space (a ``ThreadPoolExecutor``): answer sets
        are live node references.  Process-level sharding is the
        catalog server's job (:mod:`repro.catalog.server`), which ships
        picklable requests to workers instead of engine objects.
        """
        if batch_size < 1:
            raise ViewEngineError("serve batch_size must be >= 1")
        served = 0
        stopping = False
        loop = asyncio.get_running_loop()
        while not stopping:
            item = await requests.get()
            if item is None:
                requests.task_done()
                break
            batch = [item]
            while len(batch) < batch_size:
                try:
                    nxt = requests.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            try:
                queries = [query for query, _ in batch]
                if executor is not None:
                    result = await loop.run_in_executor(
                        executor, self.answer_many, queries, document
                    )
                else:
                    result = self.answer_many(queries, document)
                for (_, future), answer in zip(batch, result.answers):
                    if not future.done():
                        future.set_result(answer)
            except Exception:
                # One pathological query must not fail its batchmates:
                # fall back to per-request answering so only the
                # offending request(s) carry an exception.  The fallback
                # is the same CPU-bound work, so it stays off the event
                # loop too when an executor was provided.
                for query, future in batch:
                    if future.done():
                        continue
                    try:
                        if executor is not None:
                            answer = await loop.run_in_executor(
                                executor, self.answer, query, document
                            )
                        else:
                            answer = self.answer(query, document)
                        future.set_result(answer)
                    except Exception as exc:
                        future.set_exception(exc)
            served += len(batch)
            # One task_done per consumed item (plus the drained sentinel,
            # when stopping), so producers may await requests.join().
            for _ in range(len(batch) + (1 if stopping else 0)):
                requests.task_done()
            await asyncio.sleep(0)  # let producers/consumers run
        return served

    # ------------------------------------------------------------------
    # Verification helper (Prop 2.4 end-to-end)
    # ------------------------------------------------------------------
    def verify_plan(self, query: Pattern, view_name: str, document: str) -> bool:
        """Check ``R(V(t)) = P(t)`` for the chosen rewriting on one doc.

        Always True when a rewriting was found (Prop 2.4); exposed for
        tests and demos.
        """
        via_view = self.answer_with_view(query, view_name, document)
        direct = evaluate(query, self.store.document(document))
        decision = self.rewrite_against(query, view_name)
        composed = compose(decision.rewriting, self.store.view(view_name).pattern)
        via_composition = evaluate(composed, self.store.document(document))
        return via_view == direct == via_composition

    def verify_intersection(self, query: Pattern, document: str) -> bool | None:
        """Check an intersection plan end-to-end on one document.

        Returns None when the planner does not choose an intersection
        for ``query``; otherwise True iff executing the plan equals the
        direct evaluation *and* the merged pattern's own evaluation —
        the ``∩ Qi(t) = M(t) = P(t)`` chain, observed on ``t``.
        """
        plan = self.plan(query, document)
        if plan.kind != "intersection":
            return None
        via_intersection = self.answer_with_intersection(query, plan, document)
        direct = evaluate(query, self.store.document(document))
        assert plan.merged is not None
        via_merged = evaluate(plan.merged, self.store.document(document))
        return via_intersection == direct == via_merged
