"""Parser for ``XP{//,[],*}`` pattern expressions.

The paper describes the fragment by the grammar (Section 2.1)::

    q  ::=  q/q  |  q//q  |  q[q]  |  l  |  *

We accept the familiar XPath surface syntax:

* ``a/b//c`` — child and descendant separators on the *selection path*;
* ``a[b][c//d]`` — predicates (branches) attached to a step;
* ``a[.//b]`` or ``a[//b]`` — a branch connected by a *descendant* edge;
* ``*`` — the wildcard label;
* an optional leading ``/`` (ignored) or ``//`` (sugar for a wildcard
  root followed by a descendant edge: ``//a`` ≡ ``*//a``);
* ``Υ`` (or the empty string) — the empty pattern.

The **output node** is the last step of the top-level path, matching
XPath semantics for this fragment.
"""

from __future__ import annotations

import re

from ..errors import PatternSyntaxError
from .ast import Axis, Pattern, PNode, WILDCARD

__all__ = ["parse_pattern", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<DSLASH>//)
  | (?P<SLASH>/)
  | (?P<LBRACK>\[)
  | (?P<RBRACK>\])
  | (?P<STAR>\*)
  | (?P<DOT>\.)
  | (?P<NAME>\w[\w\-:]*)
  | (?P<WS>\s+)
    """,
    re.VERBOSE | re.UNICODE,
)


def tokenize(text: str) -> list[tuple[str, str, int]]:
    """Tokenize a pattern expression into ``(kind, value, position)``.

    Raises :class:`PatternSyntaxError` on any unrecognized character.
    """
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PatternSyntaxError("unexpected character", text, pos)
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token-stream helpers ------------------------------------------
    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def next(self) -> tuple[str, str, int]:
        if self.index >= len(self.tokens):
            raise PatternSyntaxError("unexpected end of pattern", self.text)
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> tuple[str, str, int]:
        token = self.next()
        if token[0] != kind:
            raise PatternSyntaxError(
                f"expected {kind}, found {token[1]!r}", self.text, token[2]
            )
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- grammar --------------------------------------------------------
    def parse(self) -> Pattern:
        if self.at_end():
            return Pattern.empty()
        # A leading '/' is the (implicit) document root; '//' is sugar
        # for a wildcard root followed by a descendant edge.
        first_axis = Axis.CHILD
        virtual_root: PNode | None = None
        if self.peek() == "SLASH":
            self.next()
        elif self.peek() == "DSLASH":
            self.next()
            virtual_root = PNode(WILDCARD)
            first_axis = Axis.DESCENDANT

        first = self.parse_step()
        if virtual_root is not None:
            virtual_root.add(first_axis, first)
            root = virtual_root
        else:
            root = first

        output = first
        while not self.at_end() and self.peek() in ("SLASH", "DSLASH"):
            kind, _, _ = self.next()
            axis = Axis.CHILD if kind == "SLASH" else Axis.DESCENDANT
            step = self.parse_step()
            output.add(axis, step)
            output = step
        if not self.at_end():
            _, value, pos = self.tokens[self.index]
            raise PatternSyntaxError(
                f"unexpected trailing token {value!r}", self.text, pos
            )
        return Pattern(root, output)

    def parse_step(self) -> PNode:
        """One step: a label followed by zero or more predicates."""
        kind, value, pos = self.next()
        if kind == "STAR":
            node = PNode(WILDCARD)
        elif kind == "NAME":
            node = PNode(value)
        else:
            raise PatternSyntaxError(
                f"expected a label or '*', found {value!r}", self.text, pos
            )
        while self.peek() == "LBRACK":
            self.next()
            self.parse_predicate(node)
            self.expect("RBRACK")
        return node

    def parse_predicate(self, anchor: PNode) -> None:
        """A predicate ``[...]``: a relative path attached to ``anchor``.

        The first edge is a child edge by default; ``.//`` or a leading
        ``//`` makes it a descendant edge.  A leading ``./`` is accepted
        and means a child edge.
        """
        axis = Axis.CHILD
        if self.peek() == "DOT":
            self.next()
            kind, value, pos = self.next()
            if kind == "DSLASH":
                axis = Axis.DESCENDANT
            elif kind == "SLASH":
                axis = Axis.CHILD
            else:
                raise PatternSyntaxError(
                    f"expected '/' or '//' after '.', found {value!r}",
                    self.text,
                    pos,
                )
        elif self.peek() == "DSLASH":
            self.next()
            axis = Axis.DESCENDANT
        elif self.peek() == "SLASH":
            self.next()
            axis = Axis.CHILD

        node = self.parse_step()
        anchor.add(axis, node)
        while self.peek() in ("SLASH", "DSLASH"):
            kind, _, _ = self.next()
            step_axis = Axis.CHILD if kind == "SLASH" else Axis.DESCENDANT
            step = self.parse_step()
            node.add(step_axis, step)
            node = step


def parse_pattern(text: str) -> Pattern:
    """Parse an XPath expression of ``XP{//,[],*}`` into a :class:`Pattern`.

    Examples
    --------
    >>> parse_pattern("a/*[b]//c").depth
    2
    >>> parse_pattern("Υ").is_empty
    True
    """
    stripped = text.strip()
    if stripped in ("", "Υ"):
        return Pattern.empty()
    return _Parser(stripped).parse()
