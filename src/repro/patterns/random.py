"""Random pattern generation for tests, workloads and benchmarks.

The generators are parameterized by the paper's three constructs —
descendant edges, branches, wildcards — so that workloads can target the
full fragment ``XP{//,[],*}`` or any sub-fragment, plus the syntactic
conditions of Sections 4–5 (e.g. "selection path of V has only child
edges" for Theorem 4.10 workloads).

:func:`random_rewrite_instance` generates ``(P, V)`` pairs with a known
ground truth: when ``V`` is taken to be ``P≤k`` verbatim, the composition
``P≥k ∘ V`` is equivalent to ``P`` (equal when the k-node carries no
branches; otherwise those branches appear twice, redundantly), so a
rewriting certainly exists.  Mutated views give (typically) unrewritable
instances for negative testing.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import WorkloadError
from .ast import Axis, Pattern, PNode, WILDCARD
from .fragments import Fragment

__all__ = ["PatternConfig", "random_pattern", "random_rewrite_instance"]


def _rng(seed_or_rng: int | _random.Random | None) -> _random.Random:
    if isinstance(seed_or_rng, _random.Random):
        return seed_or_rng
    return _random.Random(seed_or_rng)


@dataclass
class PatternConfig:
    """Knobs for random pattern generation.

    Attributes
    ----------
    depth:
        Selection-path length (number of selection edges).
    alphabet:
        Σ-labels to draw from.
    wildcard_prob:
        Probability that a node is labeled ``*``.
    descendant_prob:
        Probability that an edge is a descendant edge.
    branch_prob:
        Probability that a selection node sprouts a branch.
    max_branch_size:
        Maximal node count of each branch subtree.
    fragment:
        Restrict generation to a named fragment (overrides the three
        probabilities when a construct is disallowed).
    """

    depth: int = 3
    alphabet: Sequence[str] = ("a", "b", "c", "d", "e")
    wildcard_prob: float = 0.3
    descendant_prob: float = 0.3
    branch_prob: float = 0.5
    max_branch_size: int = 3
    fragment: Fragment = Fragment.FULL

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise WorkloadError("depth must be >= 0")
        if not self.alphabet:
            raise WorkloadError("alphabet must be nonempty")
        allow_desc, allow_branch, allow_wild = self.fragment.allows()
        if not allow_desc:
            self.descendant_prob = 0.0
        if not allow_branch:
            self.branch_prob = 0.0
        if not allow_wild:
            self.wildcard_prob = 0.0

    # -- draw helpers -----------------------------------------------------
    def draw_label(self, rng: _random.Random) -> str:
        if rng.random() < self.wildcard_prob:
            return WILDCARD
        return rng.choice(list(self.alphabet))

    def draw_axis(self, rng: _random.Random) -> Axis:
        if rng.random() < self.descendant_prob:
            return Axis.DESCENDANT
        return Axis.CHILD


def random_pattern(
    config: PatternConfig | None = None,
    seed: int | _random.Random | None = None,
) -> Pattern:
    """Generate a random pattern according to ``config``.

    The selection path has exactly ``config.depth`` edges; each selection
    node may carry branch subtrees of at most ``config.max_branch_size``
    nodes.
    """
    config = config or PatternConfig()
    rng = _rng(seed)
    root = PNode(config.draw_label(rng))
    node = root
    path = [root]
    for _ in range(config.depth):
        node = node.add(config.draw_axis(rng), PNode(config.draw_label(rng)))
        path.append(node)
    for sel_node in path:
        while rng.random() < config.branch_prob:
            size = rng.randint(1, config.max_branch_size)
            sel_node.add(config.draw_axis(rng), _random_subtree(rng, config, size))
            if rng.random() < 0.5:
                break
    return Pattern(root, path[-1])


def _random_subtree(rng: _random.Random, config: PatternConfig, size: int) -> PNode:
    """A random branch subtree with exactly ``size`` nodes."""
    root = PNode(config.draw_label(rng))
    nodes = [root]
    for _ in range(size - 1):
        parent = rng.choice(nodes)
        child = parent.add(config.draw_axis(rng), PNode(config.draw_label(rng)))
        nodes.append(child)
    return root


def random_rewrite_instance(
    config: PatternConfig | None = None,
    seed: int | _random.Random | None = None,
    view_depth: int | None = None,
    mutate_view: bool = False,
) -> tuple[Pattern, Pattern]:
    """Generate a ``(P, V)`` rewriting instance.

    With ``mutate_view=False`` the view is exactly ``P≤k`` (same nodes and
    branches), so ``P≥k ∘ V = P`` and a rewriting is guaranteed to exist.
    With ``mutate_view=True`` the view receives a random extra branch with
    a fresh label, which usually destroys rewritability (useful for
    negative workloads; callers must still *decide* the instance).

    Parameters
    ----------
    view_depth:
        The view's depth ``k`` (must satisfy ``0 <= k <= depth``); random
        when None.
    """
    config = config or PatternConfig()
    if config.depth < 1:
        raise WorkloadError("rewrite instances need a query of depth >= 1")
    rng = _rng(seed)
    query = random_pattern(config, rng)
    k = view_depth if view_depth is not None else rng.randint(0, config.depth - 1)
    if not 0 <= k <= config.depth:
        raise WorkloadError(f"view_depth {k} out of range for depth {config.depth}")

    # Build V = P≤k by copying the query and pruning below the k-node.
    view_copy, mapping = query.copy_with_map()
    sel_path = query.selection_path()
    k_node_new = mapping[sel_path[k]]
    if k < query.depth:
        next_new = mapping[sel_path[k + 1]]
        k_node_new.edges = [
            (axis, child) for axis, child in k_node_new.edges if child is not next_new
        ]
    view = Pattern(view_copy.root, k_node_new)

    if mutate_view:
        fresh = "zz_view_only"
        target = rng.choice(list(view.nodes()))
        target.add(Axis.CHILD, PNode(fresh))
        view = Pattern(view.root, view.output)  # re-validate
    return query, view
