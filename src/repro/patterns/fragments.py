"""Fragment classification for patterns.

The paper's complexity landscape is organized around the fragment
``XP{//,[],*}`` and its three maximal sub-fragments, obtained by dropping
one construct each (Section 1):

* ``XP{[],*}``  — no descendant edges,
* ``XP{//,*}``  — no branches,
* ``XP{//,[]}`` — no wildcards.

Containment (hence equivalence, hence the candidate check in rewriting)
is PTIME on each of the three sub-fragments because it is characterized
by the existence of a homomorphism [14]; on the full fragment it is
coNP-complete.  The rewriting problem is PTIME on the sub-fragments [17]
and coNP-complete under the paper's conditions on the full fragment.
"""

from __future__ import annotations

from enum import Enum

from .ast import Pattern

__all__ = [
    "Fragment",
    "classify",
    "in_fragment",
    "uses_predicate",
    "homomorphism_complete",
]


class Fragment(Enum):
    """Named sub-fragments of ``XP{//,[],*}``.

    Values record which constructs are *allowed*.
    """

    PATHS = "XP{}"  # child edges only, no branches, no wildcards
    BRANCHES = "XP{[]}"
    DESCENDANTS = "XP{//}"
    WILDCARDS = "XP{*}"
    NO_WILDCARD = "XP{//,[]}"
    NO_BRANCH = "XP{//,*}"
    NO_DESCENDANT = "XP{[],*}"
    FULL = "XP{//,[],*}"

    def allows(self) -> tuple[bool, bool, bool]:
        """``(descendants, branches, wildcards)`` permitted by the fragment."""
        return {
            Fragment.PATHS: (False, False, False),
            Fragment.BRANCHES: (False, True, False),
            Fragment.DESCENDANTS: (True, False, False),
            Fragment.WILDCARDS: (False, False, True),
            Fragment.NO_WILDCARD: (True, True, False),
            Fragment.NO_BRANCH: (True, False, True),
            Fragment.NO_DESCENDANT: (False, True, True),
            Fragment.FULL: (True, True, True),
        }[self]


def uses_predicate(pattern: Pattern) -> bool:
    """True iff the pattern needs the ``q[q]`` construct.

    Equivalently: some node lies off the selection path.  (This is the
    grammar-level notion of "branching"; the structural notion "some node
    has ≥ 2 children" is :meth:`Pattern.has_branching` and is what
    linearity in §5.1 refers to.)
    """
    if pattern.is_empty:
        return False
    return pattern.size() > pattern.depth + 1


def classify(pattern: Pattern) -> Fragment:
    """The *smallest* named fragment containing ``pattern``.

    The empty pattern classifies as :data:`Fragment.PATHS`.
    """
    has_desc = pattern.has_descendant_edge()
    has_branch = uses_predicate(pattern)
    has_wild = pattern.has_wildcard()
    table = {
        (False, False, False): Fragment.PATHS,
        (False, True, False): Fragment.BRANCHES,
        (True, False, False): Fragment.DESCENDANTS,
        (False, False, True): Fragment.WILDCARDS,
        (True, True, False): Fragment.NO_WILDCARD,
        (True, False, True): Fragment.NO_BRANCH,
        (False, True, True): Fragment.NO_DESCENDANT,
        (True, True, True): Fragment.FULL,
    }
    return table[(has_desc, has_branch, has_wild)]


def in_fragment(pattern: Pattern, fragment: Fragment) -> bool:
    """True iff ``pattern`` uses only constructs allowed by ``fragment``."""
    allow_desc, allow_branch, allow_wild = fragment.allows()
    if pattern.has_descendant_edge() and not allow_desc:
        return False
    if uses_predicate(pattern) and not allow_branch:
        return False
    if pattern.has_wildcard() and not allow_wild:
        return False
    return True


def homomorphism_complete(contained: Pattern, container: Pattern) -> bool:
    """True iff ``contained ⊑ container`` is decided by homomorphism
    existence (``container → contained``).

    The test is always *sound*; it is **complete** when

    * ``contained`` has no descendant edges — its single canonical model
      ``τ(contained)`` makes every counterexample-free embedding lift to
      a homomorphism (covers all of ``XP{[],*}`` and more), or
    * both patterns are wildcard-free (``XP{//,[]}``) — the classical
      tree-pattern result.

    Note that on ``XP{//,*}`` containment is PTIME but **not** by
    homomorphism: ``a//*/e ⊑ a/*//e`` holds with no homomorphism
    (wildcards commute with descendant steps).  The paper's Section 1
    wording lumps the three sub-fragments together; the load-bearing fact
    (PTIME decidability on each sub-fragment) is preserved here — see
    :func:`repro.baselines.linear_containment` for the dedicated
    ``XP{//,*}`` procedure.
    """
    if not contained.has_descendant_edge():
        return True
    if not contained.has_wildcard() and not container.has_wildcard():
        return True
    return False
