"""Serialization of patterns back to XPath expressions.

:func:`to_xpath` emits an expression that :func:`~repro.patterns.parse.parse_pattern`
parses back to an isomorphic pattern (round-trip property, covered by
property-based tests).  Selection-path steps are written as path steps;
all other subtrees become predicates, with ``.//`` marking a branch that
hangs off a descendant edge.
"""

from __future__ import annotations

from .ast import Axis, Pattern, PNode

__all__ = ["to_xpath", "to_grammar"]


def to_xpath(pattern: Pattern) -> str:
    """Render a pattern as an XPath expression of the fragment.

    The empty pattern renders as ``Υ``.
    """
    if pattern.is_empty:
        return "Υ"
    path = pattern.selection_path()
    on_path = set(map(id, path))
    parts: list[str] = []
    for index, node in enumerate(path):
        if index > 0:
            axis = _incoming_axis(pattern, node)
            parts.append(axis.symbol())
        parts.append(_step_expr(node, on_path))
    return "".join(parts)


def _incoming_axis(pattern: Pattern, node: PNode) -> Axis:
    axis, _ = pattern.parent_map()[node]
    return axis


def _step_expr(node: PNode, on_path: set[int]) -> str:
    """A selection step: label plus predicates for non-selection branches."""
    out = [node.label]
    for axis, child in node.edges:
        if id(child) in on_path:
            continue
        out.append(f"[{_branch_expr(axis, child)}]")
    return "".join(out)


def _branch_expr(axis: Axis, node: PNode) -> str:
    """A predicate body for a branch entered along ``axis``.

    Single-child chains are rendered as paths (``b//c/d``); branching
    nodes nest further predicates.
    """
    prefix = ".//" if axis is Axis.DESCENDANT else ""
    return prefix + _subtree_expr(node)


def _subtree_expr(node: PNode) -> str:
    if not node.edges:
        return node.label
    if len(node.edges) == 1:
        child_axis, child = node.edges[0]
        return f"{node.label}{child_axis.symbol()}{_subtree_expr(child)}"
    preds = "".join(f"[{_branch_expr(axis, child)}]" for axis, child in node.edges)
    return f"{node.label}{preds}"


def to_grammar(pattern: Pattern) -> str:
    """Render a pattern in the paper's grammar notation.

    This is :func:`to_xpath` with every branch fully bracketed (no path
    shorthand inside predicates), mirroring ``q/q | q//q | q[q] | l | *``.
    """
    if pattern.is_empty:
        return "Υ"
    path = pattern.selection_path()
    on_path = set(map(id, path))
    parts: list[str] = []
    for index, node in enumerate(path):
        if index > 0:
            parts.append(_incoming_axis(pattern, node).symbol())
        out = [node.label]
        for axis, child in node.edges:
            if id(child) in on_path:
                continue
            body = _grammar_subtree(child)
            if axis is Axis.DESCENDANT:
                body = f".//{body}"
            out.append(f"[{body}]")
        parts.append("".join(out))
    return "".join(parts)


def _grammar_subtree(node: PNode) -> str:
    out = [node.label]
    for axis, child in node.edges:
        body = _grammar_subtree(child)
        if axis is Axis.DESCENDANT:
            body = f".//{body}"
        out.append(f"[{body}]")
    return "".join(out)
