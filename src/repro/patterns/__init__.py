"""Pattern substrate: the XPath fragment ``XP{//,[],*}`` (paper §2.1).

Public surface:

* :class:`Pattern`, :class:`PNode`, :class:`Axis`, :data:`WILDCARD`,
  :data:`EMPTY_PATTERN` — the AST.
* :func:`parse_pattern` — XPath-syntax parser.
* :func:`to_xpath`, :func:`to_grammar` — serializers.
* :class:`PatternBuilder`, :func:`pat` — programmatic construction.
* :class:`Fragment`, :func:`classify`, :func:`in_fragment`,
  :func:`homomorphism_complete` — fragment classification.
* :class:`PatternConfig`, :func:`random_pattern`,
  :func:`random_rewrite_instance` — random generation.
"""

from .ast import Axis, EMPTY_PATTERN, Pattern, PNode, WILDCARD
from .build import PatternBuilder, pat
from .fragments import Fragment, classify, homomorphism_complete, in_fragment
from .parse import parse_pattern
from .random import PatternConfig, random_pattern, random_rewrite_instance
from .serialize import to_grammar, to_xpath

__all__ = [
    "Axis",
    "EMPTY_PATTERN",
    "Pattern",
    "PNode",
    "WILDCARD",
    "PatternBuilder",
    "pat",
    "Fragment",
    "classify",
    "in_fragment",
    "homomorphism_complete",
    "parse_pattern",
    "PatternConfig",
    "random_pattern",
    "random_rewrite_instance",
    "to_grammar",
    "to_xpath",
]
