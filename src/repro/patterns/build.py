"""Programmatic pattern construction.

Two styles are offered:

* :class:`PatternBuilder` — a fluent, selection-path-oriented builder::

      P = (PatternBuilder("a")
           .child("*").branch("b")
           .descendant("e")
           .build())            # a/*[b]//e

* :func:`pat` — a nested-tuple literal mirroring the tree shape::

      P = pat(("a", [("/", ("b", [])), ("//", ("e", []))]), output=[1])

The builder is the recommended style for tests and examples; the parser
(:func:`~repro.patterns.parse.parse_pattern`) is the recommended style for
users.
"""

from __future__ import annotations

from ..errors import PatternStructureError
from .ast import Axis, Pattern, PNode

__all__ = ["PatternBuilder", "pat"]


class PatternBuilder:
    """Fluent builder that grows a pattern along its selection path.

    The cursor starts at the root; :meth:`child` and :meth:`descendant`
    extend the selection path, while :meth:`branch` / :meth:`dbranch`
    attach predicate subtrees to the *current* selection node without
    moving the cursor.  :meth:`build` marks the cursor node as the output
    node and returns the finished :class:`Pattern`.
    """

    def __init__(self, root_label: str):
        self._root = PNode(root_label)
        self._cursor = self._root

    # -- selection-path growth -----------------------------------------
    def child(self, label: str) -> "PatternBuilder":
        """Extend the selection path with a child edge to ``label``."""
        self._cursor = self._cursor.child(label)
        return self

    def descendant(self, label: str) -> "PatternBuilder":
        """Extend the selection path with a descendant edge to ``label``."""
        self._cursor = self._cursor.descendant(label)
        return self

    # -- branches ---------------------------------------------------------
    def branch(self, expr: str | Pattern) -> "PatternBuilder":
        """Attach a predicate subtree by a **child** edge.

        ``expr`` is either a pattern expression string (its selection path
        is irrelevant — only the tree shape is used) or a ``Pattern``.
        """
        self._attach(Axis.CHILD, expr)
        return self

    def dbranch(self, expr: str | Pattern) -> "PatternBuilder":
        """Attach a predicate subtree by a **descendant** edge."""
        self._attach(Axis.DESCENDANT, expr)
        return self

    def _attach(self, axis: Axis, expr: str | Pattern) -> None:
        subtree = _as_subtree(expr)
        self._cursor.add(axis, subtree)

    # -- finish ----------------------------------------------------------
    def build(self) -> Pattern:
        """Finish: the current cursor node becomes the output node."""
        return Pattern(self._root, self._cursor)


def _as_subtree(expr: str | Pattern) -> PNode:
    if isinstance(expr, Pattern):
        if expr.is_empty:
            raise PatternStructureError("cannot attach the empty pattern as a branch")
        return expr.root.deep_copy()  # type: ignore[union-attr]
    from .parse import parse_pattern  # local import to avoid a cycle

    parsed = parse_pattern(expr)
    if parsed.is_empty:
        raise PatternStructureError("cannot attach the empty pattern as a branch")
    return parsed.root  # freshly parsed: no sharing  # type: ignore[return-value]


def pat(spec, output: list[int] | None = None) -> Pattern:
    """Build a pattern from a nested-tuple literal.

    ``spec`` is ``(label, [(axis, spec), ...])`` where ``axis`` is ``"/"``
    or ``"//"``.  ``output`` addresses the output node as a list of child
    indices from the root (default: the root itself).

    Example — ``a/*[b]//e`` with output ``e``::

        pat(("a", [("/", ("*", [("/", ("b", [])),
                                ("//", ("e", []))]))]),
            output=[0, 1])
    """
    root = _node_from_spec(spec)
    node = root
    for index in output or []:
        children = node.children()
        if index >= len(children):
            raise PatternStructureError(
                f"output path index {index} out of range at node {node.label!r}"
            )
        node = children[index]
    return Pattern(root, node)


def _node_from_spec(spec) -> PNode:
    label, edges = spec
    node = PNode(label)
    for axis_sym, child_spec in edges:
        axis = Axis.CHILD if axis_sym == "/" else Axis.DESCENDANT
        node.add(axis, _node_from_spec(child_spec))
    return node
