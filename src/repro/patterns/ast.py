"""Abstract syntax for tree patterns in the fragment ``XP{//,[],*}``.

A *pattern* (paper Section 2.1) is a rooted labeled tree where

* labels come from Σ ∪ {*} (``*`` is the wildcard, :data:`WILDCARD`),
* every edge is either a **child** edge (``/``) or a **descendant** edge
  (``//``), and
* one node is designated the **output node**.

The special **empty pattern** Υ (:data:`EMPTY_PATTERN`) is the pattern
whose application to any tree yields the empty set; it arises as the
result of incompatible compositions (Section 2.3).

Design contract
---------------
``Pattern`` objects are treated as **immutable values**: every transform in
:mod:`repro.core` copies nodes rather than mutating them, and two patterns
never share ``PNode`` objects.  Structural equality (``==``) is
isomorphism of unordered labeled trees *including* edge types and the
output designation — the notion of isomorphism used in the paper's
Proposition 3.4 (after [10]).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Iterator

from ..errors import EmptyPatternError, PatternStructureError

__all__ = [
    "Axis",
    "PNode",
    "Pattern",
    "WILDCARD",
    "EMPTY_PATTERN",
    "memo_epoch",
    "memo_intern_size",
    "on_memo_reset",
    "reset_memo_interning",
]

#: The wildcard label ``*`` (not a member of Σ).
WILDCARD = "*"


class Axis(IntEnum):
    """Edge type of a pattern edge: child (``/``) or descendant (``//``)."""

    CHILD = 0
    DESCENDANT = 1

    def symbol(self) -> str:
        """The XPath separator for this axis (``/`` or ``//``)."""
        return "/" if self is Axis.CHILD else "//"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Axis.{self.name}"


class PNode:
    """A pattern node: a label plus outgoing typed edges.

    Attributes
    ----------
    label:
        A label from Σ or the wildcard ``*``.
    edges:
        Outgoing edges as ``(axis, child)`` pairs.  Order is preserved for
        deterministic serialization but carries no semantics (branches are
        unordered).
    """

    __slots__ = ("label", "edges")

    def __init__(self, label: str, edges: list[tuple[Axis, "PNode"]] | None = None):
        self.label = label
        self.edges: list[tuple[Axis, PNode]] = list(edges) if edges else []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, axis: Axis, child: "PNode") -> "PNode":
        """Attach ``child`` below this node along ``axis``; return child."""
        self.edges.append((axis, child))
        return child

    def child(self, label: str) -> "PNode":
        """Attach and return a fresh node connected by a child edge."""
        return self.add(Axis.CHILD, PNode(label))

    def descendant(self, label: str) -> "PNode":
        """Attach and return a fresh node connected by a descendant edge."""
        return self.add(Axis.DESCENDANT, PNode(label))

    # ------------------------------------------------------------------
    # Traversal and measures
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["PNode"]:
        """Yield this node and all nodes below it, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(child for _, child in reversed(node.edges))

    def children(self) -> list["PNode"]:
        """The child nodes (regardless of axis), in edge order."""
        return [child for _, child in self.edges]

    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_subtree())

    def height(self) -> int:
        """Maximal number of edges on any downward path from this node."""
        if not self.edges:
            return 0
        return 1 + max(child.height() for _, child in self.edges)

    def labels(self) -> set[str]:
        """Σ-labels in this subtree (the wildcard is excluded)."""
        return {n.label for n in self.iter_subtree() if n.label != WILDCARD}

    def is_wildcard(self) -> bool:
        """True if this node is labeled ``*``."""
        return self.label == WILDCARD

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def deep_copy(self) -> "PNode":
        """Copy the subtree rooted here (fresh node identities)."""
        copy, _ = self.deep_copy_with_map()
        return copy

    def deep_copy_with_map(self) -> tuple["PNode", dict["PNode", "PNode"]]:
        """Copy the subtree and return ``(copy, old_node -> new_node)``."""
        mapping: dict[PNode, PNode] = {}

        def rec(node: PNode) -> PNode:
            clone = PNode(node.label)
            mapping[node] = clone
            for axis, child in node.edges:
                clone.add(axis, rec(child))
            return clone

        return rec(self), mapping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PNode({self.label!r}, {len(self.edges)} edges)"


class Pattern:
    """A tree pattern of ``XP{//,[],*}`` with a designated output node.

    Use :meth:`empty` for the empty pattern Υ.  Most users construct
    patterns via :func:`repro.patterns.parse.parse_pattern` or the builder
    in :mod:`repro.patterns.build`.

    Parameters
    ----------
    root:
        The root node, or None for the empty pattern.
    output:
        The output node; must be a node of the tree rooted at ``root``.
        Defaults to the root itself.
    """

    __slots__ = (
        "root",
        "output",
        "_key_cache",
        "_memo_cache",
        "_path_cache",
        "_pmap_cache",
    )

    def __init__(self, root: PNode | None, output: PNode | None = None):
        if root is None:
            self.root: PNode | None = None
            self.output: PNode | None = None
        else:
            self.root = root
            self.output = output if output is not None else root
        self._key_cache: tuple | None = None
        self._memo_cache: tuple[int, int] | None = None
        self._path_cache: list[PNode] | None = None
        self._pmap_cache: dict[PNode, tuple[Axis, PNode]] | None = None
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Pattern":
        """The empty pattern Υ (a shared singleton)."""
        return EMPTY_PATTERN

    @classmethod
    def single(cls, label: str) -> "Pattern":
        """A pattern with a single node (root = output)."""
        return cls(PNode(label))

    @property
    def is_empty(self) -> bool:
        """True iff this is the empty pattern Υ."""
        return self.root is None

    def _validate(self) -> None:
        if self.root is None:
            return
        seen: set[int] = set()
        found_output = False
        for node in self.root.iter_subtree():
            if id(node) in seen:
                raise PatternStructureError(
                    "pattern node appears twice (patterns must be trees)"
                )
            seen.add(id(node))
            if node is self.output:
                found_output = True
        if not found_output:
            raise PatternStructureError("output node is not part of the pattern")

    def _require_nonempty(self) -> PNode:
        if self.root is None:
            raise EmptyPatternError("operation undefined on the empty pattern Υ")
        return self.root

    # ------------------------------------------------------------------
    # Traversal and measures
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[PNode]:
        """All pattern nodes, pre-order (empty iterator for Υ)."""
        if self.root is None:
            return iter(())
        return self.root.iter_subtree()

    def edges(self) -> Iterator[tuple[PNode, Axis, PNode]]:
        """All edges as ``(parent, axis, child)`` triples."""
        for node in self.nodes():
            for axis, child in node.edges:
                yield node, axis, child

    def size(self) -> int:
        """Number of nodes (0 for Υ)."""
        return 0 if self.root is None else self.root.size()

    def height(self) -> int:
        """Maximal number of edges on any root-to-leaf path (0 for Υ)."""
        return 0 if self.root is None else self.root.height()

    def labels(self) -> set[str]:
        """Σ-labels occurring in the pattern (wildcard excluded)."""
        return set() if self.root is None else self.root.labels()

    def has_wildcard(self) -> bool:
        """True if any node is labeled ``*``."""
        return any(n.is_wildcard() for n in self.nodes())

    def has_descendant_edge(self) -> bool:
        """True if any edge is a descendant edge."""
        return any(axis is Axis.DESCENDANT for _, axis, _ in self.edges())

    def has_branching(self) -> bool:
        """True if any node has two or more outgoing edges."""
        return any(len(n.edges) >= 2 for n in self.nodes())

    def is_linear(self) -> bool:
        """True if the pattern forms a single path (paper §5.1)."""
        return not self.has_branching()

    def parent_map(self) -> dict[PNode, tuple[Axis, PNode]]:
        """Map each non-root node to its ``(incoming axis, parent)``.

        Cached: patterns are treated as immutable values, and all
        transforms mutate raw nodes *before* constructing the final
        ``Pattern`` object.
        """
        if self._pmap_cache is not None:
            return self._pmap_cache
        mapping: dict[PNode, tuple[Axis, PNode]] = {}
        for parent, axis, child in self.edges():
            mapping[child] = (axis, parent)
        self._pmap_cache = mapping
        return mapping

    # ------------------------------------------------------------------
    # Selection path (paper §3.1)
    # ------------------------------------------------------------------
    def selection_path(self) -> list[PNode]:
        """Nodes on the root-to-output path (``d+1`` nodes).

        Cached (see :meth:`parent_map`).  Raises
        :class:`EmptyPatternError` for Υ.
        """
        self._require_nonempty()
        if self._path_cache is not None:
            return self._path_cache

        # Iterative walk from the output up to the root via the parent
        # map, so deep (chain) patterns never hit the recursion limit.
        parent_map = self.parent_map()
        path = [self.output]
        node = self.output
        while node is not self.root:
            _, node = parent_map[node]  # type: ignore[index, assignment]
            path.append(node)  # type: ignore[arg-type]
        path.reverse()
        self._path_cache = path  # type: ignore[assignment]
        return self._path_cache  # type: ignore[return-value]

    def selection_axes(self) -> list[Axis]:
        """Axes of the ``d`` selection edges, top-down (empty if d = 0)."""
        path = self.selection_path()
        parent_map = self.parent_map()
        return [parent_map[node][0] for node in path[1:]]

    @property
    def depth(self) -> int:
        """The depth ``d`` of the pattern: selection-path edge count."""
        return len(self.selection_path()) - 1

    def k_node(self, k: int) -> PNode:
        """The selection node at depth ``k`` (paper §3.1)."""
        path = self.selection_path()
        if not 0 <= k < len(path):
            raise PatternStructureError(
                f"k-node index {k} out of range for pattern of depth {len(path) - 1}"
            )
        return path[k]

    def node_depth(self, node: PNode) -> int:
        """Depth of ``node``: the depth of its deepest selection ancestor.

        The paper extends selection depth to all nodes this way (§3.1).
        """
        on_path = set(map(id, self.selection_path()))
        parent_map = self.parent_map()

        current = node
        while id(current) not in on_path:
            try:
                _, current = parent_map[current]
            except KeyError:  # pragma: no cover - defensive
                raise PatternStructureError("node is not part of this pattern")
        path = self.selection_path()
        for depth, sel in enumerate(path):
            if sel is current:
                return depth
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self) -> "Pattern":
        """Deep copy with fresh node identities (Υ returns itself)."""
        if self.root is None:
            return self
        clone, mapping = self.root.deep_copy_with_map()
        return Pattern(clone, mapping[self.output])  # type: ignore[index]

    def copy_with_map(self) -> tuple["Pattern", dict[PNode, PNode]]:
        """Deep copy plus the ``old_node -> new_node`` mapping."""
        root = self._require_nonempty()
        clone, mapping = root.deep_copy_with_map()
        return Pattern(clone, mapping[self.output]), mapping  # type: ignore[index]

    def map_nodes(self, fn: Callable[[PNode], str]) -> "Pattern":
        """Copy, rewriting each node's label to ``fn(old_node)``."""
        if self.root is None:
            return self
        clone, mapping = self.copy_with_map()
        for old, new in mapping.items():
            new.label = fn(old)
        clone._key_cache = None
        clone._memo_cache = None
        return clone

    # ------------------------------------------------------------------
    # Structural equality (isomorphism)
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """A canonical key: equal keys iff isomorphic patterns.

        Isomorphism respects labels, edge types and the output marker but
        ignores branch order — the notion used for deduplicating candidate
        rewritings in Proposition 3.4.
        """
        if self._key_cache is not None:
            return self._key_cache
        if self.root is None:
            key: tuple = ("Υ",)
        else:
            key = _node_key(self.root, self.output)
        self._key_cache = key
        return key

    def signature(self) -> str:
        """The flat canonical signature: equal strings iff isomorphic.

        Unlike :meth:`memo_key` (a process-local interned token), the
        signature is **stable across processes and interning epochs**,
        which is what makes it usable as a persisted key — the
        disk-backed view store (:mod:`repro.views.persist`) keys
        materializations by a digest of this string.
        """
        if self.root is None:
            return "Υ"
        return _node_sig(self.root, self.output)

    def memo_key(self) -> int:
        """A small interned token: equal tokens iff isomorphic patterns.

        The first call computes the flat canonical :meth:`signature`
        (a string, so hashing never recurses into nested tuples — deep
        chains are safe) and interns it in a process-wide table;
        afterwards the token is a cached ``int``, so hashing/equality
        for memoization keys (e.g. the containment-result cache) is
        O(1) instead of O(pattern size).

        Tokens are only meaningful within the current interning *epoch*
        (see :func:`reset_memo_interning`): after a reset, previously
        cached tokens are discarded and keys are re-interned lazily, so
        never persist a ``memo_key`` — persist :meth:`signature` (or a
        digest of it) instead.
        """
        cached = self._memo_cache
        if cached is None or cached[0] != _MEMO_EPOCH:
            sig = self.signature()
            token = _MEMO_INTERN.get(sig)
            if token is None:
                token = len(_MEMO_INTERN)
                _MEMO_INTERN[sig] = token
            self._memo_cache = (_MEMO_EPOCH, token)
            return token
        return cached[1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        from .serialize import to_xpath  # local import to avoid a cycle

        if self.is_empty:
            return "Pattern(Υ)"
        return f"Pattern({to_xpath(self)!r})"

    def render(self) -> str:
        """ASCII-art rendering (output node marked with ``<- output``)."""
        if self.root is None:
            return "Υ (empty pattern)"
        lines: list[str] = []

        def rec(node: PNode, prefix: str, axis: Axis | None) -> None:
            edge = "" if axis is None else ("/ " if axis is Axis.CHILD else "// ")
            marker = "  <- output" if node is self.output else ""
            lines.append(f"{prefix}{edge}{node.label}{marker}")
            for child_axis, child in node.edges:
                rec(child, prefix + "    ", child_axis)

        rec(self.root, "", None)
        return "\n".join(lines)


#: Intern table behind :meth:`Pattern.memo_key`.  Grows with the number
#: of *distinct* (up to isomorphism) patterns seen by the process.
_MEMO_INTERN: dict[str, int] = {}

#: Current interning epoch; bumped by :func:`reset_memo_interning` so
#: tokens cached on ``Pattern`` objects from earlier epochs are ignored.
_MEMO_EPOCH = 0

#: Callbacks run after each interning reset (cache owners register here).
_MEMO_RESET_HOOKS: list[Callable[[], None]] = []


def memo_epoch() -> int:
    """The current interning epoch (see :func:`reset_memo_interning`).

    Caches keyed by :meth:`Pattern.memo_key` should record the epoch
    they were filled under and drop their entries when it changes.
    """
    return _MEMO_EPOCH


def memo_intern_size() -> int:
    """Number of distinct signatures currently interned."""
    return len(_MEMO_INTERN)


def on_memo_reset(hook: Callable[[], None]) -> None:
    """Register a callback to run after every interning reset.

    Modules that key process-wide caches by ``memo_key`` (e.g. the
    containment result/engine LRUs in :mod:`repro.core.containment`)
    register their ``clear`` functions here so a reset leaves no cache
    holding tokens from a dead epoch.
    """
    _MEMO_RESET_HOOKS.append(hook)


def reset_memo_interning() -> int:
    """Drop the intern table and start a new epoch; returns the epoch.

    The table behind :meth:`Pattern.memo_key` grows with the number of
    distinct patterns a process has ever seen — unbounded in a
    long-lived serving process (the ROADMAP's memory item).  This hook
    empties it: live ``Pattern`` objects lazily re-intern on their next
    ``memo_key`` call (the epoch tag on the per-pattern cache makes
    stale tokens unreachable), and every registered
    :func:`on_memo_reset` callback runs so token-keyed caches are
    cleared in the same step.
    """
    global _MEMO_EPOCH
    _MEMO_INTERN.clear()
    _MEMO_EPOCH += 1
    for hook in _MEMO_RESET_HOOKS:
        hook()
    return _MEMO_EPOCH


def _node_sig(node: PNode, output: PNode | None) -> str:
    """A flat canonical signature: equal strings iff isomorphic subtrees.

    Children are ordered by ``(axis, signature)``, so the string is
    invariant under branch reordering; labels are length-prefixed so
    delimiters can never collide with label text.  Built iteratively
    (strings hash without recursion, unlike nested tuples).
    """
    sigs: dict[int, str] = {}
    stack: list[tuple[PNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            child_sigs = sorted(
                f"{int(axis)}{sigs.pop(id(child))}" for axis, child in current.edges
            )
            marker = "!" if current is output else ""
            sigs[id(current)] = (
                f"({len(current.label)}:{current.label}{marker}"
                + "".join(child_sigs)
                + ")"
            )
        else:
            stack.append((current, True))
            for _, child in current.edges:
                stack.append((child, False))
    return sigs[id(node)]


def _node_key(node: PNode, output: PNode | None) -> tuple:
    # Iterative postorder so deep chain patterns never hit the recursion
    # limit (canonical keys are on the path of every containment test).
    keys: dict[int, tuple] = {}
    stack: list[tuple[PNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            child_keys = sorted(
                (int(axis), keys[id(child)]) for axis, child in current.edges
            )
            keys[id(current)] = (
                current.label,
                current is output,
                tuple(child_keys),
            )
        else:
            stack.append((current, True))
            for _, child in current.edges:
                stack.append((child, False))
    return keys[id(node)]


#: The empty pattern Υ (Section 2.1).  A shared singleton value.
EMPTY_PATTERN = Pattern(None)
