"""Multi-document catalog subsystem: durable view catalogs and routing.

The layer above :mod:`repro.views` for the many-documents regime:

* :class:`~repro.catalog.sqlite_backend.SqliteBackend` — the
  :class:`~repro.views.persist.StoreBackend` protocol on SQLite in WAL
  mode (concurrent readers, one file per catalog), including persisted
  advisor *selection records* for warm starts;
* :class:`~repro.catalog.catalog.Catalog` — documents registered by id,
  one ``ViewStore``/``QueryEngine`` per document over one shared
  backend, a typed-error router for ``(document, query)`` requests and
  digest-validated cross-batch answer caching;
* :class:`~repro.catalog.server.CatalogServer` — batch sharding across
  a process pool (planning is CPU-bound), with a deterministic
  single-process mode that keeps counters regression-testable;
* :class:`~repro.catalog.serving.AsyncFrontEnd` — the asyncio serving
  tier over the server (:meth:`CatalogServer.serve
  <repro.catalog.server.CatalogServer.serve>`): bounded admission with
  backpressure or rejection, per-document round-robin fairness,
  deadline shedding against injectable clocks, a retry-once /
  degrade-to-inline failure ladder, and graceful drain on close;
* :class:`~repro.catalog.replication.ReplicaSet` — the replicated read
  tier (PR 9): one writer ships its seqno'd snapshot log to N read
  replicas that warm-start from the shipped state, serve reads
  round-robin under a bounded-staleness contract, and fail over
  (crash → evict → sibling → writer-inline) deterministically under
  the fault seam.

See ``docs/architecture.md`` ("Catalog layer", "PR 8 — serving tier",
"PR 9 — replicated read tier") for the design notes and
``benchmarks/bench_catalog.py`` for the recorded numbers.
"""

from .catalog import Catalog, CatalogAdvice, CatalogEntry, RoutedAnswer
from .replication import Replica, ReplicaSet, ReplicationStats
from .server import (
    CatalogServeResult,
    CatalogServer,
    CatalogSpec,
    DocumentSpec,
    build_catalog,
)
from .serving import AsyncFrontEnd, ServeStats
from .sqlite_backend import SqliteBackend

__all__ = [
    "AsyncFrontEnd",
    "Catalog",
    "CatalogAdvice",
    "CatalogEntry",
    "CatalogServeResult",
    "CatalogServer",
    "CatalogSpec",
    "DocumentSpec",
    "Replica",
    "ReplicaSet",
    "ReplicationStats",
    "RoutedAnswer",
    "ServeStats",
    "SqliteBackend",
    "build_catalog",
]
