"""The multi-document catalog: documents, view stores and a router.

Cautis et al.'s view-intersection line of work (PAPERS.md) frames the
serving regime this module implements: a *catalog* of views consulted
per query, where cheap answerability routing happens before any solver
call.  A :class:`Catalog` owns

* a **shared storage backend** — one
  :class:`~repro.views.persist.StoreBackend` (in-memory, snapshot log,
  or :class:`~repro.catalog.sqlite_backend.SqliteBackend`) holding every
  document's materializations and advisor selections, keyed by document
  digest so documents never collide;
* one **`ViewStore` + `QueryEngine` per registered document** — the
  engines get the cross-batch answer cache turned on, validated by the
  store's document digest;
* a **router** (:meth:`route`) dispatching ``(document id, query)``
  requests: requests are grouped per document preserving input order,
  answered through each engine's batched
  :meth:`~repro.views.engine.QueryEngine.answer_many` (duplicates fold
  within a group), and scattered back in request order.  An unknown
  document id raises :class:`~repro.errors.UnknownDocumentError` — a
  typed library error, never a bare ``KeyError``.

Warm starts
-----------
:meth:`advise` computes the advisor's
:func:`~repro.views.advisor.selection_fingerprint` and asks the backend
for a persisted selection under ``(document digest, fingerprint)``
first.  On a hit the advisor is skipped entirely — its selection is
reconstructed from the record (and the materializations load from the
backend rather than re-evaluating), which is the dominant warm-start
saving the catalog benchmark records.  On a miss it advises, then
persists the selection for the next process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..core.rewrite import RewriteSolver
from ..errors import CatalogError, UnknownDocumentError
from ..faults import FaultPolicy
from ..obs import current_registry, span
from ..patterns.ast import Pattern
from ..views.advisor import (
    advise_views,
    deserialize_selection,
    selection_fingerprint,
    serialize_selection,
)
from ..views.engine import BatchAnswer, QueryEngine, QueryPlan
from ..views.persist import MemoryBackend, StoreBackend
from ..views.store import ViewStore
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree
from .sqlite_backend import SqliteBackend

__all__ = ["Catalog", "CatalogAdvice", "CatalogEntry", "RoutedAnswer"]

#: Default capacity of each engine's cross-batch answer cache.
DEFAULT_ANSWER_CACHE = 512


@dataclass
class CatalogEntry:
    """One registered document and its serving machinery."""

    doc_id: str
    digest: str
    tree: XMLTree
    store: ViewStore
    engine: QueryEngine
    views: list[str] = field(default_factory=list)


@dataclass
class CatalogAdvice:
    """Outcome of :meth:`Catalog.advise` for one document.

    ``warm`` says whether the selection came from a persisted record
    (the advisor was skipped) or was computed fresh; either way
    ``views`` lists the defined view names in selection order and
    ``fingerprint`` is the workload fingerprint the record is keyed by.
    """

    doc_id: str
    views: list[str]
    fingerprint: str
    warm: bool


@dataclass
class RoutedAnswer:
    """Outcome of one :meth:`Catalog.route` call.

    ``answers``/``plans`` are in request order (duplicates within one
    document's group share their set object — copy before mutating);
    ``groups`` maps each involved document id to the
    :class:`~repro.views.engine.BatchAnswer` its group was answered
    with, so per-document fold/plan statistics stay inspectable.
    """

    answers: list[set[TNode]] = field(default_factory=list)
    plans: list[QueryPlan] = field(default_factory=list)
    groups: dict[str, BatchAnswer] = field(default_factory=dict)


class Catalog:
    """A fleet of documents and their view stores behind one serving API.

    Parameters
    ----------
    db_path:
        When set, the catalog persists through a
        :class:`~repro.catalog.sqlite_backend.SqliteBackend` at this
        path (shared by every document); ``None`` keeps everything in
        one in-memory backend.  Mutually exclusive with ``backend``.
    backend:
        An explicit shared backend instance (the catalog takes
        ownership and closes it).
    answer_cache_size:
        Per-engine cross-batch answer cache capacity (0 disables).
    max_models:
        Canonical-model budget handed to each engine's solver and the
        advisor (None = unbounded).
    tractable_only:
        Handed to each engine: True (default) restricts intersection
        plans to the tractable merge regime; False also accepts
        certificate-carrying intractable-regime merges (see
        :mod:`repro.core.intersect`).
    fault_policy:
        Deterministic fault-injection hooks (:mod:`repro.faults`)
        handed to the SQLite backend built from ``db_path`` — the test
        seam for backend I/O-error degradation.  Only meaningful with
        ``db_path``; an explicit ``backend`` carries its own policy.
    """

    def __init__(
        self,
        *,
        db_path: str | Path | None = None,
        backend: StoreBackend | None = None,
        answer_cache_size: int = DEFAULT_ANSWER_CACHE,
        max_models: int | None = None,
        tractable_only: bool = True,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        if db_path is not None and backend is not None:
            raise CatalogError("pass db_path or backend, not both")
        if fault_policy is not None and db_path is None:
            raise CatalogError(
                "fault_policy rides on the SQLite backend — pass db_path "
                "(an explicit backend carries its own policy)"
            )
        if backend is None:
            backend = (
                SqliteBackend(db_path, fault_policy=fault_policy)
                if db_path is not None
                else MemoryBackend()
            )
        self.backend: StoreBackend = backend
        self.answer_cache_size = answer_cache_size
        self.max_models = max_models
        self.tractable_only = tractable_only
        self._entries: dict[str, CatalogEntry] = {}

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    def register(self, doc_id: str, tree: XMLTree) -> CatalogEntry:
        """Register a document under ``doc_id`` and set up its serving stack."""
        if doc_id in self._entries:
            raise CatalogError(f"document {doc_id!r} already registered")
        store = ViewStore(backend=self.backend)
        store.add_document(doc_id, tree)
        engine = QueryEngine(
            store,
            solver=RewriteSolver(use_fallback=False, max_models=self.max_models),
            answer_cache_size=self.answer_cache_size,
            tractable_only=self.tractable_only,
        )
        entry = CatalogEntry(
            doc_id=doc_id,
            digest=store.document_digest(doc_id),
            tree=tree,
            store=store,
            engine=engine,
        )
        self._entries[doc_id] = entry
        return entry

    def entry(self, doc_id: str) -> CatalogEntry:
        """The entry for ``doc_id``; typed error when unknown."""
        try:
            return self._entries[doc_id]
        except KeyError:
            raise UnknownDocumentError(
                f"unknown document {doc_id!r} (registered: "
                f"{sorted(self._entries) or 'none'})"
            ) from None

    def documents(self) -> list[str]:
        """Registered document ids, sorted."""
        return sorted(self._entries)

    def document_digest(self, doc_id: str) -> str:
        """The registered document's shape digest (the persistence key)."""
        return self.entry(doc_id).digest

    # ------------------------------------------------------------------
    # Advising (with persisted-selection warm starts)
    # ------------------------------------------------------------------
    def advise(
        self,
        doc_id: str,
        queries: Sequence[Pattern],
        weights: Sequence[float] | None = None,
        max_views: int = 4,
    ) -> CatalogAdvice:
        """Select and materialize views for a workload over one document.

        Consults the backend for a persisted selection first (keyed by
        the document digest and the workload fingerprint); only a miss
        runs the advisor, and the fresh selection is persisted for the
        next process.  View names are ``view-0..n`` in selection order,
        identical for warm and cold paths — a warm catalog is
        indistinguishable from a cold one above the backend.
        """
        entry = self.entry(doc_id)
        if entry.views:
            raise CatalogError(
                f"document {doc_id!r} already has advised views; "
                "register a fresh catalog entry to re-advise"
            )
        fingerprint = selection_fingerprint(
            queries,
            weights=weights,
            max_views=max_views,
            max_models=self.max_models,
        )
        patterns: list[Pattern] | None = None
        warm = False
        payload = self.backend.load_selection(entry.digest, fingerprint)
        if payload is not None:
            try:
                patterns = deserialize_selection(payload)
                warm = True
            except Exception:
                patterns = None  # unreadable record: fall back to advising
        if patterns is None:
            advice = advise_views(
                queries,
                weights=weights,
                max_views=max_views,
                sample=entry.tree,
                max_models=self.max_models,
            )
            patterns = [view.pattern for view in advice.views]
            self.backend.save_selection(
                entry.digest, fingerprint, serialize_selection(advice)
            )
        for rank, pattern in enumerate(patterns):
            name = f"view-{rank}"
            entry.store.define_view(name, pattern)
            entry.views.append(name)
        return CatalogAdvice(
            doc_id=doc_id,
            views=list(entry.views),
            fingerprint=fingerprint,
            warm=warm,
        )

    def define_views(
        self, doc_id: str, patterns: Sequence[Pattern]
    ) -> list[str]:
        """Define explicit views over one document (no advisor involved).

        For fleets whose views are curated rather than advised — e.g.
        partial views published by independent providers, the regime
        intersection plans exist for.  Names continue the ``view-N``
        numbering after any advised views; materializations flow through
        the storage backend exactly like advised ones (same digest
        keying), so explicit views warm-start too.  When combining with
        :meth:`advise`, advise first — it refuses a document that
        already has views (its warm-start contract binds the advised
        set alone).
        """
        entry = self.entry(doc_id)
        names: list[str] = []
        for pattern in patterns:
            name = f"view-{len(entry.views)}"
            entry.store.define_view(name, pattern)
            entry.views.append(name)
            names.append(name)
        return names

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def answer(self, doc_id: str, query: Pattern) -> set[TNode]:
        """Answer one query on one document (view plan when possible)."""
        entry = self.entry(doc_id)
        return entry.engine.answer(query, doc_id)

    def answer_many(
        self, doc_id: str, queries: Sequence[Pattern]
    ) -> BatchAnswer:
        """Answer a batch on one document through the engine's fold."""
        entry = self.entry(doc_id)
        return entry.engine.answer_many(queries, doc_id)

    def route(
        self, requests: Sequence[tuple[str, Pattern]]
    ) -> RoutedAnswer:
        """Dispatch ``(document id, query)`` requests across the fleet.

        Requests are validated (every document id must be registered —
        :class:`~repro.errors.UnknownDocumentError` otherwise, before
        any work runs), grouped per document preserving input order,
        answered with one :meth:`~repro.views.engine.QueryEngine.answer_many`
        call per group, and scattered back in request order.
        """
        with span("catalog.route", requests=len(requests)) as scope:
            grouped: dict[str, list[int]] = {}
            for index, (doc_id, _) in enumerate(requests):
                self.entry(doc_id)  # typed validation up front
                grouped.setdefault(doc_id, []).append(index)
            scope.set(documents=len(grouped))
            routed = RoutedAnswer(
                answers=[set()] * len(requests),
                plans=[QueryPlan(kind="direct")] * len(requests),
            )
            for doc_id, indexes in grouped.items():
                batch = self.answer_many(
                    doc_id, [requests[index][1] for index in indexes]
                )
                routed.groups[doc_id] = batch
                for position, index in enumerate(indexes):
                    routed.answers[index] = batch.answers[position]
                    routed.plans[index] = batch.plans[position]
            return routed

    def node_ids(self, doc_id: str, nodes) -> list[int]:
        """Preorder encoding of an answer set (see ``ViewStore.node_ids``)."""
        return self.entry(doc_id).store.node_ids(doc_id, nodes)

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Deterministic per-document counters (for regression tests).

        For a fixed call sequence this dict is bit-for-bit reproducible,
        warm or cold — backend hit/save counters are exactly what a warm
        start changes, so they are deliberately *not* here (mirror of
        :meth:`ReplayReport.counters
        <repro.workloads.replay.ReplayReport.counters>`).
        """
        return {
            doc_id: {
                "digest": entry.digest,
                "views": list(entry.views),
                "engine": entry.engine.stats.snapshot(),
            }
            for doc_id, entry in sorted(self._entries.items())
        }

    def backend_stats(self) -> dict[str, int]:
        """The shared backend's counters plus its ``durable`` flag.

        Also the backend tier's registry publish point: each call
        mirrors the snapshot (``io_errors`` included) into the
        installed :class:`~repro.obs.MetricsRegistry`, if any.
        """
        stats = dict(self.backend.stats.snapshot())
        stats["durable"] = int(self.backend.durable)
        registry = current_registry()
        if registry is not None:
            registry.publish("backend", stats)
        return stats

    def prune(self, *, ttl_seconds: float = 0.0, clock=None) -> int:
        """Evict backend rows for documents no longer in this catalog.

        Threads the registered digests through
        :meth:`SqliteBackend.prune
        <repro.catalog.sqlite_backend.SqliteBackend.prune>` as the live
        set, so only rows orphaned by unregistration or re-digesting
        (and older than ``ttl_seconds`` by ``clock``) are deleted.
        Backends without a ``prune`` method (the snapshot log compacts
        instead) are a no-op returning 0.
        """
        pruner = getattr(self.backend, "prune", None)
        if pruner is None:
            return 0
        live = {entry.digest for entry in self._entries.values()}
        return pruner(live, ttl_seconds=ttl_seconds, clock=clock)

    def close(self) -> None:
        """Close the shared backend (stores do not own it)."""
        self.backend.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
