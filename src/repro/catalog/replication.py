"""The replicated read tier: snapshot-log shipping and replica failover.

ROADMAP item 3's second half — the path from "process pool" to
"millions of users".  The EDBT'09 serving premise is that materialized
view answers are cheap once advised; serving them at scale means many
independent readers warm-started from one writer's state.  This module
builds that on the snapshot log (:class:`~repro.views.persist.
SnapshotBackend`), whose records were already append-only and
self-checksummed — PR 9 gave them monotone sequence numbers, which is
all a replication stream needs:

* **One writer** — a :class:`~repro.catalog.catalog.Catalog` over a
  :class:`~repro.views.persist.SnapshotBackend`.  Advising,
  materialization and invalidation happen here and only here; each
  becomes one seqno'd log record.
* **N read replicas** — each replica owns a byte-for-byte *shipped
  copy* of the writer's log, replays it on open (checksum-validated,
  exactly like any snapshot open), and warm-starts its own catalog
  from the shipped selections and materializations: the advisor never
  runs on a replica, materialized forests load instead of being
  re-evaluated.
* **Catch-up** — :meth:`ReplicaSet.sync` ships the writer's log tail
  past each replica's high-water mark
  (:meth:`~repro.views.persist.SnapshotBackend.read_since`) and applies
  it idempotently (:meth:`~repro.views.persist.SnapshotBackend.
  apply_records`): duplicates are skipped, torn or corrupt records are
  rejected, and any gap aborts the batch — all three degrade to a full
  snapshot **re-ship**, never to wrong state.
* **Bounded staleness** — reads carry a contract: a replica whose
  applied seqno trails the writer by more than ``max_lag_records``, or
  whose last successful catch-up is older than ``max_lag_seconds``
  (against the injected clock), *self-fences* with a typed
  :class:`~repro.errors.ReplicaLagError` instead of serving stale
  answers.  The dispatcher tries a fresher sibling.
* **The failure ladder** — reads round-robin across healthy replicas;
  a crash (:class:`~repro.errors.ReplicaUnavailableError`, injected
  deterministically via :meth:`FaultPolicy.on_replica
  <repro.faults.FaultPolicy.on_replica>`) evicts the replica and
  retries the batch on a sibling; with no healthy, fresh replica left
  the batch degrades to the writer's own inline catalog — zero lost
  requests.  :meth:`ReplicaSet.restart` is the recovery rung: snapshot
  re-ship, catch-up, rejoin.

Every counter in :class:`ReplicationStats` is deterministic under a
scripted fault policy and a virtual clock, so the failover soak in
``tests/test_replication.py`` asserts *exact* crash/retry/degrade
counts across runs — reproducible recovery, not a flake budget.

Answers are sorted preorder indexes, the same process-independent
encoding every serving path uses, so a replica's answers are
comparable bit-for-bit against the writer-inline baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..errors import CatalogError, ReplicaLagError, ReplicaUnavailableError
from ..faults import FaultPolicy
from ..obs import span
from ..patterns.parse import parse_pattern
from ..views.persist import SnapshotBackend
from .catalog import Catalog
from .server import CatalogSpec, build_catalog

__all__ = ["Replica", "ReplicaSet", "ReplicationStats"]


@dataclass
class ReplicationStats:
    """Deterministic counters for one :class:`ReplicaSet`'s lifetime.

    Shipping: ``records_shipped`` counts records applied on replicas
    during catch-up, ``duplicates_skipped`` idempotent re-deliveries,
    ``corrupt_shipped`` records rejected by checksum on apply,
    ``gaps_detected`` non-contiguous tails, and ``reships`` full
    snapshot re-ships (the recovery for both).  ``ship_failures``
    counts injected shipping faults (the replica stays stale and will
    lag-fence).

    Dispatch: ``replica_answers``/``writer_answers`` partition every
    served request by who answered it; ``replica_crashes`` →
    ``evictions`` → ``failover_retries`` → ``writer_fallbacks`` count
    the ladder's rungs; ``lag_fenced`` counts reads a stale replica
    refused; ``rejoins`` counts successful restarts.
    """

    syncs: int = 0
    records_shipped: int = 0
    duplicates_skipped: int = 0
    corrupt_shipped: int = 0
    gaps_detected: int = 0
    reships: int = 0
    ship_failures: int = 0
    replica_answers: int = 0
    writer_answers: int = 0
    replica_crashes: int = 0
    evictions: int = 0
    failover_retries: int = 0
    lag_fenced: int = 0
    writer_fallbacks: int = 0
    rejoins: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "syncs": self.syncs,
            "records_shipped": self.records_shipped,
            "duplicates_skipped": self.duplicates_skipped,
            "corrupt_shipped": self.corrupt_shipped,
            "gaps_detected": self.gaps_detected,
            "reships": self.reships,
            "ship_failures": self.ship_failures,
            "replica_answers": self.replica_answers,
            "writer_answers": self.writer_answers,
            "replica_crashes": self.replica_crashes,
            "evictions": self.evictions,
            "failover_retries": self.failover_retries,
            "lag_fenced": self.lag_fenced,
            "writer_fallbacks": self.writer_fallbacks,
            "rejoins": self.rejoins,
        }


@dataclass
class Replica:
    """One read replica: a shipped log copy and the catalog over it.

    ``applied_seqno`` mirrors the replica backend's high-water mark;
    ``synced_at`` is the (injectable) clock reading of the last
    successful catch-up — the two inputs of the staleness contract.
    ``warm`` records whether the replica's advise warm-started from
    shipped selection records (it must, that is the point of shipping).
    """

    index: int
    path: Path
    backend: SnapshotBackend
    catalog: Catalog
    synced_at: float
    healthy: bool = True
    warm: bool = False
    serves: int = 0

    @property
    def applied_seqno(self) -> int:
        return self.backend.last_seqno

    def describe(self) -> dict:
        return {
            "index": self.index,
            "healthy": self.healthy,
            "warm": self.warm,
            "applied_seqno": self.applied_seqno,
            "serves": self.serves,
        }


class ReplicaSet:
    """One writer, N read replicas, and the read-path dispatch policy.

    Parameters
    ----------
    spec:
        The fleet description (:class:`~repro.catalog.server.
        CatalogSpec`).  ``spec.db_path`` must be ``None`` — replication
        ships the snapshot log, so the set owns its storage layout
        under ``root`` (``writer.log`` plus one ``replica-N.log`` per
        replica).
    replicas:
        Reader count (>= 1).
    root:
        Directory for the writer's log and every shipped copy.
    max_lag_records / max_lag_seconds:
        The bounded-staleness contract; ``None`` disables that bound.
        A replica exceeding either self-fences with
        :class:`~repro.errors.ReplicaLagError` until the next
        :meth:`sync`.
    clock:
        Zero-argument seconds callable (injectable —
        :class:`~repro.faults.VirtualClock`); defaults to
        ``time.monotonic``.  Feeds ``synced_at`` and the lag-seconds
        check only; never used for throughput measurement.
    fault_policy:
        Deterministic fault hooks (:meth:`FaultPolicy.on_replica
        <repro.faults.FaultPolicy.on_replica>`), consulted before each
        replica serve and each post-bootstrap ship.  Construction
        itself is fault-free: a set that cannot bootstrap is not a
        robustness scenario, it is a configuration error.

    The writer catalog is built first (cold or warm against
    ``root/writer.log``), then each replica bootstraps from a
    byte-for-byte copy of the writer's log.  Use as a context manager;
    :meth:`close` is idempotent.
    """

    def __init__(
        self,
        spec: CatalogSpec,
        *,
        replicas: int = 2,
        root: str | Path,
        max_lag_records: int | None = None,
        max_lag_seconds: float | None = None,
        clock: Callable[[], float] | None = None,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        if replicas < 1:
            raise CatalogError("a ReplicaSet needs >= 1 replica")
        if spec.db_path is not None:
            raise CatalogError(
                "replication ships the snapshot log — pass a spec without "
                "db_path (the set lays out its own files under root)"
            )
        if max_lag_records is not None and max_lag_records < 0:
            raise CatalogError("max_lag_records must be >= 0 (or None)")
        if max_lag_seconds is not None and max_lag_seconds < 0:
            raise CatalogError("max_lag_seconds must be >= 0 (or None)")
        self.spec = spec
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_lag_records = max_lag_records
        self.max_lag_seconds = max_lag_seconds
        self._clock = clock if clock is not None else time.monotonic
        self._fault_policy = fault_policy
        self.stats = ReplicationStats()
        self._rr = 0
        self._closed = False

        self._writer_path = self.root / "writer.log"
        self._writer_backend = SnapshotBackend(self._writer_path)
        self.writer: Catalog = build_catalog(spec, backend=self._writer_backend)
        self._replicas: list[Replica] = [
            self._bootstrap(index) for index in range(replicas)
        ]

    # ------------------------------------------------------------------
    # Shipping: bootstrap, catch-up, re-ship
    # ------------------------------------------------------------------
    def _replica_path(self, index: int) -> Path:
        return self.root / f"replica-{index}.log"

    def _bootstrap(self, index: int) -> Replica:
        """Build replica ``index`` from a fresh snapshot ship.

        The shipped copy is byte-for-byte (every writer append is
        flushed), so opening it replays the same checksummed records;
        the replica catalog's advise then warm-starts from the shipped
        selection records and its materializations load instead of
        re-evaluating.
        """
        path = self._replica_path(index)
        path.write_bytes(self._writer_path.read_bytes())
        backend = SnapshotBackend(path)
        selection_hits_before = backend.stats.selection_hits
        catalog = build_catalog(self.spec, backend=backend)
        return Replica(
            index=index,
            path=path,
            backend=backend,
            catalog=catalog,
            synced_at=self._clock(),
            warm=backend.stats.selection_hits > selection_hits_before,
        )

    def _maybe_fault(self, op: str, index: int) -> None:
        """Raise the injected replica fault, if the policy scripts one.

        ``crash``/``hang`` surface as
        :class:`~repro.errors.ReplicaUnavailableError`; ``error``
        raises the carried exception; ``delay`` advanced the policy's
        clock already (the deterministic stand-in for a slow replica).
        """
        if self._fault_policy is None:
            return
        action = self._fault_policy.on_replica(op, index)
        if action is None:
            return
        if action.kind in ("crash", "hang"):
            raise ReplicaUnavailableError(
                f"replica {index} {op} crashed (injected)"
            )
        if action.kind == "error":
            assert action.exc is not None
            raise action.exc

    def sync(self) -> dict[int, int]:
        """Ship the writer's log tail to every healthy replica.

        Returns ``{replica index: records applied}``.  A tail that does
        not apply cleanly — torn records, a gap (e.g. across a writer
        compaction) — triggers a full snapshot re-ship for that
        replica; an injected shipping fault leaves the replica stale
        (counted, and it will self-fence once past the lag bounds).
        """
        self.stats.syncs += 1
        applied: dict[int, int] = {}
        for replica in self._replicas:
            if not replica.healthy:
                continue
            # The next sync() pass retries the skipped ship.
            try:
                self._maybe_fault("ship", replica.index)
            except ReplicaUnavailableError:  # noqa: REP001
                self.stats.ship_failures += 1
                continue
            applied[replica.index] = self._catch_up(replica)
        return applied

    def _catch_up(self, replica: Replica) -> int:
        tail = self._writer_backend.read_since(replica.applied_seqno)
        result = replica.backend.apply_records(tail.records)
        self.stats.duplicates_skipped += result.skipped
        self.stats.corrupt_shipped += result.rejected
        count = result.applied
        if result.gap_at is not None:
            self.stats.gaps_detected += 1
        if not result.clean or tail.corrupt:
            count += self._reship(replica)
        self.stats.records_shipped += count
        replica.synced_at = self._clock()
        return count

    def _reship(self, replica: Replica) -> int:
        """Full snapshot re-ship: rebuild the replica from writer bytes.

        The recovery for any unclean tail.  Never merges: the shipped
        file *replaces* the replica's log, so corrupt or gapped state
        cannot survive.  Returns the records newly visible to the
        replica (its high-water delta).
        """
        before = replica.applied_seqno
        replica.catalog.close()  # closes the replica backend too
        path = self._replica_path(replica.index)
        path.write_bytes(self._writer_path.read_bytes())
        replica.backend = SnapshotBackend(path)
        replica.catalog = build_catalog(self.spec, backend=replica.backend)
        self.stats.reships += 1
        return max(0, replica.applied_seqno - before)

    def restart(self, index: int) -> bool:
        """Recover one replica: snapshot re-ship → catch-up → rejoin.

        The ladder's recovery rung for an evicted (or simply stale)
        replica.  Consults the fault policy (a scripted ship fault
        makes the restart *fail* deterministically — the replica stays
        evicted and the method returns ``False``).
        """
        replica = self._replicas[index]
        # A False return tells the caller to retry restart() later.
        try:
            self._maybe_fault("ship", index)
        except ReplicaUnavailableError:  # noqa: REP001
            self.stats.ship_failures += 1
            return False
        self._reship(replica)
        replica.synced_at = self._clock()
        replica.healthy = True
        self.stats.rejoins += 1
        return True

    # ------------------------------------------------------------------
    # Read dispatch: round-robin, lag fencing, the failure ladder
    # ------------------------------------------------------------------
    def _next_replica(self) -> Replica | None:
        count = len(self._replicas)
        for _ in range(count):
            replica = self._replicas[self._rr % count]
            self._rr += 1
            if replica.healthy:
                return replica
        return None

    def _check_lag(self, replica: Replica) -> None:
        if self.max_lag_records is not None:
            lag = self._writer_backend.last_seqno - replica.applied_seqno
            if lag > self.max_lag_records:
                raise ReplicaLagError(
                    f"replica {replica.index} trails the writer by {lag} "
                    f"records (bound: {self.max_lag_records}); sync() or "
                    "restart() it"
                )
        if self.max_lag_seconds is not None:
            age = self._clock() - replica.synced_at
            if age > self.max_lag_seconds:
                raise ReplicaLagError(
                    f"replica {replica.index} last caught up {age:.3f}s ago "
                    f"(bound: {self.max_lag_seconds}s); sync() or restart() "
                    "it"
                )

    def _serve_on(
        self, replica: Replica, doc_id: str, xpaths: list[str]
    ) -> tuple[list[list[int]], list[str]]:
        self._maybe_fault("serve", replica.index)
        queries = [parse_pattern(x) for x in xpaths]
        batch = replica.catalog.answer_many(doc_id, queries)
        ids = [
            replica.catalog.node_ids(doc_id, answer)
            for answer in batch.answers
        ]
        replica.serves += len(xpaths)
        self.stats.replica_answers += len(xpaths)
        return ids, [plan.kind for plan in batch.plans]

    def _evict_and_retry(self, replica: Replica) -> None:
        """Evict a crashed replica; the dispatch loop retries a sibling."""
        replica.healthy = False
        self.stats.evictions += 1
        self.stats.failover_retries += 1

    def execute(
        self, doc_id: str, xpaths: list[str]
    ) -> tuple[list[list[int]], list[str]]:
        """Answer one per-document batch through the failure ladder.

        Healthy replicas are tried round-robin: a crash evicts the
        replica and retries the batch on the next sibling; a lag fence
        moves on without evicting (the replica recovers by syncing, not
        restarting).  When every replica is evicted or fenced the batch
        degrades to the writer's inline catalog — the request is never
        lost.  Injected ``error`` actions propagate to the caller (a
        poisoned batch is a request failure, not an availability
        event), matching the shard pool's contract.
        """
        with span(
            "replica.execute", doc_id=doc_id, queries=len(xpaths)
        ) as scope:
            failovers = 0
            attempts = len(self._replicas)
            while attempts > 0:
                attempts -= 1
                replica = self._next_replica()
                if replica is None:
                    break
                try:
                    self._check_lag(replica)
                    result = self._serve_on(replica, doc_id, xpaths)
                    scope.set(served_by=replica.index, failovers=failovers)
                    return result
                except ReplicaLagError:
                    self.stats.lag_fenced += 1
                    self.stats.failover_retries += 1
                    failovers += 1
                except ReplicaUnavailableError:
                    self.stats.replica_crashes += 1
                    self._evict_and_retry(replica)
                    failovers += 1
            self.stats.writer_fallbacks += 1
            scope.set(served_by="writer", failovers=failovers)
            return self._writer_inline(doc_id, xpaths)

    def _writer_inline(
        self, doc_id: str, xpaths: list[str]
    ) -> tuple[list[list[int]], list[str]]:
        queries = [parse_pattern(x) for x in xpaths]
        batch = self.writer.answer_many(doc_id, queries)
        ids = [
            self.writer.node_ids(doc_id, answer) for answer in batch.answers
        ]
        self.stats.writer_answers += len(xpaths)
        return ids, [plan.kind for plan in batch.plans]

    def route(
        self, requests: Sequence[tuple[str, str]]
    ) -> tuple[list[list[int]], list[str]]:
        """Dispatch ``(document id, XPath)`` requests across the tier.

        Requests are grouped per document preserving input order (the
        router's contract), each group runs through :meth:`execute`'s
        ladder, and answers scatter back in request order as sorted
        preorder indexes.
        """
        grouped: dict[str, list[int]] = {}
        for index, (doc_id, _) in enumerate(requests):
            self.writer.entry(doc_id)  # typed validation up front
            grouped.setdefault(doc_id, []).append(index)
        answer_ids: list[list[int]] = [[] for _ in requests]
        plan_kinds: list[str] = [""] * len(requests)
        for doc_id, indexes in grouped.items():
            ids, kinds = self.execute(
                doc_id, [requests[index][1] for index in indexes]
            )
            for position, index in enumerate(indexes):
                answer_ids[index] = ids[position]
                plan_kinds[index] = kinds[position]
        return answer_ids, plan_kinds

    # ------------------------------------------------------------------
    # Writer-path mutations (ship-through)
    # ------------------------------------------------------------------
    def define_views(self, doc_id: str, patterns) -> list[str]:
        """Define views on the writer, then ship them to the replicas.

        The writer materializes (appending ``put`` records), the tail
        ships via :meth:`sync`, and each healthy replica defines the
        same views — whose materializations *load* from the shipped
        records instead of re-evaluating.  Evicted replicas pick the
        views up on :meth:`restart` (the re-shipped snapshot carries
        the records; the rebuilt catalog defines spec views only, so
        late-defined views load lazily on their first plan).
        """
        names = self.writer.define_views(doc_id, patterns)
        self.sync()
        for replica in self._replicas:
            if replica.healthy:
                replica.catalog.define_views(doc_id, patterns)
        return names

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def replicas(self) -> list[Replica]:
        return list(self._replicas)

    def healthy_count(self) -> int:
        return sum(1 for replica in self._replicas if replica.healthy)

    def lag_records(self, index: int) -> int:
        """How many records replica ``index`` trails the writer by."""
        return (
            self._writer_backend.last_seqno
            - self._replicas[index].applied_seqno
        )

    def stats_snapshot(self) -> dict:
        """Counters plus per-replica state — fully deterministic under
        a scripted policy and virtual clock (the soak's contract)."""
        data: dict = self.stats.snapshot()
        data["writer_seqno"] = self._writer_backend.last_seqno
        data["replicas"] = [replica.describe() for replica in self._replicas]
        return data

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for replica in self._replicas:
            replica.catalog.close()
        self.writer.close()

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
