"""Sharded serving over a catalog: process-pool and inline modes.

Planning is CPU-bound (containment dominates), so a busy catalog wants
batches *off* the event loop and across cores.  Python processes do not
share pattern/tree objects, which dictates the transport:

* a :class:`CatalogSpec` is a fully picklable description of the fleet —
  documents as XML text, advisor workloads as XPath strings, plus the
  shared SQLite path — from which any process can rebuild an identical
  :class:`~repro.catalog.catalog.Catalog` (:func:`build_catalog`);
* requests ship as ``(document id, XPath)`` pairs and answers come back
  as **sorted preorder indexes** (the same process-independent encoding
  the storage backends persist), so results are comparable across modes
  bit for bit.

:class:`CatalogServer` runs in two modes:

* ``workers=0`` — **deterministic inline mode**: one in-process catalog,
  every batch answered synchronously.  Counters stay inspectable
  (:meth:`CatalogServer.counters`), which keeps the whole serving path
  regression-testable; the pool mode must produce identical answers.
* ``workers>=1`` — **document-affine sharding** over single-process
  :class:`~concurrent.futures.ProcessPoolExecutor` shards whose workers
  rebuild the catalog from the spec.  Each document id maps to one
  fixed shard (its position in the sorted id list, modulo ``workers``),
  so a document's planning state — decision caches, answer caches,
  containment engines — lives in exactly one process and is never
  recomputed by its siblings; throughput scales across *documents*.
  With a shared SQLite path the workers *warm-start*: advisor
  selections and materializations load from the database instead of
  being recomputed (see the catalog benchmark's scaling section).
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence, TYPE_CHECKING

from ..errors import (
    CatalogError,
    RequestTimeout,
    ShardCrashError,
    UnknownDocumentError,
)
from ..faults import FaultPolicy
from ..patterns.ast import Pattern
from ..patterns.parse import parse_pattern
from ..patterns.serialize import to_xpath
from ..shardpool import ShardPool
from ..views.persist import StoreBackend
from ..xmltree.parse import parse_xml, to_xml
from ..xmltree.tree import XMLTree
from .catalog import Catalog

if TYPE_CHECKING:
    from .replication import ReplicaSet
    from .serving import AsyncFrontEnd

__all__ = [
    "CatalogServer",
    "CatalogServeResult",
    "CatalogSpec",
    "DocumentSpec",
    "build_catalog",
]


@dataclass(frozen=True)
class DocumentSpec:
    """A picklable description of one catalog document.

    ``workload_xpaths``/``weights`` are the advisor inputs — they (not
    the selected views) are what the selection fingerprint binds, so a
    worker rebuilding from this spec computes the same fingerprint and
    warm-starts from the same persisted selection.  ``view_xpaths`` are
    *explicit* views defined after advising (curated partial views, the
    intersection-plan regime) — see :meth:`Catalog.define_views
    <repro.catalog.catalog.Catalog.define_views>`.
    """

    doc_id: str
    xml: str
    workload_xpaths: tuple[str, ...] = ()
    weights: tuple[float, ...] | None = None
    view_xpaths: tuple[str, ...] = ()

    @classmethod
    def from_tree(
        cls,
        doc_id: str,
        tree: XMLTree,
        workload: Sequence[Pattern] = (),
        weights: Sequence[float] | None = None,
        views: Sequence[Pattern] = (),
    ) -> "DocumentSpec":
        return cls(
            doc_id=doc_id,
            xml=to_xml(tree),
            workload_xpaths=tuple(to_xpath(query) for query in workload),
            weights=tuple(weights) if weights is not None else None,
            view_xpaths=tuple(to_xpath(view) for view in views),
        )


@dataclass(frozen=True)
class CatalogSpec:
    """Everything needed to rebuild the catalog in another process."""

    documents: tuple[DocumentSpec, ...]
    db_path: str | None = None
    max_views: int = 4
    answer_cache_size: int = 512
    max_models: int | None = None
    tractable_only: bool = True


def build_catalog(
    spec: CatalogSpec, *, backend: StoreBackend | None = None
) -> Catalog:
    """Rebuild a catalog from its spec: register and advise every document.

    With ``spec.db_path`` set and a previously populated database this
    is the warm path — selections and materializations load instead of
    being recomputed.  An explicit ``backend`` overrides ``db_path``
    (the replicated read tier builds writer and replica catalogs over
    its own snapshot logs this way); the catalog takes ownership and
    closes it.
    """
    catalog = Catalog(
        db_path=spec.db_path if backend is None else None,
        backend=backend,
        answer_cache_size=spec.answer_cache_size,
        max_models=spec.max_models,
        tractable_only=spec.tractable_only,
    )
    try:
        for doc in spec.documents:
            catalog.register(doc.doc_id, parse_xml(doc.xml))
            if doc.workload_xpaths:
                catalog.advise(
                    doc.doc_id,
                    [parse_pattern(x) for x in doc.workload_xpaths],
                    # `is not None`, not truthiness: an explicit empty
                    # weights tuple must surface the advisor's length
                    # mismatch, not silently become uniform weights
                    # under a different fingerprint.
                    weights=(
                        list(doc.weights) if doc.weights is not None else None
                    ),
                    max_views=spec.max_views,
                )
            if doc.view_xpaths:
                catalog.define_views(
                    doc.doc_id,
                    [parse_pattern(x) for x in doc.view_xpaths],
                )
    except Exception:
        catalog.close()
        raise
    return catalog


# ----------------------------------------------------------------------
# Worker-process plumbing (module-level for picklability)
# ----------------------------------------------------------------------

_WORKER_CATALOG: Catalog | None = None


def _init_worker(spec: CatalogSpec) -> None:
    global _WORKER_CATALOG
    _WORKER_CATALOG = build_catalog(spec)


def _serve_in_worker(
    doc_id: str, xpaths: list[str]
) -> tuple[list[list[int]], list[str]]:
    """Answer one document group in a worker; returns (ids, plan kinds)."""
    assert _WORKER_CATALOG is not None, "worker initializer did not run"
    queries = [parse_pattern(x) for x in xpaths]
    batch = _WORKER_CATALOG.answer_many(doc_id, queries)
    ids = [
        _WORKER_CATALOG.node_ids(doc_id, answer) for answer in batch.answers
    ]
    return ids, [plan.kind for plan in batch.plans]


@dataclass
class CatalogServeResult:
    """Outcome of one :meth:`CatalogServer.serve_requests` call.

    ``answer_ids``/``plan_kinds`` are in request order; answers are
    sorted preorder indexes into their document (identical between
    inline and pool modes).  ``elapsed_seconds`` is wall time for the
    whole call; the deterministic portion is everything else.
    """

    answer_ids: list[list[int]] = field(default_factory=list)
    plan_kinds: list[str] = field(default_factory=list)
    served: int = 0
    batches: int = 0
    by_document: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def queries_per_sec(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.served / self.elapsed_seconds

    def counters(self) -> dict:
        """The deterministic portion (answers, plans, routing)."""
        return {
            "answer_ids": [list(ids) for ids in self.answer_ids],
            "plan_kinds": list(self.plan_kinds),
            "served": self.served,
            "batches": self.batches,
            "by_document": dict(self.by_document),
        }


class CatalogServer:
    """Serve ``(document id, query)`` batches over a catalog spec.

    Parameters
    ----------
    spec:
        The fleet description (see :class:`CatalogSpec`).
    workers:
        ``0`` (default) runs deterministically in-process; ``n >= 1``
        shards batches document-affinely across ``n`` worker processes
        that rebuild the catalog from the spec (warm-starting from
        ``spec.db_path`` when set).
    result_timeout:
        Upper bound, in seconds, on how long :meth:`serve_requests`
        waits for any single worker future — a dead or wedged worker
        surfaces as a typed :class:`~repro.errors.RequestTimeout`
        instead of blocking the caller forever.  ``None`` disables the
        bound (the pre-PR-8 behavior; not recommended).
    fault_policy:
        Deterministic fault-injection hooks (:mod:`repro.faults`):
        consulted by the shard pool before every submission and by the
        async front end's inline execution path.  ``None`` (default)
        injects nothing.
    """

    def __init__(
        self,
        spec: CatalogSpec,
        workers: int = 0,
        *,
        result_timeout: float | None = 300.0,
        fault_policy: FaultPolicy | None = None,
    ) -> None:
        if workers < 0:
            raise CatalogError("workers must be >= 0")
        if result_timeout is not None and result_timeout <= 0:
            raise CatalogError("result_timeout must be positive or None")
        self.spec = spec
        self.workers = workers
        self.result_timeout = result_timeout
        self._fault_policy = fault_policy
        self._known = {doc.doc_id for doc in spec.documents}
        # Document -> shard affinity: position in the sorted id list,
        # modulo the worker count.  Deterministic, so a document's
        # planning caches live (and stay warm) in exactly one worker.
        self._shard_of = {
            doc_id: index % workers if workers else 0
            for index, doc_id in enumerate(sorted(self._known))
        }
        self._closed = False
        # Cumulative per-document served counts (sync and async paths
        # both feed this) — the rebalancing groundwork's raw signal.
        self._doc_load: dict[str, int] = {}
        self._catalog: Catalog | None = None
        self._fallback: Catalog | None = None
        self._pool: ShardPool | None = None
        if workers == 0:
            self._catalog = build_catalog(spec)
        else:
            # ShardPool construction is all-or-nothing: a later shard
            # failing to start shuts the earlier workers down instead of
            # leaking them (close() is unreachable on a half-built
            # server).
            self._pool = ShardPool(
                _init_worker,
                [
                    (
                        replace(
                            spec,
                            documents=tuple(
                                doc
                                for doc in spec.documents
                                if self._shard_of[doc.doc_id] == shard_index
                            ),
                        ),
                    )
                    for shard_index in range(workers)
                ],
                fault_policy=fault_policy,
            )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _validate(self, doc_id: str) -> None:
        if doc_id not in self._known:
            raise UnknownDocumentError(
                f"unknown document {doc_id!r} (spec holds: "
                f"{sorted(self._known)})"
            )

    def serve_requests(
        self,
        requests: Sequence[tuple[str, "str | Pattern"]],
        batch_size: int = 32,
    ) -> CatalogServeResult:
        """Answer a request sequence, sharded into per-document batches.

        Requests are cut into consecutive windows of ``batch_size``
        (preserving arrival order, like the async ``serve`` loop), each
        window is grouped per document, and every group becomes one unit
        of work — answered inline, or submitted to the pool where groups
        run concurrently.  Answers scatter back in request order as
        preorder indexes.
        """
        if self._closed:
            raise CatalogError("CatalogServer is closed")
        if batch_size < 1:
            raise CatalogError("batch_size must be >= 1")
        normalized: list[tuple[str, str]] = []
        for doc_id, query in requests:
            self._validate(doc_id)
            xpath = query if isinstance(query, str) else to_xpath(query)
            normalized.append((doc_id, xpath))

        result = CatalogServeResult(
            answer_ids=[[] for _ in normalized],
            plan_kinds=[""] * len(normalized),
            served=len(normalized),
        )
        t0 = time.perf_counter()
        pending: list[tuple[Future, str, list[int]]] = []
        for start in range(0, len(normalized), batch_size):
            window = normalized[start : start + batch_size]
            result.batches += 1
            grouped: dict[str, list[int]] = {}
            for offset, (doc_id, _) in enumerate(window):
                grouped.setdefault(doc_id, []).append(start + offset)
            for doc_id, indexes in grouped.items():
                result.by_document[doc_id] = (
                    result.by_document.get(doc_id, 0) + len(indexes)
                )
                self._note_load(doc_id, len(indexes))
                xpaths = [normalized[index][1] for index in indexes]
                if self._pool is not None:
                    future = self._pool.submit(
                        self._shard_of[doc_id], _serve_in_worker, doc_id, xpaths
                    )
                    pending.append((future, doc_id, indexes))
                else:
                    assert self._catalog is not None
                    ids, kinds = self._serve_inline(doc_id, xpaths)
                    self._scatter(result, indexes, ids, kinds)
        for future, doc_id, indexes in pending:
            # Bounded wait: a dead or wedged worker must surface as a
            # typed error, not hang this caller forever (the pre-PR-8
            # pool path blocked indefinitely on a never-completing
            # future).
            try:
                ids, kinds = future.result(timeout=self.result_timeout)
            except FutureTimeoutError:
                raise RequestTimeout(
                    f"shard worker for {doc_id!r} gave no result within "
                    f"{self.result_timeout}s"
                ) from None
            except BrokenProcessPool as exc:
                raise ShardCrashError(
                    f"shard worker for {doc_id!r} died mid-batch: {exc}"
                ) from exc
            self._scatter(result, indexes, ids, kinds)
        result.elapsed_seconds = time.perf_counter() - t0
        return result

    def _serve_inline(
        self, doc_id: str, xpaths: list[str]
    ) -> tuple[list[list[int]], list[str]]:
        assert self._catalog is not None
        queries = [parse_pattern(x) for x in xpaths]
        batch = self._catalog.answer_many(doc_id, queries)
        ids = [
            self._catalog.node_ids(doc_id, answer) for answer in batch.answers
        ]
        return ids, [plan.kind for plan in batch.plans]

    def _degraded_inline(
        self, doc_id: str, xpaths: list[str]
    ) -> tuple[list[list[int]], list[str]]:
        """Last rung of the failure ladder: serve from an in-process
        catalog rebuilt from the spec (built lazily on first degrade,
        then kept warm for subsequent degraded batches)."""
        if self._fallback is None:
            self._fallback = build_catalog(self.spec)
        queries = [parse_pattern(x) for x in xpaths]
        batch = self._fallback.answer_many(doc_id, queries)
        ids = [
            self._fallback.node_ids(doc_id, answer)
            for answer in batch.answers
        ]
        return ids, [plan.kind for plan in batch.plans]

    # ------------------------------------------------------------------
    # Async front end
    # ------------------------------------------------------------------
    def serve(
        self,
        *,
        max_pending: int = 256,
        batch_size: int = 32,
        overflow: str = "wait",
        default_timeout: float | None = None,
        clock: Callable[[], float] | None = None,
        replica_set: "ReplicaSet | None" = None,
    ) -> "AsyncFrontEnd":
        """Build the async serving front end over this server.

        Returns an :class:`~repro.catalog.serving.AsyncFrontEnd` — a
        bounded admission queue (``max_pending``; the ``overflow``
        policy is ``"wait"`` for backpressure or ``"reject"`` for
        :class:`~repro.errors.AdmissionRejected`), per-document
        round-robin fairness, per-request deadlines against ``clock``
        (injectable; defaults to ``time.monotonic``) and graceful
        drain on close.  Use as an async context manager::

            async with server.serve(max_pending=64) as front:
                ids = await front.request("doc-0", "a/b")

        The front end serves through this server's pool (or inline
        catalog) — close the front end before closing the server.

        With ``replica_set`` (a :class:`~repro.catalog.replication.
        ReplicaSet`), reads dispatch through the replicated tier
        instead: round-robin across healthy replicas with the
        crash→evict→sibling→writer-inline ladder (the writer side of
        the set still owns advise/materialize/invalidate).  The set's
        lifetime belongs to the caller — close the front end first.
        """
        if self._closed:
            raise CatalogError("CatalogServer is closed")
        from .serving import AsyncFrontEnd  # late: import cycle

        return AsyncFrontEnd(
            self,
            max_pending=max_pending,
            batch_size=batch_size,
            overflow=overflow,
            default_timeout=default_timeout,
            clock=clock,
            replica_set=replica_set,
        )

    @staticmethod
    def _scatter(
        result: CatalogServeResult,
        indexes: list[int],
        ids: list[list[int]],
        kinds: list[str],
    ) -> None:
        for position, index in enumerate(indexes):
            result.answer_ids[index] = ids[position]
            result.plan_kinds[index] = kinds[position]

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def _note_load(self, doc_id: str, count: int) -> None:
        """Accumulate per-document throughput (both serving paths)."""
        self._doc_load[doc_id] = self._doc_load.get(doc_id, 0) + count

    def stats(self) -> dict:
        """Cumulative load counters: per shard and per document.

        ``shard_load`` aggregates every request dispatched so far by
        the document's affine shard; ``document_load`` keeps the
        per-document breakdown.  Both accumulate across
        :meth:`serve_requests` calls *and* async front-end dispatches —
        the raw signal hot-document rebalancing will act on.
        """
        shard_load: dict[int, int] = {}
        for doc_id, count in self._doc_load.items():
            shard = self._shard_of[doc_id]
            shard_load[shard] = shard_load.get(shard, 0) + count
        return {
            "requests_served": sum(self._doc_load.values()),
            "shard_load": dict(sorted(shard_load.items())),
            "document_load": dict(sorted(self._doc_load.items())),
        }

    def rebalance_hint(self, top: int = 3) -> list[tuple[int, str, int]]:
        """The most-loaded ``(shard, document, requests)`` triples.

        Rebalancing groundwork only — no live migration yet.  Sorted by
        descending load (ties broken by document id for determinism);
        an operator (or a future rebalancer) moves the top documents
        off their shards first.
        """
        ranked = sorted(
            self._doc_load.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (self._shard_of[doc_id], doc_id, count)
            for doc_id, count in ranked[:top]
        ]

    def counters(self) -> dict:
        """The inline catalog's deterministic counters.

        Only meaningful in inline mode — worker processes keep their
        counters in their own address space, which is exactly why the
        deterministic mode exists.
        """
        if self._catalog is None:
            raise CatalogError(
                "counters() requires the deterministic inline mode "
                "(workers=0); pool workers keep theirs per-process"
            )
        return self._catalog.counters()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._catalog is not None:
            self._catalog.close()
            self._catalog = None
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None

    def __enter__(self) -> "CatalogServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
