"""The async serving tier: admission control, fairness, deadlines.

ROADMAP item 3's front end, built over the existing document-affine
shard pool (:class:`~repro.catalog.server.CatalogServer`): one bounded
request queue of ``(doc_id, query, future)`` between any number of
client coroutines and the serving machinery.  The pieces:

* **Bounded admission** — at most ``max_pending`` requests queued at
  once.  Under overload the ``overflow`` policy decides: ``"wait"``
  makes :meth:`AsyncFrontEnd.submit` *await* capacity (backpressure —
  the producer slows to the server's pace), ``"reject"`` raises
  :class:`~repro.errors.AdmissionRejected` immediately (shed — the
  client backs off).  Nothing is ever silently dropped.
* **Per-document fairness** — admitted requests land in per-document
  subqueues; the drain loop visits documents round-robin, dispatching
  at most one ``batch_size`` batch per visit, so a hot document's
  backlog cannot starve every other document's traffic.
* **Deadlines and shedding** — each request may carry a deadline
  (absolute, against the injected ``clock``).  A request whose deadline
  has passed when the drain loop reaches it is *shed*: its future gets
  :class:`~repro.errors.RequestTimeout` and no serving work runs on it.
  Clocks are injectable (:class:`~repro.faults.VirtualClock`), so
  deadline behavior tests deterministically — no sleeps.
* **Failure ladder** — a batch whose shard died
  (:class:`~repro.errors.ShardCrashError` / ``BrokenProcessPool``) is
  retried **once** on a restarted shard; a second death degrades the
  batch to an inline catalog rebuilt from the spec in-process.  Every
  rung is counted (:class:`ServeStats`), and the fault-injection seam
  (:mod:`repro.faults`) drives each rung deterministically in tests.
* **Graceful drain** — :meth:`AsyncFrontEnd.close` stops admission,
  serves (or sheds, per deadline) everything already queued, and
  resolves every outstanding future before returning.  No future is
  ever left pending.

Answers are **sorted preorder indexes**, the same process-independent
encoding :meth:`CatalogServer.serve_requests
<repro.catalog.server.CatalogServer.serve_requests>` returns — for any
interleaving of admits, timeouts and faults, a surviving request's
answer is bit-identical to the synchronous inline path's (the property
suite in ``tests/test_serve_async.py`` asserts exactly that).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from ..errors import (
    AdmissionRejected,
    RequestTimeout,
    ServingError,
    ShardCrashError,
)
from ..obs import adopt, current_registry, current_tracer, span
from ..obs.tracing import OpenSpan
from ..patterns.ast import Pattern
from ..patterns.serialize import to_xpath

if TYPE_CHECKING:  # import cycle: server builds front ends
    from .replication import ReplicaSet
    from .server import CatalogServer

__all__ = ["AsyncFrontEnd", "ServeStats"]

#: Overflow policies: await capacity, or reject at the door.
OVERFLOW_POLICIES = ("wait", "reject")


@dataclass
class ServeStats:
    """Deterministic counters for one front end's lifetime.

    With the inline catalog (``workers=0``) and an injected virtual
    clock, every field is bit-for-bit reproducible for a fixed call
    sequence — the regression contract the fault-injection suite leans
    on.  ``dispatch_log`` records ``(doc_id, dispatched, shed)`` per
    drain-loop visit, so fairness (round-robin visit order) is
    assertable, not just hoped for.  The log is bounded: only the most
    recent ``dispatch_log_cap`` visits are kept (older entries are
    dropped from the front and counted in ``dispatch_log_evictions``),
    so long soaks don't grow memory one tuple per drain cycle forever.
    """

    admitted: int = 0
    rejected: int = 0
    served: int = 0
    shed_deadline: int = 0
    failed: int = 0
    batches: int = 0
    retries: int = 0
    shard_crashes: int = 0
    inline_degrades: int = 0
    max_queue_depth: int = 0
    dispatch_log: list[tuple[str, int, int]] = field(default_factory=list)
    dispatch_log_cap: int = 1024
    dispatch_log_evictions: int = 0

    def note_dispatch(self, doc_id: str, dispatched: int, shed: int) -> None:
        """Append one drain-loop visit, evicting from the front past
        ``dispatch_log_cap`` (evictions are counted, never silent)."""
        self.dispatch_log.append((doc_id, dispatched, shed))
        overflow = len(self.dispatch_log) - self.dispatch_log_cap
        if overflow > 0:
            del self.dispatch_log[:overflow]
            self.dispatch_log_evictions += overflow

    def snapshot(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "served": self.served,
            "shed_deadline": self.shed_deadline,
            "failed": self.failed,
            "batches": self.batches,
            "retries": self.retries,
            "shard_crashes": self.shard_crashes,
            "inline_degrades": self.inline_degrades,
            "max_queue_depth": self.max_queue_depth,
            "dispatch_log": [list(entry) for entry in self.dispatch_log],
            "dispatch_log_evictions": self.dispatch_log_evictions,
        }


@dataclass
class _Request:
    """One admitted request, queued until its document's turn."""

    doc_id: str
    xpath: str
    future: asyncio.Future
    deadline: float | None
    span: OpenSpan | None = None


def _finish_request_span(open_span: OpenSpan, future: asyncio.Future) -> None:
    """Close a request's root span once its future resolves.

    Runs as a future done-callback, i.e. strictly after the dispatch
    batch's spans closed — which is what keeps every tree well-nested
    (admission root opens first, closes last).
    """
    if future.cancelled():
        open_span.close(outcome="cancelled")
        return
    exc = future.exception()
    if exc is None:
        open_span.close(outcome="served")
    elif isinstance(exc, RequestTimeout):
        open_span.close(outcome="shed")
    else:
        open_span.close(outcome="failed", error=type(exc).__name__)


class AsyncFrontEnd:
    """Async admission + fairness + deadlines over a catalog server.

    Built by :meth:`CatalogServer.serve
    <repro.catalog.server.CatalogServer.serve>`; use as an async
    context manager (entering starts the drain loop, exiting drains and
    closes).  Not thread-safe — one event loop owns it, like any
    asyncio object.
    """

    def __init__(
        self,
        server: "CatalogServer",
        *,
        max_pending: int = 256,
        batch_size: int = 32,
        overflow: str = "wait",
        default_timeout: float | None = None,
        clock: Callable[[], float] | None = None,
        replica_set: "ReplicaSet | None" = None,
    ) -> None:
        if max_pending < 1:
            raise ServingError("max_pending must be >= 1")
        if batch_size < 1:
            raise ServingError("batch_size must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ServingError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow!r}"
            )
        self._server = server
        self._max_pending = max_pending
        self._batch_size = batch_size
        self._overflow = overflow
        self._default_timeout = default_timeout
        self._clock = clock if clock is not None else time.monotonic
        self._replicas = replica_set
        self.stats = ServeStats()

        self._queues: dict[str, deque[_Request]] = {}
        self._rr: deque[str] = deque()  # round-robin order, nonempty docs
        self._pending = 0
        self._inflight: set[asyncio.Task] = set()
        self._task: asyncio.Task | None = None
        self._wakeup: asyncio.Event | None = None
        self._space: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_running(self) -> None:
        if self._closed:
            raise ServingError("front end is closed")
        if self._task is None:
            self._wakeup = asyncio.Event()
            self._space = asyncio.Event()
            self._space.set()
            self._idle = asyncio.Event()
            self._idle.set()
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def __aenter__(self) -> "AsyncFrontEnd":
        self._ensure_running()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        """Graceful drain: serve/shed everything queued, then stop.

        Every future handed out by :meth:`submit` is resolved (answer,
        shed, or typed failure) before this returns; later submits
        raise :class:`~repro.errors.ServingError`.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self._task is not None:
            self._draining = True
            assert self._wakeup is not None
            self._wakeup.set()
            await self._task
            if self._inflight:
                await asyncio.gather(*tuple(self._inflight))
            self._task = None
        registry = current_registry()
        if registry is not None:
            # Lifetime stats feed the registry exactly once, at drain —
            # the snapshots themselves stay the bit-identical source of
            # truth; the registry is the exportable view.
            registry.publish("serve", self.stats.snapshot())
            if self._replicas is not None:
                registry.publish(
                    "replication", self._replicas.stats_snapshot()
                )

    async def drain(self) -> None:
        """Wait until nothing is queued or in flight (without closing)."""
        if self._idle is not None:
            await self._idle.wait()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(
        self,
        doc_id: str,
        query: "str | Pattern",
        *,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> asyncio.Future:
        """Admit one request; returns the future carrying its answer.

        ``timeout`` is relative seconds (against the injected clock);
        ``deadline`` is an absolute clock value — pass at most one.
        With neither, the front end's ``default_timeout`` applies (and
        ``None`` means no deadline at all).  Admission awaits capacity
        under the ``"wait"`` overflow policy and raises
        :class:`~repro.errors.AdmissionRejected` under ``"reject"``.
        A request already past its deadline is shed at the door: the
        returned future carries :class:`~repro.errors.RequestTimeout`.
        """
        self._ensure_running()
        if timeout is not None and deadline is not None:
            raise ServingError("pass timeout or deadline, not both")
        self._server._validate(doc_id)
        xpath = query if isinstance(query, str) else to_xpath(query)
        if timeout is None and deadline is None:
            timeout = self._default_timeout
        if deadline is None and timeout is not None:
            deadline = self._clock() + timeout

        assert self._space is not None and self._wakeup is not None
        while self._pending >= self._max_pending:
            if self._closed:
                raise ServingError("front end is closed")
            if self._overflow == "reject":
                self.stats.rejected += 1
                raise AdmissionRejected(
                    f"admission queue full ({self._max_pending} pending); "
                    "back off and retry"
                )
            self._space.clear()
            await self._space.wait()
        if self._closed:
            raise ServingError("front end is closed")

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        request = _Request(doc_id, xpath, future, deadline)
        if deadline is not None and self._clock() >= deadline:
            # Dead on arrival: shed without consuming queue capacity.
            self.stats.shed_deadline += 1
            future.set_exception(
                RequestTimeout(
                    f"deadline passed before admission for {xpath!r} "
                    f"on {doc_id!r}"
                )
            )
            return future
        queue = self._queues.get(doc_id)
        if queue is None:
            queue = self._queues[doc_id] = deque()
        if not queue:
            self._rr.append(doc_id)
        queue.append(request)
        self._pending += 1
        self.stats.admitted += 1
        tracer = current_tracer()
        if tracer is not None:
            # The trace is minted at admission: one root per admitted
            # request, closed by done-callback when its future resolves.
            request.span = tracer.start_root(
                "serve.request", doc_id=doc_id, xpath=xpath
            )
            future.add_done_callback(
                lambda fut, s=request.span: _finish_request_span(s, fut)
            )
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self._pending
        )
        assert self._idle is not None
        self._idle.clear()
        self._wakeup.set()
        return future

    async def request(
        self,
        doc_id: str,
        query: "str | Pattern",
        *,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> list[int]:
        """Submit and await: the answer's sorted preorder indexes."""
        future = await self.submit(
            doc_id, query, timeout=timeout, deadline=deadline
        )
        return await future

    def counters(self) -> dict:
        """The stats snapshot (deterministic in inline mode).

        With a replica set attached, a ``replication`` section carries
        the tier's own deterministic counters (shipping, failover,
        per-replica state).
        """
        data = self.stats.snapshot()
        if self._replicas is not None:
            data["replication"] = self._replicas.stats_snapshot()
        return data

    # ------------------------------------------------------------------
    # Drain loop
    # ------------------------------------------------------------------
    def _next_batch(self) -> tuple[str, list[_Request]] | None:
        """Round-robin: up to ``batch_size`` requests of the next doc."""
        if not self._rr:
            return None
        doc_id = self._rr.popleft()
        queue = self._queues[doc_id]
        batch = [
            queue.popleft()
            for _ in range(min(self._batch_size, len(queue)))
        ]
        if queue:
            self._rr.append(doc_id)  # back of the line: fairness
        self._pending -= len(batch)
        assert self._space is not None
        self._space.set()
        return doc_id, batch

    def _maybe_idle(self) -> None:
        if self._pending == 0 and not self._inflight:
            assert self._idle is not None
            self._idle.set()

    async def _run(self) -> None:
        assert self._wakeup is not None
        while True:
            if self._pending == 0:
                self._maybe_idle()
                if self._draining:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            pulled = self._next_batch()
            if pulled is None:
                continue
            doc_id, batch = pulled
            now = self._clock()
            live: list[_Request] = []
            shed = 0
            for req in batch:
                if req.deadline is not None and now >= req.deadline:
                    shed += 1
                    self.stats.shed_deadline += 1
                    if not req.future.done():
                        req.future.set_exception(
                            RequestTimeout(
                                f"deadline passed while queued for "
                                f"{req.xpath!r} on {req.doc_id!r}"
                            )
                        )
                else:
                    live.append(req)
            self.stats.batches += 1
            self.stats.note_dispatch(doc_id, len(live), shed)
            if live:
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(doc_id, live)
                )
                self._inflight.add(task)
                task.add_done_callback(self._on_dispatch_done)
            # Yield once per visit so producers (and dispatch tasks)
            # interleave with the drain loop even when execution is
            # fully synchronous inline work.
            await asyncio.sleep(0)

    def _on_dispatch_done(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        self._maybe_idle()

    # ------------------------------------------------------------------
    # Dispatch: execute one per-document batch, failure ladder included
    # ------------------------------------------------------------------
    async def _dispatch(self, doc_id: str, requests: list[_Request]) -> None:
        xpaths = [req.xpath for req in requests]
        # Adopt the member requests' admission roots as the open
        # parents: batch-level spans fan out into every member's trace.
        with adopt([req.span for req in requests]):
            with span(
                "serve.batch", doc_id=doc_id, size=len(requests)
            ) as scope:
                try:
                    ids, _kinds = await self._execute(doc_id, xpaths, scope)
                except asyncio.CancelledError:
                    for req in requests:
                        if not req.future.done():
                            req.future.cancel()
                    raise
                except Exception as exc:
                    scope.set(outcome="failed", error=type(exc).__name__)
                    self.stats.failed += len(requests)
                    for req in requests:
                        if not req.future.done():
                            req.future.set_exception(exc)
                    return
                scope.set(outcome="served")
                self.stats.served += len(requests)
                for req, answer in zip(requests, ids):
                    if not req.future.done():
                        req.future.set_result(answer)

    async def _execute(
        self, doc_id: str, xpaths: list[str], scope=None
    ) -> tuple[list[list[int]], list[str]]:
        """One batch through the shard pool, with retry-once + degrade.

        Ladder: submit → (shard died) restart + retry once → (died
        again) degrade to an inline catalog rebuilt from the spec.
        Inline mode consults the same fault policy, so every rung tests
        without worker processes.

        With a replica set attached, reads dispatch through its own
        ladder instead (crash → evict → sibling → writer-inline; see
        :meth:`ReplicaSet.execute
        <repro.catalog.replication.ReplicaSet.execute>`) — the batch
        still never fails for availability reasons, only injected
        ``error`` actions propagate.
        """
        server = self._server
        server._note_load(doc_id, len(xpaths))
        if scope is None:
            scope = span("serve.unparented")  # no-op: no open parents
        if self._replicas is not None:
            scope.set(source="replica")
            return self._replicas.execute(doc_id, xpaths)
        if server._pool is None:
            scope.set(source="inline")
            try:
                return self._inline_with_faults(server, doc_id, xpaths)
            except ShardCrashError:
                # Inline "shard": retry-once means re-executing.
                self.stats.shard_crashes += 1
                self.stats.retries += 1
                scope.set(retries=1)
                try:
                    return self._inline_with_faults(server, doc_id, xpaths)
                except ShardCrashError:
                    # Count the second crash too (parity with the pool
                    # ladder); with no worker to degrade *from*, inline
                    # mode surfaces it typed instead.
                    self.stats.shard_crashes += 1
                    raise
        from .server import _serve_in_worker  # late: import cycle

        shard = server._shard_of[doc_id]
        scope.set(source="pool", shard=shard)
        try:
            return await asyncio.wrap_future(
                server._pool.submit(shard, _serve_in_worker, doc_id, xpaths)
            )
        except (ShardCrashError, BrokenProcessPool):
            self.stats.shard_crashes += 1
            self.stats.retries += 1
            scope.set(retries=1)
            try:
                server._pool.restart(shard)
                return await asyncio.wrap_future(
                    server._pool.submit(
                        shard, _serve_in_worker, doc_id, xpaths
                    )
                )
            except (ShardCrashError, BrokenProcessPool):
                self.stats.shard_crashes += 1
                self.stats.inline_degrades += 1
                scope.set(source="degraded_inline")
                return server._degraded_inline(doc_id, xpaths)

    @staticmethod
    def _inline_with_faults(
        server: "CatalogServer", doc_id: str, xpaths: list[str]
    ) -> tuple[list[list[int]], list[str]]:
        """Inline execution behind the same fault seam as the pool."""
        policy = server._fault_policy
        if policy is not None:
            action = policy.on_submit(server._shard_of[doc_id])
            if action is not None:
                if action.kind in ("crash", "hang"):
                    raise ShardCrashError(
                        f"inline serve for {doc_id!r} crashed (injected)"
                    )
                if action.kind == "error":
                    assert action.exc is not None
                    raise action.exc
                # "delay" advanced the policy's clock; proceed.
        return server._serve_inline(doc_id, xpaths)
