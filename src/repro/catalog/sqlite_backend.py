"""SQLite storage backend for view catalogs.

The snapshot log (:class:`~repro.views.persist.SnapshotBackend`) is a
single-writer, whole-file format: perfect for one store, wrong for a
*catalog* — many documents behind one front end, warm-started by several
processes at once.  :class:`SqliteBackend` implements the same
:class:`~repro.views.persist.StoreBackend` protocol on SQLite in WAL
mode, which gives

* **concurrent readers** — WAL readers never block each other (nor the
  occasional writer), so every worker process of a
  :class:`~repro.catalog.server.CatalogServer` can open the same
  database and warm-start independently;
* **keyed storage** — one ``materializations`` table keyed
  ``(document digest, pattern digest)``, exactly the protocol's key, so
  any number of documents share one file without namespace games;
* **selection records** — a ``selections`` table keyed
  ``(document digest, workload fingerprint)`` persisting the view
  advisor's chosen view set.  Re-advising is the dominant warm-start
  cost (it is containment-heavy); loading the selection skips it
  entirely, and the fingerprint binds the advisor's inputs so a changed
  workload can never reuse a stale selection.

Durability is SQLite's: committed transactions survive the process.  A
corrupt or missing row degrades to re-evaluation through the protocol's
miss path, the same contract as every other backend.  SQLite *I/O
errors* degrade the same way (PR 8): a failing read is a miss, a
failing write is skipped — serving stays up, only durability is lost,
and ``stats.io_errors`` counts every such degradation.  The
``fault_policy`` hook (:mod:`repro.faults`) injects exactly those
errors deterministically so the degrade path is testable without a
breaking disk.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..errors import CatalogError
from ..faults import FaultPolicy
from ..views.persist import BackendStats

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS materializations (
    doc   TEXT NOT NULL,
    pat   TEXT NOT NULL,
    xpath TEXT NOT NULL DEFAULT '',
    ids   TEXT NOT NULL,
    updated_at REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (doc, pat)
);
CREATE TABLE IF NOT EXISTS selections (
    doc     TEXT NOT NULL,
    fp      TEXT NOT NULL,
    payload TEXT NOT NULL,
    updated_at REAL NOT NULL DEFAULT 0,
    PRIMARY KEY (doc, fp)
);
"""

#: Tables carrying the ``updated_at`` stamp (pre-PR-9 databases are
#: migrated in place with a default of 0 — epoch-old, so TTL pruning
#: treats legacy rows as maximally stale).
_STAMPED_TABLES = ("materializations", "selections")


class SqliteBackend:
    """A :class:`~repro.views.persist.StoreBackend` over SQLite (WAL mode).

    Parameters
    ----------
    path:
        Database file; created (with parents) if missing.
    timeout:
        Seconds a write waits on a locked database before giving up —
        writer collisions are expected when several cold workers race to
        populate the same catalog, and last-write-wins is correct here
        (both compute identical rows from identical inputs).

    Thread/process notes: WAL readers are fully concurrent; each
    process (and preferably each thread) should open its *own*
    ``SqliteBackend`` on the shared path — connections are cheap, and
    the tests exercise exactly that pattern.  The connection is created
    with ``check_same_thread=False`` so a backend may also be handed
    between threads that serialize access themselves.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    durable = True

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float = 30.0,
        fault_policy: FaultPolicy | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.stats = BackendStats()
        self.fault_policy = fault_policy
        self._clock: Callable[[], float] = clock if clock is not None else time.time
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        for table in _STAMPED_TABLES:
            cols = {
                row[1]
                for row in self._conn.execute(f"PRAGMA table_info({table})")
            }
            if "updated_at" not in cols:
                self._conn.execute(
                    f"ALTER TABLE {table} "
                    "ADD COLUMN updated_at REAL NOT NULL DEFAULT 0"
                )
        self._conn.commit()

    def _cursor(self) -> sqlite3.Connection:
        if self._conn is None:
            raise CatalogError(f"SqliteBackend at {self.path} is closed")
        return self._conn

    def _maybe_fault(self, op: str) -> None:
        """Raise the injected fault for ``op``, if the policy scripts one.

        Raised *inside* each operation's protected region, so injected
        faults exercise exactly the degrade path a real
        ``sqlite3.Error`` would.  Only ``error`` actions raise here
        (``delay`` advances the policy's clock as a side effect; the
        crash/hang kinds are shard-pool concepts).
        """
        if self.fault_policy is None:
            return
        action = self.fault_policy.on_backend(op)
        if action is not None and action.kind == "error":
            assert action.exc is not None
            raise action.exc

    # ------------------------------------------------------------------
    # Materializations (StoreBackend protocol)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        row = self._cursor().execute(
            "SELECT COUNT(*) FROM materializations"
        ).fetchone()
        return int(row[0])

    def load(self, doc_digest: str, pat_digest: str) -> list[int] | None:
        try:
            self._maybe_fault("load")
            row = self._cursor().execute(
                "SELECT ids FROM materializations WHERE doc = ? AND pat = ?",
                (doc_digest, pat_digest),
            ).fetchone()
        except sqlite3.Error:
            # An I/O-layer failure degrades to a miss: the store
            # re-evaluates, serving proceeds, the counter records it.
            self.stats.io_errors += 1
            self.stats.misses += 1
            return None
        if row is None:
            self.stats.misses += 1
            return None
        try:
            ids = json.loads(row[0])
        except ValueError:
            ids = None
        if not isinstance(ids, list) or not all(
            isinstance(i, int) for i in ids
        ):
            # A corrupt row is dropped and reported as a miss — the
            # store re-evaluates and overwrites it, like every backend.
            self._cursor().execute(
                "DELETE FROM materializations WHERE doc = ? AND pat = ?",
                (doc_digest, pat_digest),
            )
            self._cursor().commit()
            self.stats.corrupt_records += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return ids

    def save(
        self,
        doc_digest: str,
        pat_digest: str,
        node_ids: Sequence[int],
        *,
        xpath: str = "",
    ) -> None:
        try:
            self._maybe_fault("save")
            conn = self._cursor()
            conn.execute(
                "INSERT OR REPLACE INTO materializations "
                "(doc, pat, xpath, ids, updated_at) VALUES (?, ?, ?, ?, ?)",
                (
                    doc_digest,
                    pat_digest,
                    xpath,
                    json.dumps(sorted(node_ids)),
                    self._clock(),
                ),
            )
            conn.commit()
        except sqlite3.Error:
            # A failed write loses durability, never availability: the
            # in-memory materialization is still served.
            self.stats.io_errors += 1
            return
        self.stats.saves += 1

    def invalidate_document(self, doc_digest: str) -> None:
        conn = self._cursor()
        conn.execute(
            "DELETE FROM materializations WHERE doc = ?", (doc_digest,)
        )
        conn.execute("DELETE FROM selections WHERE doc = ?", (doc_digest,))
        conn.commit()
        self.stats.invalidations += 1

    def reject_loaded(self, doc_digest: str, pat_digest: str) -> None:
        conn = self._cursor()
        conn.execute(
            "DELETE FROM materializations WHERE doc = ? AND pat = ?",
            (doc_digest, pat_digest),
        )
        conn.commit()
        self.stats.hits -= 1
        self.stats.misses += 1
        self.stats.corrupt_records += 1

    # ------------------------------------------------------------------
    # Selection records
    # ------------------------------------------------------------------
    def load_selection(self, doc_digest: str, fingerprint: str) -> dict | None:
        try:
            self._maybe_fault("load_selection")
            row = self._cursor().execute(
                "SELECT payload FROM selections WHERE doc = ? AND fp = ?",
                (doc_digest, fingerprint),
            ).fetchone()
        except sqlite3.Error:
            self.stats.io_errors += 1
            self.stats.selection_misses += 1
            return None
        if row is None:
            self.stats.selection_misses += 1
            return None
        try:
            payload = json.loads(row[0])
        except ValueError:
            payload = None
        if not isinstance(payload, dict):
            self._cursor().execute(
                "DELETE FROM selections WHERE doc = ? AND fp = ?",
                (doc_digest, fingerprint),
            )
            self._cursor().commit()
            self.stats.corrupt_records += 1
            self.stats.selection_misses += 1
            return None
        self.stats.selection_hits += 1
        return payload

    def save_selection(
        self, doc_digest: str, fingerprint: str, payload: dict
    ) -> None:
        try:
            self._maybe_fault("save_selection")
            conn = self._cursor()
            conn.execute(
                "INSERT OR REPLACE INTO selections "
                "(doc, fp, payload, updated_at) VALUES (?, ?, ?, ?)",
                (
                    doc_digest,
                    fingerprint,
                    json.dumps(payload, sort_keys=True),
                    self._clock(),
                ),
            )
            conn.commit()
        except sqlite3.Error:
            self.stats.io_errors += 1
            return
        self.stats.selection_saves += 1

    # ------------------------------------------------------------------
    # Pruning (PR 9)
    # ------------------------------------------------------------------
    def prune(
        self,
        live_digests: Iterable[str],
        *,
        ttl_seconds: float = 0.0,
        clock: Callable[[], float] | None = None,
    ) -> int:
        """Delete rows whose document digest is no longer registered.

        A catalog database outlives any one catalog: documents are
        re-registered across restarts, edited documents get new digests,
        and the rows keyed by the old digests become garbage no code
        path will ever load again.  ``prune`` deletes every row (in both
        tables) whose ``doc`` digest is *not* in ``live_digests`` and
        whose ``updated_at`` stamp is at least ``ttl_seconds`` old by
        ``clock`` (default: the backend's own clock) — the TTL keeps a
        row another process wrote moments ago from being collected
        before its document is registered here.

        Live rows are never touched, whatever their age.  Returns the
        number of rows deleted and adds it to ``stats.evicted_rows``.
        An injected ``prune`` fault or a real ``sqlite3.Error`` degrades
        like every other backend op: nothing is deleted, ``io_errors``
        is incremented, and 0 is returned — pruning is maintenance, so
        a failed prune costs disk, never correctness.
        """
        live = sorted(set(live_digests))
        now = (clock if clock is not None else self._clock)()
        cutoff = now - ttl_seconds
        evicted = 0
        try:
            self._maybe_fault("prune")
            conn = self._cursor()
            placeholders = ", ".join("?" for _ in live)
            not_live = f"doc NOT IN ({placeholders})" if live else "1 = 1"
            for table in _STAMPED_TABLES:
                cur = conn.execute(
                    f"DELETE FROM {table} "
                    f"WHERE {not_live} AND updated_at <= ?",
                    (*live, cutoff),
                )
                evicted += cur.rowcount
            conn.commit()
        except sqlite3.Error:
            self.stats.io_errors += 1
            return 0
        self.stats.evicted_rows += evicted
        return evicted

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
