"""Contained and union rewritings (paper §6, open problems 3 and 5).

The paper's conclusions list two extensions of the equivalent-rewriting
problem it leaves open:

* **maximally contained rewritings** (problem 3): patterns ``R`` with
  ``R ∘ V ⊑ P`` — sound but possibly incomplete view-based answers —
  maximal under containment;
* **rewriting using multiple views** (problem 5): combining several
  views to answer ``P``.

This module implements *bounded* versions of both, on top of the
library's complete containment machinery:

* :func:`union_contains` decides ``P ⊑ Q1 ∪ … ∪ Qn`` by the canonical-
  model method — for every canonical model of ``P`` with distinguished
  output ``o``, *some* ``Qi`` must produce ``o``.  The expansion bound is
  the maximum over the union members, so the standard pumping argument
  still applies.
* :func:`contained_rewritings` searches the Prop 3.4 candidate space for
  rewritings with ``R ∘ V ⊑ P`` and keeps the maximal ones (within the
  searched space — the general problem is open, and this is documented
  as a bounded procedure).
* :func:`find_union_rewriting` combines per-view contained rewritings
  into an **equivalent union rewriting**: a set ``{(Ri, Vi)}`` with
  every ``Ri ∘ Vi ⊑ P`` and ``P ⊑ ∪ Ri ∘ Vi``, so that
  ``∪ Ri(Vi(t)) = P(t)`` for all ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import RewriteBudgetError
from ..patterns.ast import Pattern
from .canonical import CanonicalEngine, count_canonical_models
from .composition import compose
from .containment import contains, expansion_bound
from .decide import enumerate_candidates

__all__ = [
    "union_contains",
    "contained_rewritings",
    "UnionRewriting",
    "find_union_rewriting",
]


def union_contains(
    pattern: Pattern,
    union: Sequence[Pattern],
    max_models: int | None = None,
) -> bool:
    """Decide ``pattern ⊑ Q1 ∪ … ∪ Qn`` (output-wise, over all trees).

    Each canonical model of ``pattern`` (with expansions bounded by the
    *largest* member bound) must have its distinguished output produced
    by at least one union member.  With a single member this coincides
    with :func:`repro.core.containment.contains`.

    Models are enumerated incrementally (Gray order, one ⊥-chain splice
    per step) by :class:`repro.core.canonical.CanonicalEngine`, and the
    per-model setup is shared across *all* union members.
    """
    members = [q for q in union if not q.is_empty]
    if pattern.is_empty:
        return True
    if not members:
        return False
    bound = max(expansion_bound(q) for q in members)
    total = count_canonical_models(pattern, bound)
    if max_models is not None and total > max_models:
        raise RewriteBudgetError(
            f"union containment needs {total} canonical models "
            f"(budget {max_models})"
        )
    engine = CanonicalEngine(pattern, bound)
    for state in engine.models():
        if not any(state.embeds(q) for q in members):
            return False
    return True


def contained_rewritings(
    query: Pattern,
    view: Pattern,
    max_extra_nodes: int = 1,
    max_candidates: int | None = 2000,
) -> list[Pattern]:
    """Maximal contained rewritings within the bounded candidate space.

    Returns patterns ``R`` with ``Υ ≠ R ∘ V ⊑ P``, keeping only those
    maximal under containment of their compositions (a bounded take on
    the paper's open problem 3; candidates follow the Prop 3.1 shape, so
    genuinely exotic contained rewritings outside that space are not
    searched).
    """
    if query.is_empty or view.is_empty or view.depth > query.depth:
        return []
    found: list[tuple[Pattern, Pattern]] = []  # (R, R ∘ V)
    try:
        for candidate in enumerate_candidates(
            query, view, max_extra_nodes=max_extra_nodes,
            max_candidates=max_candidates,
        ):
            composition = compose(candidate, view)
            if composition.is_empty:
                continue
            if contains(composition, query):
                found.append((candidate, composition))
    except RewriteBudgetError:
        pass
    # Keep maximal elements under containment of compositions.
    maximal: list[tuple[Pattern, Pattern]] = []
    for rewriting, composition in found:
        dominated = False
        for _, other in found:
            if other is composition:
                continue
            if contains(composition, other) and not contains(other, composition):
                dominated = True
                break
        if not dominated:
            maximal.append((rewriting, composition))
    # Deduplicate by composition equivalence, preferring small rewritings.
    result: list[Pattern] = []
    seen: list[Pattern] = []
    for rewriting, composition in sorted(maximal, key=lambda rc: rc[0].size()):
        if any(
            contains(composition, prev) and contains(prev, composition)
            for prev in seen
        ):
            continue
        seen.append(composition)
        result.append(rewriting)
    return result


@dataclass
class UnionRewriting:
    """An equivalent union rewriting: ``∪ Ri(Vi(t)) = P(t)`` for all t.

    Attributes
    ----------
    parts:
        ``(view name, rewriting)`` pairs; every composition is contained
        in the query and their union covers it.
    """

    parts: list[tuple[str, Pattern]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.parts)


def find_union_rewriting(
    query: Pattern,
    views: Sequence[tuple[str, Pattern]],
    max_extra_nodes: int = 1,
    max_candidates: int | None = 2000,
) -> UnionRewriting | None:
    """An equivalent union rewriting of ``query`` over several views.

    Collects maximal contained rewritings per view, then checks whether
    the union of their compositions covers the query (via
    :func:`union_contains`).  Returns None when the searched space does
    not cover ``query`` — a bounded procedure, per the open problem.

    A single-view equivalent rewriting appears as a one-part union.
    """
    if query.is_empty:
        return UnionRewriting(parts=[])
    parts: list[tuple[str, Pattern]] = []
    compositions: list[Pattern] = []
    for name, view in views:
        for rewriting in contained_rewritings(
            query, view, max_extra_nodes=max_extra_nodes,
            max_candidates=max_candidates,
        ):
            parts.append((name, rewriting))
            compositions.append(compose(rewriting, view))
    if not compositions:
        return None
    if not union_contains(query, compositions):
        return None
    # Greedy minimization: drop parts whose removal keeps coverage.
    index = 0
    while index < len(parts):
        trial = compositions[:index] + compositions[index + 1 :]
        if trial and union_contains(query, trial):
            del parts[index]
            del compositions[index]
        else:
            index += 1
    return UnionRewriting(parts=parts)
