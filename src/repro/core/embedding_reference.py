"""The seed ``set[TNode]``-based matching engine, kept as an oracle.

This module preserves the original (pre-bitset) dynamic program exactly
as it shipped in the seed: ``sat`` tables are Python sets of ``TNode``
objects and every canonical model is rebuilt from scratch.  It is **not**
used on any hot path — the production engine lives in
:mod:`repro.core.embedding` and :mod:`repro.core.canonical` — but it is
kept for two purposes:

* the Hypothesis equivalence suite (``tests/test_bitset_equivalence.py``)
  cross-validates the bitset engine against it on random pattern pairs
  across all four fragments, and
* the perf-guard benchmark (``benchmarks/bench_perf_guard.py``) measures
  the bitset engine's speedup against this implementation, which *is*
  the seed behaviour.

Do not optimize this module; its value is being the unoptimized baseline.
"""

from __future__ import annotations

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree

__all__ = ["ReferenceMatcher", "reference_evaluate", "reference_canonical_containment"]


def _label_ok(pnode: PNode, tnode: TNode) -> bool:
    return pnode.label == WILDCARD or pnode.label == tnode.label


class ReferenceMatcher:
    """The seed matcher: per-(pattern, tree) set-based ``sat`` tables."""

    def __init__(self, pattern: Pattern, tree: XMLTree | TNode):
        self.pattern = pattern
        self.tree_root = tree.root if isinstance(tree, XMLTree) else tree
        self._sat: dict[int, set[TNode]] = {}
        self._tree_post: list[TNode] = []
        self._partial_cache: dict[int, set[TNode]] = {}
        if not pattern.is_empty:
            self._tree_post = self._tree_postorder()
            self._compute_sat()

    def _postorder(self) -> list[PNode]:
        order: list[PNode] = []

        def rec(node: PNode) -> None:
            for _, child in node.edges:
                rec(child)
            order.append(node)

        rec(self.pattern.root)  # type: ignore[arg-type]
        return order

    def _compute_sat(self) -> None:
        tree_postorder = self._tree_post
        for pnode in self._postorder():
            satisfying: set[TNode] = set()
            below: dict[int, set[TNode]] = {}
            for axis, pchild in pnode.edges:
                if axis is Axis.DESCENDANT:
                    below[id(pchild)] = self._exists_below(
                        self._sat[id(pchild)], tree_postorder
                    )
            for tnode in tree_postorder:
                if not _label_ok(pnode, tnode):
                    continue
                ok = True
                for axis, pchild in pnode.edges:
                    child_sat = self._sat[id(pchild)]
                    if axis is Axis.CHILD:
                        if not any(u in child_sat for u in tnode.children):
                            ok = False
                            break
                    else:
                        if tnode not in below[id(pchild)]:
                            ok = False
                            break
                if ok:
                    satisfying.add(tnode)
            self._sat[id(pnode)] = satisfying

    def _tree_postorder(self) -> list[TNode]:
        order: list[TNode] = []

        def rec(node: TNode) -> None:
            for child in node.children:
                rec(child)
            order.append(node)

        rec(self.tree_root)
        return order

    @staticmethod
    def _exists_below(
        target: set[TNode], tree_postorder: list[TNode]
    ) -> set[TNode]:
        result: set[TNode] = set()
        for node in tree_postorder:
            if any(child in target or child in result for child in node.children):
                result.add(node)
        return result

    def has_embedding(self) -> bool:
        if self.pattern.is_empty:
            return False
        return self.tree_root in self._sat[id(self.pattern.root)]

    def has_weak_embedding(self) -> bool:
        if self.pattern.is_empty:
            return False
        return bool(self._sat[id(self.pattern.root)])

    def output_images(self, weak: bool = False) -> set[TNode]:
        if self.pattern.is_empty:
            return set()
        path = self.pattern.selection_path()
        axes = self.pattern.selection_axes()
        partial = [self._partial_sat(node) for node in path]

        if weak:
            frontier = set(partial[0])
        else:
            frontier = (
                {self.tree_root} if self.tree_root in partial[0] else set()
            )
        for axis, allowed in zip(axes, partial[1:]):
            if not frontier:
                break
            if axis is Axis.CHILD:
                next_frontier = {
                    u for v in frontier for u in v.children if u in allowed
                }
            else:
                next_frontier = self._descendants_of(frontier) & allowed
            frontier = next_frontier
        return set(frontier)

    def _partial_sat(self, sel_node: PNode) -> set[TNode]:
        cached = self._partial_cache.get(id(sel_node))
        if cached is not None:
            return cached
        on_path = set(map(id, self.pattern.selection_path()))
        tree_postorder = self._tree_post
        result: set[TNode] = set()
        branch_edges = [
            (axis, child)
            for axis, child in sel_node.edges
            if id(child) not in on_path
        ]
        below: dict[int, set[TNode]] = {}
        for axis, pchild in branch_edges:
            if axis is Axis.DESCENDANT:
                below[id(pchild)] = self._exists_below(
                    self._sat[id(pchild)], tree_postorder
                )
        for tnode in tree_postorder:
            if not _label_ok(sel_node, tnode):
                continue
            ok = True
            for axis, pchild in branch_edges:
                child_sat = self._sat[id(pchild)]
                if axis is Axis.CHILD:
                    if not any(u in child_sat for u in tnode.children):
                        ok = False
                        break
                else:
                    if tnode not in below[id(pchild)]:
                        ok = False
                        break
            if ok:
                result.add(tnode)
        self._partial_cache[id(sel_node)] = result
        return result

    @staticmethod
    def _descendants_of(frontier: set[TNode]) -> set[TNode]:
        result: set[TNode] = set()
        for v in frontier:
            result.update(v.iter_descendants())
        return result


def reference_evaluate(
    pattern: Pattern, tree: XMLTree | TNode, weak: bool = False
) -> set[TNode]:
    """``P(t)`` (or ``P^w(t)``) via the seed set-based matcher."""
    return ReferenceMatcher(pattern, tree).output_images(weak=weak)


def reference_canonical_containment(
    p1: Pattern, p2: Pattern, weak: bool = False
) -> bool:
    """The seed canonical-model containment loop, verbatim.

    Rebuilds the full canonical tree and a fresh :class:`ReferenceMatcher`
    for every expansion vector — exactly what the seed's
    ``canonical_containment`` did (minus instrumentation).
    """
    from .canonical import canonical_models
    from .containment import expansion_bound

    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    bound = expansion_bound(p2)
    for model in canonical_models(p1, bound):
        images = ReferenceMatcher(p2, model.tree).output_images(weak=weak)
        if model.output not in images:
            return False
    return True
