"""Embeddings and weak embeddings of patterns into trees (Definition 2.1).

An *embedding* of a pattern ``P`` into a tree ``t`` is a mapping
``e : N(P) → N(t)`` that is root-, label-, child- and
descendant-preserving.  A *weak embedding* drops root preservation.
Applying ``P`` to ``t`` yields ``P(t)``: the set of subtrees of ``t``
rooted at images of the output node; we represent each such subtree by
its root :class:`~repro.xmltree.node.TNode` (node identity), which makes
Proposition 2.4 (``R ∘ V (t) = R(V(t))``) directly testable.

Bitset engine
-------------
The implementation is the standard O(|P|·|t|) bottom-up dynamic program
for tree-pattern matching, but all ``sat`` rows are **Python-int bitsets**
over a postorder numbering of the tree (:class:`TreeIndex`):

* ``sat[pnode]`` is an int whose bit ``i`` is set iff the pattern subtree
  at ``pnode`` embeds with ``pnode ↦ post[i]``;
* a postorder numbering makes every subtree a *contiguous* index range,
  so the strict-descendant mask of a node is two shifts and a subtraction
  — no per-model set recomputation;
* per-node ancestor masks are precomputed once, so "some satisfying node
  strictly below ``v``" for a whole ``sat`` row is a union of ancestor
  masks followed by a single AND.

Per-edge work is therefore proportional to the *popcount* of the child's
``sat`` row (in machine-word chunks), instead of a Python-level loop over
all tree nodes with set lookups.  On the containment hot path this is a
large constant-factor win; see ``benchmarks/bench_perf_guard.py`` and the
committed ``BENCH_containment.json`` for measured numbers against the
seed set-based engine (preserved in
:mod:`repro.core.embedding_reference`).

All traversals are iterative, so chain patterns/trees deeper than the
interpreter recursion limit are handled.  A :class:`Matcher` can also be
**re-run against a mutated tree** via :meth:`Matcher.rematch` — the
pattern-side precomputation (postorder, selection path) is reused and
only the tree tables and ``sat`` rows are rebuilt.  The canonical-model
enumerator (:mod:`repro.core.canonical`) goes one step further and keeps
a fixed numbering across mutations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree

try:  # Optional large-tree backend; the table backend needs nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the image
    _np = None

__all__ = [
    "TreeIndex",
    "Matcher",
    "iter_bits",
    "evaluate",
    "evaluate_forest",
    "is_model",
    "weak_output_images",
    "find_embedding",
    "pattern_postorder",
]

#: Largest tree for which the per-byte lookup tables are built.  Table
#: memory is ``2 × 256 × (n/8)`` Python ints of ``n`` bits — ~1 MiB at
#: the default; beyond it the numpy backend (constant per-call overhead,
#: no quadratic table) takes over.
TABLE_BACKEND_MAX_NODES = 1024

#: Masks with at most this many set bits take the per-bit loop even when
#: a table/numpy backend is active: for very sparse rows the loop's
#: per-bit cost beats the per-byte (or per-call numpy) overhead.
SPARSE_POPCOUNT_CUTOFF = 8


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def pattern_postorder(root: PNode) -> list[PNode]:
    """Postorder of a pattern subtree, iteratively (deep-chain safe)."""
    order: list[PNode] = []
    stack: list[tuple[PNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
        else:
            stack.append((node, True))
            for _, child in reversed(node.edges):
                stack.append((child, False))
    return order


class TreeIndex:
    """Bitset tables for one tree: postorder numbering plus masks.

    Attributes
    ----------
    post:
        Tree nodes in postorder; ``post[i]`` is node ``i``.  The root is
        always the last index (``n - 1``).
    index:
        ``id(node) -> i`` for every node.
    parent:
        ``parent[i]`` is the index of node ``i``'s parent (-1 for root).
    child_mask:
        Bit ``j`` of ``child_mask[i]`` iff node ``j`` is a child of ``i``.
    start:
        Postorder start of node ``i``'s subtree: the descendants of ``i``
        are exactly indices ``start[i] .. i - 1`` (contiguous).
    anc_mask:
        Bits of all *proper* ancestors of node ``i``.
    label_mask:
        label -> bits of the nodes carrying that label.

    Word-parallel backends
    ----------------------
    :meth:`parents_of` and :meth:`ancestors_of` — the per-edge inner
    loop of every DP pass — run **word-at-a-time** instead of
    bit-at-a-time.  The backend is chosen by tree size (overridable via
    ``backend=``):

    * ``"table"`` (default up to :data:`TABLE_BACKEND_MAX_NODES`):
      per-byte lookup tables.  ``parent_tbl[p][v]`` is the OR of the
      parent bits of the nodes encoded by byte value ``v`` at byte
      position ``p``; a whole ``sat`` row is folded in ``n/8`` table
      hits instead of ``popcount(row)`` Python-level shifts.
    * ``"numpy"`` (larger trees, when numpy is importable): the row is
      unpacked to node indexes once and the parent/ancestor tables are
      gathered vectorized — constant Python overhead per call, no
      quadratic table memory.
    * ``"loop"``: the original per-set-bit loops, kept as the reference
      the property suite cross-checks the other two against.

    Tables are built lazily on first use; very sparse rows (see
    :data:`SPARSE_POPCOUNT_CUTOFF`) always take the loop.
    """

    __slots__ = (
        "root",
        "post",
        "index",
        "parent",
        "child_mask",
        "start",
        "anc_mask",
        "label_mask",
        "n",
        "all_mask",
        "nbytes",
        "backend",
        "_parent_tbl",
        "_anc_tbl",
        "_np_parent",
        "_np_anc",
    )

    def __init__(self, root: TNode, backend: str = "auto"):
        self.root = root
        # Iterative postorder (deep-chain safe).
        post: list[TNode] = []
        stack: list[tuple[TNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                post.append(node)
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
        index: dict[int, int] = {id(node): i for i, node in enumerate(post)}
        n = len(post)
        parent = [-1] * n
        child_mask = [0] * n
        for i, node in enumerate(post):
            for child in node.children:
                j = index[id(child)]
                parent[j] = i
                child_mask[i] |= 1 << j
        starts = [0] * n
        for i, node in enumerate(post):
            if node.children:
                starts[i] = starts[index[id(node.children[0])]]
            else:
                starts[i] = i
        # Ancestor masks: parents appear *after* children in postorder, so
        # fill root-first by descending index order via parent pointers.
        anc_mask = [0] * n
        for i in range(n - 1, -1, -1):
            p = parent[i]
            if p >= 0:
                anc_mask[i] = anc_mask[p] | (1 << p)
        label_mask: dict[str, int] = {}
        for i, node in enumerate(post):
            label_mask[node.label] = label_mask.get(node.label, 0) | (1 << i)

        self.post = post
        self.index = index
        self.parent = parent
        self.child_mask = child_mask
        self.start = starts
        self.anc_mask = anc_mask
        self.label_mask = label_mask
        self.n = n
        self.all_mask = (1 << n) - 1
        self.nbytes = (n + 7) // 8
        if backend == "auto":
            if n <= TABLE_BACKEND_MAX_NODES:
                backend = "table"
            elif _np is not None:
                backend = "numpy"
            else:
                backend = "loop"
        elif backend == "numpy" and _np is None:
            raise ValueError("numpy backend requested but numpy is missing")
        elif backend not in ("table", "numpy", "loop"):
            raise ValueError(f"unknown TreeIndex backend {backend!r}")
        self.backend = backend
        self._parent_tbl: list[list[int]] | None = None
        self._anc_tbl: list[list[int]] | None = None
        self._np_parent = None
        self._np_anc = None

    # ------------------------------------------------------------------
    # Word-parallel backends
    # ------------------------------------------------------------------
    def _build_tables(self) -> None:
        """Per-byte lookup tables: ``tbl[p][v]`` folds byte ``v`` at ``p``.

        Built incrementally — each entry extends the entry with its
        lowest bit cleared — so construction is one OR per table cell.
        """
        parent = self.parent
        anc = self.anc_mask
        n = self.n
        parent_tbl: list[list[int]] = []
        anc_tbl: list[list[int]] = []
        for pos in range(self.nbytes):
            base = pos * 8
            pt = [0] * 256
            at = [0] * 256
            for v in range(1, 256):
                low = v & -v
                rest = v ^ low
                i = base + low.bit_length() - 1
                if i < n:
                    p = parent[i]
                    pt[v] = pt[rest] | ((1 << p) if p >= 0 else 0)
                    at[v] = at[rest] | anc[i]
                else:  # padding bits of the last byte
                    pt[v] = pt[rest]
                    at[v] = at[rest]
            parent_tbl.append(pt)
            anc_tbl.append(at)
        self._parent_tbl = parent_tbl
        self._anc_tbl = anc_tbl

    def _build_numpy(self) -> None:
        """Vectorized tables: parent indexes + a packed ancestor matrix."""
        assert _np is not None
        self._np_parent = _np.array(self.parent, dtype=_np.int64)
        rows = [
            _np.frombuffer(
                mask.to_bytes(self.nbytes, "little"), dtype=_np.uint8
            )
            for mask in self.anc_mask
        ]
        self._np_anc = _np.vstack(rows) if rows else _np.zeros(
            (0, self.nbytes), dtype=_np.uint8
        )

    def _bit_indexes_np(self, mask: int):
        """Set-bit indexes of ``mask`` as a numpy array (ascending)."""
        assert _np is not None
        packed = _np.frombuffer(
            mask.to_bytes(self.nbytes, "little"), dtype=_np.uint8
        )
        return _np.flatnonzero(
            _np.unpackbits(packed, bitorder="little", count=self.n)
        )

    # ------------------------------------------------------------------
    # Mask helpers
    # ------------------------------------------------------------------
    def desc_range(self, i: int) -> int:
        """Bits of the *proper* descendants of node ``i`` (contiguous)."""
        return ((1 << i) - 1) ^ ((1 << self.start[i]) - 1)

    def candidates(self, label: str) -> int:
        """Bits of the nodes a pattern node with ``label`` may map to."""
        if label == WILDCARD:
            return self.all_mask
        return self.label_mask.get(label, 0)

    def parents_of_loop(self, mask: int) -> int:
        """Per-set-bit :meth:`parents_of`: the reference implementation."""
        result = 0
        parent = self.parent
        for u in iter_bits(mask):
            p = parent[u]
            if p >= 0:
                result |= 1 << p
        return result

    def ancestors_of_loop(self, mask: int) -> int:
        """Per-set-bit :meth:`ancestors_of`: the reference implementation."""
        result = 0
        anc = self.anc_mask
        for u in iter_bits(mask):
            result |= anc[u]
        return result

    def parents_of(self, mask: int) -> int:
        """Bits of nodes with at least one child in ``mask``."""
        if (
            self.backend == "loop"
            or mask.bit_count() <= SPARSE_POPCOUNT_CUTOFF
        ):
            return self.parents_of_loop(mask)
        if self.backend == "table":
            tbl = self._parent_tbl
            if tbl is None:
                self._build_tables()
                tbl = self._parent_tbl
            result = 0
            for pos, byte in enumerate(mask.to_bytes(self.nbytes, "little")):
                if byte:
                    result |= tbl[pos][byte]
            return result
        if self._np_parent is None:
            self._build_numpy()
        parents = self._np_parent[self._bit_indexes_np(mask)]
        parents = parents[parents >= 0]
        out = _np.zeros(self.nbytes * 8, dtype=_np.uint8)
        out[parents] = 1
        return int.from_bytes(
            _np.packbits(out, bitorder="little").tobytes(), "little"
        )

    def ancestors_of(self, mask: int) -> int:
        """Bits of nodes with at least one *proper* descendant in ``mask``."""
        if (
            self.backend == "loop"
            or mask.bit_count() <= SPARSE_POPCOUNT_CUTOFF
        ):
            return self.ancestors_of_loop(mask)
        if self.backend == "table":
            tbl = self._anc_tbl
            if tbl is None:
                self._build_tables()
                tbl = self._anc_tbl
            result = 0
            for pos, byte in enumerate(mask.to_bytes(self.nbytes, "little")):
                if byte:
                    result |= tbl[pos][byte]
            return result
        if self._np_anc is None:
            self._build_numpy()
        rows = self._np_anc[self._bit_indexes_np(mask)]
        acc = _np.bitwise_or.reduce(rows, axis=0)
        return int.from_bytes(acc.tobytes(), "little")

    def members(self, mask: int) -> set[TNode]:
        """The tree nodes whose bits are set in ``mask``."""
        post = self.post
        return {post[i] for i in iter_bits(mask)}


class Matcher:
    """Precomputed matching tables for one (pattern, tree) pair.

    ``sat(n, v)`` holds iff the subtree of the pattern rooted at ``n``
    embeds into ``t`` with ``n ↦ v`` (ignoring everything above ``n``).
    On top of ``sat``, :meth:`output_images` runs a forward pass along the
    selection path to find all nodes ``o`` such that some (weak) embedding
    maps the output node to ``o``.

    The tables are bitsets over :class:`TreeIndex`; the pattern-side
    precomputation (postorder, selection path, on-path ids) survives a
    :meth:`rematch`, which rebuilds only the tree tables after the
    underlying tree object was mutated.
    """

    #: Bound on ``_partial_cache``.  Selection paths are short, but a
    #: long-lived matcher serving many :meth:`witness` calls against a
    #: mutating pattern set must not accumulate rows forever — same LRU
    #: + eviction-counter treatment as the containment caches.
    PARTIAL_CACHE_LIMIT = 128

    def __init__(
        self,
        pattern: Pattern,
        tree: XMLTree | TNode,
        tree_index: TreeIndex | None = None,
    ):
        self.pattern = pattern
        self.tree_root = tree.root if isinstance(tree, XMLTree) else tree
        self._sat: dict[int, int] = {}
        self._partial_cache: OrderedDict[int, int] = OrderedDict()
        self.partial_cache_evictions = 0
        self.tree_index: TreeIndex | None = None
        if not pattern.is_empty:
            self._pattern_post = pattern_postorder(pattern.root)  # type: ignore[arg-type]
            self._on_path = set(map(id, pattern.selection_path()))
            # A caller-supplied index amortizes the tree-side tables
            # across patterns (view materialization, advisor costing,
            # replay); it must describe this very tree object.
            if tree_index is not None and tree_index.root is self.tree_root:
                self.tree_index = tree_index
            else:
                self.tree_index = TreeIndex(self.tree_root)
            self._compute_sat()

    # ------------------------------------------------------------------
    # Core tables
    # ------------------------------------------------------------------
    def _compute_sat(self) -> None:
        ti = self.tree_index
        assert ti is not None
        sat = self._sat
        for pnode in self._pattern_post:
            cand = ti.candidates(pnode.label)
            for axis, pchild in pnode.edges:
                if not cand:
                    break
                child_sat = sat[id(pchild)]
                if axis is Axis.CHILD:
                    cand &= ti.parents_of(child_sat)
                else:
                    cand &= ti.ancestors_of(child_sat)
            sat[id(pnode)] = cand

    def rematch(self) -> "Matcher":
        """Recompute the tables after the tree was mutated in place.

        Reuses all pattern-side precomputation; only the tree tables and
        ``sat`` rows are rebuilt.  Returns ``self`` for chaining.
        """
        if self.pattern.is_empty:
            return self
        self._sat.clear()
        self._partial_cache.clear()
        self.tree_index = TreeIndex(self.tree_root)
        self._compute_sat()
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sat(self, pnode: PNode, tnode: TNode) -> bool:
        """Can the pattern subtree at ``pnode`` embed with ``pnode ↦ tnode``?"""
        if self.tree_index is None:
            return False
        i = self.tree_index.index.get(id(tnode))
        if i is None:
            return False
        return bool(self._sat.get(id(pnode), 0) >> i & 1)

    def has_embedding(self) -> bool:
        """Is ``t`` a model of the pattern (root-preserving embedding)?"""
        if self.pattern.is_empty:
            return False
        assert self.tree_index is not None
        root_bit = 1 << (self.tree_index.n - 1)
        return bool(self._sat[id(self.pattern.root)] & root_bit)

    def has_weak_embedding(self) -> bool:
        """Does any weak embedding of the pattern into ``t`` exist?"""
        if self.pattern.is_empty:
            return False
        return bool(self._sat[id(self.pattern.root)])

    def output_images(self, weak: bool = False) -> set[TNode]:
        """All nodes ``o`` reachable as images of the output node.

        ``weak=True`` computes the weak semantics ``P^w(t)``.
        """
        if self.pattern.is_empty:
            return set()
        ti = self.tree_index
        assert ti is not None
        frontier = self._output_mask(weak=weak)
        return ti.members(frontier)

    def _output_mask(self, weak: bool) -> int:
        """Bitset of achievable output images (forward pass)."""
        ti = self.tree_index
        assert ti is not None
        path = self.pattern.selection_path()
        axes = self.pattern.selection_axes()
        partial = [self._partial_sat(node) for node in path]

        root_bit = 1 << (ti.n - 1)
        if weak:
            frontier = partial[0]
        else:
            frontier = partial[0] & root_bit
        for axis, allowed in zip(axes, partial[1:]):
            if not frontier:
                break
            step = 0
            if axis is Axis.CHILD:
                for v in iter_bits(frontier):
                    step |= ti.child_mask[v]
            else:
                for v in iter_bits(frontier):
                    step |= ti.desc_range(v)
            frontier = step & allowed
        return frontier

    def _partial_sat(self, sel_node: PNode) -> int:
        """Tree nodes where ``sel_node`` may sit: label + branch subtrees.

        Like ``sat`` but ignoring the selection-path child (which the
        forward pass handles).  Cached per selection node.
        """
        cache = self._partial_cache
        cached = cache.get(id(sel_node))
        if cached is not None:
            cache.move_to_end(id(sel_node))
            return cached
        ti = self.tree_index
        assert ti is not None
        cand = ti.candidates(sel_node.label)
        for axis, pchild in sel_node.edges:
            if id(pchild) in self._on_path:
                continue
            if not cand:
                break
            child_sat = self._sat[id(pchild)]
            if axis is Axis.CHILD:
                cand &= ti.parents_of(child_sat)
            else:
                cand &= ti.ancestors_of(child_sat)
        cache[id(sel_node)] = cand
        while len(cache) > self.PARTIAL_CACHE_LIMIT:
            cache.popitem(last=False)
            self.partial_cache_evictions += 1
        return cand

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------
    def witness(self, output: TNode | None = None, weak: bool = False):
        """An explicit embedding ``{PNode: TNode}`` or None.

        When ``output`` is given, the embedding is required to map the
        pattern's output node to that tree node.  Otherwise any achievable
        output is chosen.
        """
        if self.pattern.is_empty:
            return None
        ti = self.tree_index
        assert ti is not None
        if output is None:
            images = self._output_mask(weak=weak)
            if not images:
                return None
            out_idx = next(iter_bits(images))
        else:
            maybe = ti.index.get(id(output))
            if maybe is None:
                return None
            out_idx = maybe

        path = self.pattern.selection_path()
        axes = self.pattern.selection_axes()
        partial = [self._partial_sat(node) for node in path]

        # Backward pass: B[i] = selection-node-i images from which the
        # requested output remains reachable along the selection path.
        depth = len(axes)
        backward: list[int] = [0] * (depth + 1)
        backward[depth] = partial[depth] & (1 << out_idx)
        for i in range(depth - 1, -1, -1):
            axis = axes[i]
            prev = 0
            if axis is Axis.CHILD:
                prev = ti.parents_of(backward[i + 1])
            else:
                prev = ti.ancestors_of(backward[i + 1])
            backward[i] = prev & partial[i]
        if not backward[0]:
            return None
        root_bit = 1 << (ti.n - 1)
        if weak:
            anchor = next(iter_bits(backward[0]))
        elif backward[0] & root_bit:
            anchor = ti.n - 1
        else:
            return None

        # Forward walk along the selection path, then greedy branches.
        mapping: dict[PNode, TNode] = {}
        chain = [anchor]
        for i, axis in enumerate(axes):
            current = chain[-1]
            if axis is Axis.CHILD:
                candidates = ti.child_mask[current] & backward[i + 1]
            else:
                candidates = ti.desc_range(current) & backward[i + 1]
            chain.append(next(iter_bits(candidates)))
        for sel_node, image_idx in zip(path, chain):
            mapping[sel_node] = ti.post[image_idx]
            for axis, pchild in sel_node.edges:
                if id(pchild) in self._on_path:
                    continue
                self._extract_branch(axis, pchild, image_idx, mapping)
        return mapping

    def _extract_branch(
        self,
        axis: Axis,
        pnode: PNode,
        above: int,
        mapping: dict[PNode, TNode],
    ) -> None:
        """Greedy extraction of a branch subtree below node index ``above``.

        Guaranteed to succeed because ``above`` passed ``_partial_sat``
        (hence a satisfying placement exists for every branch child).
        Iterative, so deep branches never hit the recursion limit.
        """
        ti = self.tree_index
        assert ti is not None
        stack: list[tuple[Axis, PNode, int]] = [(axis, pnode, above)]
        while stack:
            cur_axis, cur_pnode, cur_above = stack.pop()
            if cur_axis is Axis.CHILD:
                candidates = ti.child_mask[cur_above]
            else:
                candidates = ti.desc_range(cur_above)
            image_idx = next(iter_bits(candidates & self._sat[id(cur_pnode)]))
            mapping[cur_pnode] = ti.post[image_idx]
            for child_axis, pchild in cur_pnode.edges:
                stack.append((child_axis, pchild, image_idx))


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------

def evaluate(
    pattern: Pattern,
    tree: XMLTree | TNode,
    weak: bool = False,
    index: TreeIndex | None = None,
) -> set[TNode]:
    """Apply ``pattern`` to ``tree``: the paper's ``P(t)`` (or ``P^w(t)``).

    Returns the set of output images as tree nodes (each representing the
    subtree of ``tree`` rooted there).  The empty pattern yields ∅.
    ``index`` may carry a prebuilt :class:`TreeIndex` for ``tree`` to
    amortize the tree tables across many patterns; it is ignored (and
    rebuilt) if it does not describe ``tree``'s root object.
    """
    return Matcher(pattern, tree, tree_index=index).output_images(weak=weak)


def evaluate_forest(
    pattern: Pattern,
    forest: Iterable[XMLTree | TNode],
    weak: bool = False,
) -> set[TNode]:
    """Apply a pattern to a set of trees: ``P(T) = ∪_{t∈T} P(t)``."""
    result: set[TNode] = set()
    for tree in forest:
        result |= evaluate(pattern, tree, weak=weak)
    return result


def is_model(tree: XMLTree | TNode, pattern: Pattern) -> bool:
    """True iff ``tree ∈ Mod(pattern)`` (some embedding exists)."""
    return Matcher(pattern, tree).has_embedding()


def weak_output_images(pattern: Pattern, tree: XMLTree | TNode) -> set[TNode]:
    """``P^w(t)``: output images under weak embeddings."""
    return evaluate(pattern, tree, weak=True)


def find_embedding(
    pattern: Pattern,
    tree: XMLTree | TNode,
    output: TNode | None = None,
    weak: bool = False,
):
    """A concrete (weak) embedding as ``{PNode: TNode}``, or None.

    When ``output`` is given, the embedding must produce that node.
    """
    return Matcher(pattern, tree).witness(output=output, weak=weak)
