"""Embeddings and weak embeddings of patterns into trees (Definition 2.1).

An *embedding* of a pattern ``P`` into a tree ``t`` is a mapping
``e : N(P) → N(t)`` that is root-, label-, child- and
descendant-preserving.  A *weak embedding* drops root preservation.
Applying ``P`` to ``t`` yields ``P(t)``: the set of subtrees of ``t``
rooted at images of the output node; we represent each such subtree by
its root :class:`~repro.xmltree.node.TNode` (node identity), which makes
Proposition 2.4 (``R ∘ V (t) = R(V(t))``) directly testable.

The implementation is the standard O(|P|·|t|) bottom-up dynamic program
for tree-pattern matching, extended with a forward pass along the
selection path to compute the achievable output images.
"""

from __future__ import annotations

from typing import Iterable

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..xmltree.node import TNode
from ..xmltree.tree import XMLTree

__all__ = [
    "Matcher",
    "evaluate",
    "evaluate_forest",
    "is_model",
    "weak_output_images",
    "find_embedding",
]


def _label_ok(pnode: PNode, tnode: TNode) -> bool:
    return pnode.label == WILDCARD or pnode.label == tnode.label


class Matcher:
    """Precomputed matching tables for one (pattern, tree) pair.

    ``sat(n, v)`` holds iff the subtree of the pattern rooted at ``n``
    embeds into ``t`` with ``n ↦ v`` (ignoring everything above ``n``).
    On top of ``sat``, :meth:`output_images` runs a forward pass along the
    selection path to find all nodes ``o`` such that some (weak) embedding
    maps the output node to ``o``.
    """

    def __init__(self, pattern: Pattern, tree: XMLTree | TNode):
        self.pattern = pattern
        self.tree_root = tree.root if isinstance(tree, XMLTree) else tree
        # sat[pnode id] = set of satisfying tree nodes (hashed by identity).
        self._sat: dict[int, set[TNode]] = {}
        self._tree_post: list[TNode] = []
        self._partial_cache: dict[int, set[TNode]] = {}
        if not pattern.is_empty:
            self._tree_post = self._tree_postorder()
            self._compute_sat()

    # ------------------------------------------------------------------
    # Core tables
    # ------------------------------------------------------------------
    def _postorder(self) -> list[PNode]:
        order: list[PNode] = []

        def rec(node: PNode) -> None:
            for _, child in node.edges:
                rec(child)
            order.append(node)

        rec(self.pattern.root)  # type: ignore[arg-type]
        return order

    def _compute_sat(self) -> None:
        tree_postorder = self._tree_post
        for pnode in self._postorder():
            satisfying: set[TNode] = set()
            # For descendant-edge children we need, per tree node v,
            # whether S_c intersects the strict subtree below v.
            below: dict[int, set[TNode]] = {}
            for axis, pchild in pnode.edges:
                if axis is Axis.DESCENDANT:
                    below[id(pchild)] = self._exists_below(
                        self._sat[id(pchild)], tree_postorder
                    )
            for tnode in tree_postorder:
                if not _label_ok(pnode, tnode):
                    continue
                ok = True
                for axis, pchild in pnode.edges:
                    child_sat = self._sat[id(pchild)]
                    if axis is Axis.CHILD:
                        if not any(u in child_sat for u in tnode.children):
                            ok = False
                            break
                    else:
                        if tnode not in below[id(pchild)]:
                            ok = False
                            break
                if ok:
                    satisfying.add(tnode)
            self._sat[id(pnode)] = satisfying

    def _tree_postorder(self) -> list[TNode]:
        order: list[TNode] = []

        def rec(node: TNode) -> None:
            for child in node.children:
                rec(child)
            order.append(node)

        rec(self.tree_root)
        return order

    @staticmethod
    def _exists_below(
        target: set[TNode], tree_postorder: list[TNode]
    ) -> set[TNode]:
        """Tree nodes whose *strict* subtree intersects ``target``."""
        result: set[TNode] = set()
        for node in tree_postorder:
            if any(child in target or child in result for child in node.children):
                result.add(node)
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sat(self, pnode: PNode, tnode: TNode) -> bool:
        """Can the pattern subtree at ``pnode`` embed with ``pnode ↦ tnode``?"""
        return tnode in self._sat.get(id(pnode), set())

    def has_embedding(self) -> bool:
        """Is ``t`` a model of the pattern (root-preserving embedding)?"""
        if self.pattern.is_empty:
            return False
        return self.tree_root in self._sat[id(self.pattern.root)]

    def has_weak_embedding(self) -> bool:
        """Does any weak embedding of the pattern into ``t`` exist?"""
        if self.pattern.is_empty:
            return False
        return bool(self._sat[id(self.pattern.root)])

    def output_images(self, weak: bool = False) -> set[TNode]:
        """All nodes ``o`` reachable as images of the output node.

        ``weak=True`` computes the weak semantics ``P^w(t)``.
        """
        if self.pattern.is_empty:
            return set()
        path = self.pattern.selection_path()
        axes = self.pattern.selection_axes()
        partial = [self._partial_sat(node) for node in path]

        if weak:
            frontier = set(partial[0])
        else:
            frontier = (
                {self.tree_root} if self.tree_root in partial[0] else set()
            )
        for axis, allowed in zip(axes, partial[1:]):
            if not frontier:
                break
            if axis is Axis.CHILD:
                next_frontier = {
                    u for v in frontier for u in v.children if u in allowed
                }
            else:
                next_frontier = self._descendants_of(frontier) & allowed
            frontier = next_frontier
        return set(frontier)

    def _partial_sat(self, sel_node: PNode) -> set[int]:
        """Tree nodes where ``sel_node`` may sit: label + branch subtrees.

        Like ``sat`` but ignoring the selection-path child (which the
        forward pass handles).  Cached per selection node.
        """
        cached = self._partial_cache.get(id(sel_node))
        if cached is not None:
            return cached
        on_path = set(map(id, self.pattern.selection_path()))
        tree_postorder = self._tree_post
        result: set[TNode] = set()
        branch_edges = [
            (axis, child)
            for axis, child in sel_node.edges
            if id(child) not in on_path
        ]
        below: dict[int, set[TNode]] = {}
        for axis, pchild in branch_edges:
            if axis is Axis.DESCENDANT:
                below[id(pchild)] = self._exists_below(
                    self._sat[id(pchild)], tree_postorder
                )
        for tnode in tree_postorder:
            if not _label_ok(sel_node, tnode):
                continue
            ok = True
            for axis, pchild in branch_edges:
                child_sat = self._sat[id(pchild)]
                if axis is Axis.CHILD:
                    if not any(u in child_sat for u in tnode.children):
                        ok = False
                        break
                else:
                    if tnode not in below[id(pchild)]:
                        ok = False
                        break
            if ok:
                result.add(tnode)
        self._partial_cache[id(sel_node)] = result
        return result

    @staticmethod
    def _descendants_of(frontier: set[TNode]) -> set[TNode]:
        """All proper descendants of any node in ``frontier``."""
        result: set[TNode] = set()
        for v in frontier:
            result.update(v.iter_descendants())
        return result

    # ------------------------------------------------------------------
    # Witness extraction
    # ------------------------------------------------------------------
    def witness(self, output: TNode | None = None, weak: bool = False):
        """An explicit embedding ``{PNode: TNode}`` or None.

        When ``output`` is given, the embedding is required to map the
        pattern's output node to that tree node.  Otherwise any achievable
        output is chosen.
        """
        if self.pattern.is_empty:
            return None
        if output is None:
            images = self.output_images(weak=weak)
            if not images:
                return None
            output = next(iter(images))

        path = self.pattern.selection_path()
        axes = self.pattern.selection_axes()
        partial = [self._partial_sat(node) for node in path]

        # Backward pass: B[i] = selection-node-i images from which the
        # requested output remains reachable along the selection path.
        depth = len(axes)
        backward: list[set[TNode]] = [set() for _ in range(depth + 1)]
        backward[depth] = {output} if output in partial[depth] else set()
        for i in range(depth - 1, -1, -1):
            axis = axes[i]
            allowed = partial[i]
            prev: set[TNode] = set()
            for v in backward[i + 1]:
                if axis is Axis.CHILD:
                    if v.parent is not None and v.parent in allowed:
                        prev.add(v.parent)
                else:
                    for anc in v.iter_ancestors():
                        if anc in allowed:
                            prev.add(anc)
            backward[i] = prev
        if not backward[0]:
            return None
        if weak:
            anchor = next(iter(backward[0]))
        elif self.tree_root in backward[0]:
            anchor = self.tree_root
        else:
            return None

        # Forward walk along the selection path, then greedy branches.
        mapping: dict[PNode, TNode] = {}
        chain = [anchor]
        for i, axis in enumerate(axes):
            current = chain[-1]
            candidates: Iterable[TNode]
            if axis is Axis.CHILD:
                candidates = current.children
            else:
                candidates = current.iter_descendants()
            step = next(u for u in candidates if u in backward[i + 1])
            chain.append(step)
        on_path = set(map(id, path))
        for sel_node, image in zip(path, chain):
            mapping[sel_node] = image
            for axis, pchild in sel_node.edges:
                if id(pchild) in on_path:
                    continue
                self._extract_branch(axis, pchild, image, mapping)
        return mapping

    def _extract_branch(
        self,
        axis: Axis,
        pnode: PNode,
        above: TNode,
        mapping: dict[PNode, TNode],
    ) -> None:
        """Greedy extraction of a branch subtree below ``above``.

        Guaranteed to succeed because ``above`` passed ``_partial_sat``
        (hence a satisfying placement exists for every branch child).
        """
        candidates: Iterable[TNode]
        if axis is Axis.CHILD:
            candidates = above.children
        else:
            candidates = above.iter_descendants()
        image = next(u for u in candidates if u in self._sat[id(pnode)])
        mapping[pnode] = image
        for child_axis, pchild in pnode.edges:
            self._extract_branch(child_axis, pchild, image, mapping)


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------

def evaluate(pattern: Pattern, tree: XMLTree | TNode, weak: bool = False) -> set[TNode]:
    """Apply ``pattern`` to ``tree``: the paper's ``P(t)`` (or ``P^w(t)``).

    Returns the set of output images as tree nodes (each representing the
    subtree of ``tree`` rooted there).  The empty pattern yields ∅.
    """
    return Matcher(pattern, tree).output_images(weak=weak)


def evaluate_forest(
    pattern: Pattern,
    forest: Iterable[XMLTree | TNode],
    weak: bool = False,
) -> set[TNode]:
    """Apply a pattern to a set of trees: ``P(T) = ∪_{t∈T} P(t)``."""
    result: set[TNode] = set()
    for tree in forest:
        result |= evaluate(pattern, tree, weak=weak)
    return result


def is_model(tree: XMLTree | TNode, pattern: Pattern) -> bool:
    """True iff ``tree ∈ Mod(pattern)`` (some embedding exists)."""
    return Matcher(pattern, tree).has_embedding()


def weak_output_images(pattern: Pattern, tree: XMLTree | TNode) -> set[TNode]:
    """``P^w(t)``: output images under weak embeddings."""
    return evaluate(pattern, tree, weak=True)


def find_embedding(
    pattern: Pattern,
    tree: XMLTree | TNode,
    output: TNode | None = None,
    weak: bool = False,
):
    """A concrete (weak) embedding as ``{PNode: TNode}``, or None.

    When ``output`` is given, the embedding must produce that node.
    """
    return Matcher(pattern, tree).witness(output=output, weak=weak)
