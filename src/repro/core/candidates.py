"""Natural rewriting candidates (paper Section 4).

For a query ``P`` of depth ``d`` and a view ``V`` of depth ``k ≤ d``, the
*natural candidates* are ``P≥k`` and ``P≥k_r//`` — the k-sub-pattern of
``P`` and its root-edge-relaxed variant.  Both are constructible in time
linear in ``|P|``, which benchmark C1 measures.

A candidate ``R'`` is a *rewriting* iff ``R' ∘ V ≡ P``; it is a
*potential rewriting* when the paper's completeness conditions guarantee
that if ``R'`` fails, no rewriting exists at all.
"""

from __future__ import annotations

from ..errors import PatternStructureError
from ..patterns.ast import Pattern
from .selection import sub_ge
from .transform import relax_root

__all__ = ["natural_candidates", "is_natural_candidate"]


def natural_candidates(query: Pattern, view_depth: int) -> list[Pattern]:
    """The natural candidates ``[P≥k, P≥k_r//]`` (deduplicated).

    When all edges leaving the k-node are already descendant edges the
    two candidates coincide and a single pattern is returned.

    Raises
    ------
    PatternStructureError
        If ``view_depth`` exceeds the query depth (no rewriting can exist
        then, by Proposition 3.1; candidates are undefined).
    """
    if view_depth > query.depth:
        raise PatternStructureError(
            f"view depth {view_depth} exceeds query depth {query.depth}"
        )
    base = sub_ge(query, view_depth)
    relaxed = relax_root(base)
    if relaxed == base:
        return [base]
    return [base, relaxed]


def is_natural_candidate(candidate: Pattern, query: Pattern, view_depth: int) -> bool:
    """Is ``candidate`` (isomorphic to) one of the natural candidates?"""
    return any(candidate == c for c in natural_candidates(query, view_depth))
