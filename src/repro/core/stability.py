"""Stability and normal forms (paper §4.1.1 and §5.1).

A pattern ``Q`` is *stable* when weak equivalence to ``Q`` implies
ordinary equivalence.  Stability is a semantic property; Proposition 4.1
(after [10]) gives three *sufficient, syntactic* conditions, which is
what the rewriting algorithm needs — everything certified stable here
really is stable, so the solver's completeness certificates are sound
(the certified class is possibly a strict subset of all stable patterns,
exactly as in the paper's algorithmic use).

``GNF/∗`` (Definition 5.3) is the generalized normal form: at every
selection depth ``i ≥ 1``, a child edge enters the i-node, or ``Q≥i`` is
stable, or ``Q≥i`` is linear.
"""

from __future__ import annotations

from ..patterns.ast import Axis, Pattern, WILDCARD
from .selection import sub_ge

__all__ = ["is_stable", "is_in_gnf", "gnf_witnesses"]


def is_stable(pattern: Pattern) -> bool:
    """Sufficient stability test (Proposition 4.1).

    ``Q`` is stable when any of the following holds:

    1. the root label is not ``*``;
    2. the depth of ``Q`` is 0;
    3. the depth is ≥ 1 and ``Q`` contains a Σ-label that does not appear
       in ``Q≥1`` (i.e. some branch off the root carries a label absent
       from the 1-sub-pattern).
    """
    if pattern.is_empty:
        return False
    if pattern.root.label != WILDCARD:  # type: ignore[union-attr]
        return True
    if pattern.depth == 0:
        return True
    sub1_labels = sub_ge(pattern, 1).labels()
    return bool(pattern.labels() - sub1_labels)


def is_in_gnf(pattern: Pattern) -> bool:
    """Membership in ``GNF/∗`` (Definition 5.3), using sufficient stability.

    For all ``1 ≤ i ≤ d``: a child edge enters the i-node, or ``Q≥i`` is
    stable (Prop 4.1 conditions), or ``Q≥i`` is linear.
    """
    return all(reason is not None for reason in gnf_witnesses(pattern))


def gnf_witnesses(pattern: Pattern) -> list[str | None]:
    """Per-depth GNF/∗ justification (or None where no condition holds).

    Entry ``i-1`` explains depth ``i``: one of ``"child-edge"``,
    ``"stable"``, ``"linear"`` or None.  Useful for tracing why the
    Theorem 5.4 rule does or does not fire.
    """
    if pattern.is_empty:
        return []
    axes = pattern.selection_axes()
    witnesses: list[str | None] = []
    for i in range(1, pattern.depth + 1):
        if axes[i - 1] is Axis.CHILD:
            witnesses.append("child-edge")
            continue
        sub = sub_ge(pattern, i)
        if is_stable(sub):
            witnesses.append("stable")
        elif sub.is_linear():
            witnesses.append("linear")
        else:
            witnesses.append(None)
    return witnesses
