"""Bounded exhaustive search for rewritings (paper Proposition 3.4).

The paper shows the rewriting-existence problem is *decidable*: any
rewriting can be assumed non-redundant, with height at most that of
``P≥k`` and labels contained in those of ``P≥k``; the finitely many such
patterns (up to isomorphism) can be enumerated and each tested by one
equivalence check.  The resulting algorithm is doubly exponential — the
point of the paper's Section 4/5 conditions is to avoid it.

This module implements that search with strong pruning derived from
Proposition 3.1:

* ``depth(R) = depth(P) - depth(V)`` exactly (Part 1);
* the selection-path labels of ``R`` are forced by the k-node labels of
  ``P`` (Part 3), including the root label via the ``glb`` constraint of
  the composition;
* selection-edge axes are free (2^(d-k) skeletons);
* branch decorations are enumerated by increasing extra-node count, with
  labels from ``labels(P≥k) ∪ {*}`` and the height bound enforced.

The search is *budgeted*: a completed enumeration up to the requested
extra-node bound that finds nothing is reported as ``exhausted`` —
definitive only relative to the bound (the true Prop 3.4 bound is
astronomically larger).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

from ..errors import RewriteBudgetError
from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from .composition import compose, glb
from .containment import equivalent
from .selection import sub_ge

__all__ = ["SearchOutcome", "exhaustive_search", "enumerate_candidates"]


@dataclass
class SearchOutcome:
    """Result of a bounded exhaustive search.

    Attributes
    ----------
    rewriting:
        A verified rewriting, or None.
    tried:
        Number of candidate patterns tested.
    exhausted:
        True when the whole bounded space was enumerated without finding
        a rewriting (definitive only up to the bound).
    """

    rewriting: Pattern | None
    tried: int
    exhausted: bool


def _root_label_choices(query: Pattern, view: Pattern, k: int) -> list[str]:
    """Admissible labels for ``root(R)`` given the glb constraint.

    ``glb(root(R), label(out(V)))`` must equal the label of the k-node of
    ``P`` (Proposition 3.1 Part 3 applied to ``R ∘ V ≡ P``).
    """
    target = query.k_node(k).label
    view_out = view.output.label  # type: ignore[union-attr]
    choices = []
    candidates = {target, WILDCARD, view_out}
    for label in candidates:
        if glb(label, view_out) == target:
            choices.append(label)
    return sorted(set(choices))


@lru_cache(maxsize=None)
def _tree_shapes(
    n_nodes: int, labels: tuple[str, ...]
) -> tuple[tuple, ...]:
    """All axis-typed unordered tree shapes with exactly ``n_nodes`` nodes.

    A shape is ``(label, ((axis_value, child_shape), ...))`` with the
    child tuple sorted, so isomorphic shapes coincide.
    """
    if n_nodes < 1:
        return ()
    shapes = []
    for label in labels:
        for forest in _forest_shapes(n_nodes - 1, labels):
            shapes.append((label, forest))
    return tuple(shapes)


@lru_cache(maxsize=None)
def _forest_shapes(total: int, labels: tuple[str, ...]) -> tuple[tuple, ...]:
    """Sorted tuples of ``(axis, shape)`` pairs totalling ``total`` nodes."""
    if total == 0:
        return ((),)
    result: set[tuple] = set()
    for first_size in range(1, total + 1):
        for shape in _tree_shapes(first_size, labels):
            for axis in (0, 1):
                for rest in _forest_shapes(total - first_size, labels):
                    result.add(tuple(sorted(rest + ((axis, shape),))))
    return tuple(sorted(result))


def _build_shape(shape: tuple) -> PNode:
    label, children = shape
    node = PNode(label)
    for axis_value, child_shape in children:
        node.add(Axis(axis_value), _build_shape(child_shape))
    return node


def enumerate_candidates(
    query: Pattern,
    view: Pattern,
    max_extra_nodes: int = 2,
    max_candidates: int | None = None,
) -> Iterator[Pattern]:
    """Enumerate candidate rewritings in order of increasing size.

    Candidates satisfy all Prop 3.1-derived constraints; each still needs
    the (coNP) equivalence check ``R ∘ V ≡ P``.  Patterns are produced
    without isomorphic duplicates.

    Raises
    ------
    RewriteBudgetError
        When more than ``max_candidates`` candidates would be produced.
    """
    d, k = query.depth, view.depth
    if k > d:
        return
    m = d - k  # forced selection-path length of R
    root_labels = _root_label_choices(query, view, k)
    if not root_labels:
        return
    query_path = query.selection_path()
    forced = [query_path[k + j].label for j in range(1, m + 1)]
    base = sub_ge(query, k)
    max_height = max(base.height(), 1)
    branch_labels = tuple(sorted(base.labels() | {WILDCARD}))

    produced = 0
    seen: set[tuple] = set()
    for extra in range(0, max_extra_nodes + 1):
        for candidate in _candidates_with_extra(
            m, root_labels, forced, branch_labels, extra
        ):
            if candidate.height() > max_height:
                continue
            key = candidate.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            produced += 1
            if max_candidates is not None and produced > max_candidates:
                raise RewriteBudgetError(
                    f"candidate enumeration exceeded budget {max_candidates}"
                )
            yield candidate


def _candidates_with_extra(
    m: int,
    root_labels: list[str],
    forced: list[str],
    branch_labels: tuple[str, ...],
    extra: int,
) -> Iterator[Pattern]:
    """Candidates with exactly ``extra`` branch nodes."""
    anchors = m + 1
    for root_label in root_labels:
        for axes in itertools.product((Axis.CHILD, Axis.DESCENDANT), repeat=m):
            for split in _compositions(extra, anchors):
                for forests in itertools.product(
                    *(_forest_shapes(n, branch_labels) for n in split)
                ):
                    root = PNode(root_label)
                    node = root
                    path = [root]
                    for axis, label in zip(axes, forced):
                        node = node.add(axis, PNode(label))
                        path.append(node)
                    for anchor, forest in zip(path, forests):
                        for axis_value, shape in forest:
                            anchor.add(Axis(axis_value), _build_shape(shape))
                    yield Pattern(root, path[-1])


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ways to write ``total`` as an ordered sum of ``parts`` >= 0."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, parts - 1):
            yield (head,) + rest


def exhaustive_search(
    query: Pattern,
    view: Pattern,
    max_extra_nodes: int = 2,
    max_candidates: int | None = 20000,
    max_models: int | None = None,
) -> SearchOutcome:
    """Search the bounded candidate space for a verified rewriting.

    Returns the first candidate ``R`` with ``R ∘ V ≡ P`` (candidates are
    ordered by size, so the result is a smallest rewriting within the
    bound), or an exhausted outcome.
    """
    tried = 0
    try:
        for candidate in enumerate_candidates(
            query, view, max_extra_nodes, max_candidates
        ):
            tried += 1
            if equivalent(compose(candidate, view), query, max_models=max_models):
                return SearchOutcome(rewriting=candidate, tried=tried, exhausted=False)
    except RewriteBudgetError:
        return SearchOutcome(rewriting=None, tried=tried, exhausted=False)
    return SearchOutcome(rewriting=None, tried=tried, exhausted=True)
