"""Core algorithms: the paper's contribution.

Sub-modules map to paper sections:

* :mod:`embedding` — Definition 2.1 (embeddings, ``P(t)``, ``P^w(t)``).
* :mod:`canonical` — canonical models and ``τ`` (Section 2.1).
* :mod:`containment` — ``⊑``, ``≡``, ``⊑w``, ``≡w`` (Section 2.2, [14]).
* :mod:`composition` — ``glb`` and ``R ∘ V`` (Section 2.3).
* :mod:`selection` — ``P≥k``/``P≤k``/``=k⇒`` (Section 3.1).
* :mod:`transform` — ``Q_r//``, ``l//Q``, ``Q+l``, ``Q^{j→}`` (§4, §5.2, §5.3).
* :mod:`stability` — Proposition 4.1, GNF/∗ (Definition 5.3).
* :mod:`candidates` — natural rewriting candidates (Section 4).
* :mod:`minimize` — non-redundancy (after [10], for Prop 3.4).
* :mod:`decide` — bounded exhaustive search (Proposition 3.4).
* :mod:`rewrite` — the full solver (Sections 4–5).
* :mod:`oracle` — brute-force semantic cross-checks (test infrastructure).
"""

from .embedding import (
    Matcher,
    TreeIndex,
    evaluate,
    evaluate_forest,
    find_embedding,
    is_model,
    weak_output_images,
)
from .canonical import (
    CanonicalEngine,
    CanonicalModel,
    canonical_models,
    incremental_models,
    count_canonical_models,
    star_length,
    tau,
)
from .containment import (
    STATS,
    ContainmentStats,
    cache_limit,
    canonical_containment,
    clear_cache,
    contains,
    contains_all,
    equivalent,
    set_cache_limit,
    expansion_bound,
    hom_containment,
    hom_exists,
    weakly_contains,
    weakly_equivalent,
)
from .composition import compose, glb
from .selection import (
    combine,
    last_descendant_selection_depth,
    selection_prefix_all_child,
    sub_ge,
    sub_gt,
    sub_le,
    sub_lt,
)
from .transform import extend, label_descendant, lift_output, relax_root
from .stability import gnf_witnesses, is_in_gnf, is_stable
from .candidates import is_natural_candidate, natural_candidates
from .minimize import is_non_redundant, minimize, redundant_branches
from .decide import SearchOutcome, enumerate_candidates, exhaustive_search
from .rewrite import RewriteResult, RewriteSolver, RewriteStatus, find_rewriting
from .oracle import (
    contains_bounded,
    enumerate_trees,
    equivalent_bounded,
    find_counterexample,
    oracle_alphabet,
)
from .contained import (
    UnionRewriting,
    contained_rewritings,
    find_union_rewriting,
    union_contains,
)

__all__ = [
    # embedding
    "Matcher",
    "TreeIndex",
    "evaluate",
    "evaluate_forest",
    "find_embedding",
    "is_model",
    "weak_output_images",
    # canonical
    "CanonicalEngine",
    "CanonicalModel",
    "canonical_models",
    "incremental_models",
    "count_canonical_models",
    "star_length",
    "tau",
    # containment
    "STATS",
    "ContainmentStats",
    "cache_limit",
    "canonical_containment",
    "clear_cache",
    "contains",
    "contains_all",
    "equivalent",
    "set_cache_limit",
    "expansion_bound",
    "hom_containment",
    "hom_exists",
    "weakly_contains",
    "weakly_equivalent",
    # composition
    "compose",
    "glb",
    # selection
    "combine",
    "last_descendant_selection_depth",
    "selection_prefix_all_child",
    "sub_ge",
    "sub_gt",
    "sub_le",
    "sub_lt",
    # transform
    "extend",
    "label_descendant",
    "lift_output",
    "relax_root",
    # stability
    "gnf_witnesses",
    "is_in_gnf",
    "is_stable",
    # candidates
    "is_natural_candidate",
    "natural_candidates",
    # minimize
    "is_non_redundant",
    "minimize",
    "redundant_branches",
    # decide
    "SearchOutcome",
    "enumerate_candidates",
    "exhaustive_search",
    # rewrite
    "RewriteResult",
    "RewriteSolver",
    "RewriteStatus",
    "find_rewriting",
    # oracle
    "contains_bounded",
    "enumerate_trees",
    "equivalent_bounded",
    "find_counterexample",
    "oracle_alphabet",
    # contained / union rewritings (§6 open problems 3 and 5)
    "UnionRewriting",
    "contained_rewritings",
    "find_union_rewriting",
    "union_contains",
]
