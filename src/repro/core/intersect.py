"""Intersection rewritings: answering ``P`` as ``(R1∘V1) ∩ … ∩ (Rk∘Vk)``.

Single-view rewriting (Section 2.4) needs one view whose composition is
*equivalent* to the query; that caps how many queries are
view-answerable.  Cautis/Deutsch/Ileana/Onose ("Rewriting XPath Queries
using View Intersections") show that intersecting several compensated
views answers strictly more queries inside XP{//,[],*} — at the price
of an intractable general problem, with a tractable subfragment.  This
module is the *pattern-level* half of that idea:

* a **part** is one view's compensated composition ``Qi = Ri ∘ Vi``
  with ``P ⊑ Qi`` verified (so ``P(t) ⊆ Qi(t)`` on every ``t``) — the
  engine builds parts from the natural candidates of §3.1;
* :func:`merge_parts` merges the parts into a single *merged pattern*
  ``M`` whose evaluation equals ``∩ Qi(t)`` whenever the merge is
  **exact** (see below). The caller then decides ``M ⊑ P`` with one
  ordinary containment test; together with the per-part forward
  containments this closes the chain

      P(t) ⊆ ∩ Qi(t) ⊆ M(t) ⊆ P(t)

  and the intersection answers the query exactly.

Exactness — when does ``∩ Qi(t) ⊆ M(t)`` hold?
----------------------------------------------
All parts must agree on the selection spine: same depth ``d`` (the
query's), identical top-down axis sequences, and position-wise
glb-compatible labels.  ``M`` is then the shared spine (glb labels)
carrying *every* part's branches.  A node ``n ∈ ∩ Qi(t)`` gives one
embedding ``ei`` per part, but a single embedding of ``M`` needs the
parts' spine images to coincide.  A spine position is **forced** when
every embedding necessarily maps it to the same tree node:

* *top-forced* — all axes above it are child edges (the image is the
  unique depth-``p`` node on the root path), or
* *bottom-forced* — all axes below it are child edges (the image is
  the unique ancestor of ``n`` at child-distance ``d − p``).

With at most one descendant edge on the spine every position is forced
and the merge is unconditionally exact — that is the **tractable**
regime (``tractable_only=True``, the default, mirroring the paper's
tractability/completeness toggle).  With ``tractable_only=False`` a
merge with unforced positions is still accepted when each maximal
unforced segment is **dominated** by one part ``j``: at every position
of the segment the glb label equals part ``j``'s label and every other
part's branch set is a subset (up to isomorphism) of part ``j``'s —
then ``ej``'s images witness the whole segment and exactness survives.
Merges that satisfy neither condition are rejected (``None``), never
guessed at: the engine simply keeps the direct plan, so the toggle
trades completeness, not soundness.
"""

from __future__ import annotations

from ..patterns.ast import Axis, Pattern, PNode
from .composition import glb

__all__ = [
    "forced_spine_positions",
    "fragment_views",
    "merge_parts",
    "spine_branches",
]


def forced_spine_positions(axes: list[Axis]) -> list[bool]:
    """Which of the ``d+1`` spine positions every embedding must agree on.

    Position ``p`` is forced iff ``axes[:p]`` are all child edges
    (top-forced) or ``axes[p:]`` are all child edges (bottom-forced).
    The root and the output position are always forced.
    """
    d = len(axes)
    top = [True] * (d + 1)
    for p in range(1, d + 1):
        top[p] = top[p - 1] and axes[p - 1] is Axis.CHILD
    bottom = [True] * (d + 1)
    for p in range(d - 1, -1, -1):
        bottom[p] = bottom[p + 1] and axes[p] is Axis.CHILD
    return [t or b for t, b in zip(top, bottom)]


def _subtree_key(axis: Axis, node: PNode):
    """Order-insensitive canonical key of one branch (axis + subtree)."""
    return (
        int(axis),
        node.label,
        tuple(sorted(_subtree_key(a, c) for a, c in node.edges)),
    )


def spine_branches(pattern: Pattern) -> list[list[tuple[Axis, PNode]]]:
    """Per spine position, the non-spine edges hanging off that node.

    The spine edge out of each position is excluded; every edge of the
    output node is a branch (there is no spine edge below it).
    """
    path = pattern.selection_path()
    branches: list[list[tuple[Axis, PNode]]] = []
    for p, node in enumerate(path):
        spine_child = path[p + 1] if p + 1 < len(path) else None
        branches.append(
            [
                (axis, child)
                for axis, child in node.edges
                if child is not spine_child
            ]
        )
    return branches


def _dominated_segment(
    segment: list[int],
    labels: list[str],
    paths: list[list[PNode]],
    branch_keys: list[list[frozenset]],
) -> bool:
    """Is some part ``j`` a uniform witness for the whole unforced segment?

    Part ``j`` dominates when, at every position of the segment, the
    merged (glb) label equals ``j``'s own label and every other part's
    branch set is an isomorphism-subset of ``j``'s — then ``ej``'s spine
    images satisfy all of ``M``'s constraints over the segment.
    """
    for j in range(len(paths)):
        if all(
            labels[p] == paths[j][p].label
            and all(
                branch_keys[i][p] <= branch_keys[j][p]
                for i in range(len(paths))
                if i != j
            )
            for p in segment
        ):
            return True
    return False


def merge_parts(
    parts: list[Pattern], *, tractable_only: bool = True
) -> Pattern | None:
    """Merge part patterns into one whose evaluation is ``∩ parts(t)``.

    Returns ``None`` whenever exactness cannot be established — spines
    of different shapes, glb-incompatible labels, or (descendant-heavy
    spines) no dominating part for some unforced segment.  A non-None
    result ``M`` satisfies ``∩ parts(t) ⊆ M(t)`` on every document and
    ``M ⊑ parts[i]`` for each part, so ``M(t) = ∩ parts(t)``.
    """
    if len(parts) < 2 or any(part.is_empty for part in parts):
        return None
    axes = parts[0].selection_axes()
    if any(part.selection_axes() != axes for part in parts[1:]):
        return None
    d = len(axes)
    paths = [part.selection_path() for part in parts]
    labels: list[str] = []
    for p in range(d + 1):
        label = paths[0][p].label
        for path in paths[1:]:
            merged_label = glb(label, path[p].label)
            if merged_label is None:
                return None
            label = merged_label
        labels.append(label)
    forced = forced_spine_positions(axes)
    if not all(forced):
        if tractable_only:
            return None
        all_branches = [spine_branches(part) for part in parts]
        branch_keys = [
            [
                frozenset(_subtree_key(axis, node) for axis, node in row)
                for row in per_part
            ]
            for per_part in all_branches
        ]
        segment: list[int] = []
        for p in range(d + 2):
            if p <= d and not forced[p]:
                segment.append(p)
                continue
            if segment and not _dominated_segment(
                segment, labels, paths, branch_keys
            ):
                return None
            segment = []
    spine = [PNode(labels[p]) for p in range(d + 1)]
    for p in range(d):
        spine[p].add(axes[p], spine[p + 1])
    for part in parts:
        for p, row in enumerate(spine_branches(part)):
            for axis, child in row:
                spine[p].add(axis, child.deep_copy())
    return Pattern(spine[0], spine[d])


def fragment_views(
    query: Pattern,
    *,
    depth: int | None = None,
    position: int | None = None,
    split: "tuple[int, ...] | None" = None,
) -> tuple[Pattern, Pattern] | None:
    """Split one spine node's branch constraints across two prefix views.

    The inverse of :func:`merge_parts` as a view *generator*: two
    depth-``depth`` prefixes of the query (default one above the
    output), each keeping only part of the branch subtrees at spine
    position ``position`` (default: the eligible position with the most
    branches) and everything else.  ``split`` names the branch indexes
    (edge order at that position) the first view keeps; the second
    keeps the complement (default: even indexes).  Each view
    over-approximates the query, but their compensated compositions
    merge back to it, so
    :meth:`~repro.views.engine.QueryEngine.plan_intersection` can find a
    width-2 plan.  This is the paper's motivating multi-source scenario
    (each provider publishes part of the predicates) made concrete for
    workload/benchmark construction.

    Note the halves are *structurally* weaker, not always semantically:
    a branch implied by the rest of its half (by the spine itself, or by
    a sibling branch) leaves that half still equivalent to the full
    prefix, and a single view then answers the query.  Callers wanting
    intersection-*only* views must probe the result — the catalog
    benchmark plans each candidate pair against a throwaway engine,
    trying several splits, and keeps only ``"intersection"`` kinds.

    The default position is restricted to positions that can work at
    all: *forced* ones (:func:`forced_spine_positions` over the query's
    full spine — at an unforced position the halves' disjoint branch
    sets defeat the dominance certificate and :func:`merge_parts`
    rejects the merge) and *strictly above the view output* (the
    natural-candidate compensation carries every branch of the output
    position, which would restore a split there into both compositions
    and make each half equivalent on its own).  An explicit ``position``
    is taken as given.

    Returns ``None`` when the query is empty, no eligible position has
    at least two branches to split, ``depth``/``position`` are out of
    range (``0 ≤ position ≤ depth ≤ query.depth``), or ``split`` does
    not leave both views at least one branch.
    """
    if query.is_empty:
        return None
    d = query.depth
    m = d - 1 if depth is None else depth
    if not 0 <= m <= d:
        return None
    path = query.selection_path()
    rows = [
        [
            child
            for _, child in path[p].edges
            if child is not (path[p + 1] if p < d else None)
        ]
        for p in range(m + 1)
    ]
    if position is None:
        forced = forced_spine_positions(query.selection_axes())
        eligible = [p for p in range(m) if forced[p]]
        if not eligible:
            return None
        position = max(eligible, key=lambda p: (len(rows[p]), -p))
    if not 0 <= position <= m or len(rows[position]) < 2:
        return None
    count = len(rows[position])
    first = (
        {i for i in range(count) if i % 2 == 0}
        if split is None
        else {i for i in split if 0 <= i < count}
    )
    if not first or len(first) == count:
        return None

    def build(keep_first: bool) -> Pattern:
        copy, mapping = query.copy_with_map()
        cpath = [mapping[node] for node in path]
        node = cpath[position]
        spine_child = cpath[position + 1] if position < d else None
        branches = [c for _, c in node.edges if c is not spine_child]
        drop = {
            id(c)
            for i, c in enumerate(branches)
            if (i in first) != keep_first
        }
        node.edges = [(a, c) for a, c in node.edges if id(c) not in drop]
        if m < d:
            cpath[m].edges = [
                (a, c) for a, c in cpath[m].edges if c is not cpath[m + 1]
            ]
        return Pattern(cpath[0], cpath[m])

    return build(True), build(False)
