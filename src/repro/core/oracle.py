"""Semantic (model-theoretic) oracles for containment — test infrastructure.

The containment engine in :mod:`repro.core.containment` is the *decision
procedure*; this module provides independent, brute-force checks used to
cross-validate it:

* :func:`enumerate_trees` — all unordered labeled trees up to a size
  bound over a finite alphabet (deduplicated up to isomorphism);
* :func:`contains_bounded` — exhaustively checks ``P1(t) ⊆ P2(t)`` over
  all such trees.  A ``False`` answer *refutes* containment outright; a
  ``True`` answer confirms it only up to the size bound.
* :func:`find_counterexample` — returns a witness tree on refutation.

These are exponential and intended for small instances (tests, examples
and the C7 benchmark's sanity layer).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

from ..patterns.ast import Pattern
from ..xmltree.node import BOTTOM_LABEL, TNode
from ..xmltree.tree import XMLTree
from .embedding import evaluate

__all__ = [
    "enumerate_trees",
    "contains_bounded",
    "equivalent_bounded",
    "find_counterexample",
    "oracle_alphabet",
]


def oracle_alphabet(*patterns: Pattern) -> tuple[str, ...]:
    """The alphabet to quantify over: pattern labels plus one fresh label.

    Canonical-model reasoning shows one extra label (standing in for "any
    label not mentioned") suffices to expose wildcard/label distinctions.
    """
    labels: set[str] = set()
    for pattern in patterns:
        labels |= pattern.labels()
    return tuple(sorted(labels)) + (BOTTOM_LABEL,)


@lru_cache(maxsize=None)
def _tree_specs(size: int, alphabet: tuple[str, ...]) -> tuple[tuple, ...]:
    """Canonical specs of all unordered trees with exactly ``size`` nodes.

    A spec is ``(label, (child_spec, ...))`` with children sorted, so each
    isomorphism class appears exactly once.
    """
    if size < 1:
        return ()
    specs = []
    for label in alphabet:
        for forest in _forest_specs(size - 1, alphabet):
            specs.append((label, forest))
    return tuple(specs)


@lru_cache(maxsize=None)
def _forest_specs(total: int, alphabet: tuple[str, ...]) -> tuple[tuple, ...]:
    """All sorted tuples of tree specs with sizes summing to ``total``."""
    if total == 0:
        return ((),)
    result: set[tuple] = set()
    for first_size in range(1, total + 1):
        for tree in _tree_specs(first_size, alphabet):
            for rest in _forest_specs(total - first_size, alphabet):
                result.add(tuple(sorted(rest + (tree,))))
    return tuple(sorted(result))


def _build(spec: tuple) -> TNode:
    label, children = spec
    node = TNode(label)
    for child_spec in children:
        node.add_child(_build(child_spec))
    return node


def enumerate_trees(
    max_size: int, alphabet: Sequence[str]
) -> Iterator[XMLTree]:
    """All unordered labeled trees with 1..max_size nodes over ``alphabet``.

    Each isomorphism class is produced exactly once.  The count grows
    exponentially; keep ``max_size`` small (≤ 5 for alphabets of 3).
    """
    alpha = tuple(alphabet)
    for size in range(1, max_size + 1):
        for spec in _tree_specs(size, alpha):
            yield XMLTree(_build(spec))


def contains_bounded(
    p1: Pattern,
    p2: Pattern,
    max_size: int = 4,
    alphabet: Sequence[str] | None = None,
    weak: bool = False,
) -> bool:
    """Exhaustive bounded check of ``P1 ⊑ P2`` (or ``⊑w``).

    Quantifies over every tree up to ``max_size`` nodes.  ``False`` is a
    definitive refutation; ``True`` holds only up to the bound.
    """
    if p1.is_empty:
        return True
    if p2.is_empty:
        # Refuted as soon as P1 produces anything.
        return find_counterexample(p1, p2, max_size, alphabet, weak) is None
    return find_counterexample(p1, p2, max_size, alphabet, weak) is None


def find_counterexample(
    p1: Pattern,
    p2: Pattern,
    max_size: int = 4,
    alphabet: Sequence[str] | None = None,
    weak: bool = False,
) -> tuple[XMLTree, TNode] | None:
    """A tree ``t`` and node ``o ∈ P1(t) \\ P2(t)``, or None.

    Uses :func:`oracle_alphabet` when ``alphabet`` is None.
    """
    if p1.is_empty:
        return None
    alpha = tuple(alphabet) if alphabet is not None else oracle_alphabet(p1, p2)
    for tree in enumerate_trees(max_size, alpha):
        out1 = evaluate(p1, tree, weak=weak)
        if not out1:
            continue
        out2 = evaluate(p2, tree, weak=weak) if not p2.is_empty else set()
        extra = out1 - out2
        if extra:
            return tree, next(iter(extra))
    return None


def equivalent_bounded(
    p1: Pattern,
    p2: Pattern,
    max_size: int = 4,
    alphabet: Sequence[str] | None = None,
    weak: bool = False,
) -> bool:
    """Bounded equivalence: bounded containment in both directions."""
    return contains_bounded(p1, p2, max_size, alphabet, weak) and contains_bounded(
        p2, p1, max_size, alphabet, weak
    )
