"""Canonical models of patterns (paper Section 2.1).

A *canonical model* of a pattern ``P`` is a tree obtained by (1) replacing
every wildcard with the special label ⊥, and (2) replacing every
descendant edge with a path of one or more edges whose interior nodes are
labeled ⊥.  ``τ(P)`` — every descendant edge instantiated with a single
edge — is the *minimal* canonical model (footnote 1 of the paper).

Canonical models come with a distinguished node: the image of the
pattern's output node.  Containment testing (Section 2.2, after [14])
quantifies over canonical models whose expansion lengths are bounded by a
function of the containing pattern — see :mod:`repro.core.containment`.

Incremental enumeration
-----------------------
Two enumerators are provided:

* :func:`canonical_models` — the simple generator: one fresh tree per
  expansion vector, in lexicographic (``itertools.product``) order.
  Models are independent objects; keep as many as you like.
* :class:`CanonicalEngine` — the hot-path enumerator behind the
  containment engine.  It builds the **maximal** canonical tree (every
  ⊥-chain at full length) exactly once, numbers it in postorder, and then
  walks the expansion vectors in **reflected-Gray-code order**: each step
  changes a single ⊥-chain by one node, which is realized by an O(1)
  splice of the live tree plus an O(1) patch of the dynamic
  parent/child-mask tables.  Because splicing interior chain nodes never
  reorders the surviving nodes, the postorder numbering, the contiguous
  strict-descendant ranges and the per-node ancestor masks computed from
  the maximal tree remain valid for every model — only an ``active``
  bitmask changes.  Candidate embeddings of a container pattern are then
  decided by the bitset DP of :meth:`CanonicalEngine.embeds`, with the
  output image pinned to the distinguished node.

  Gray-code order starts at the all-ones vector, i.e. the minimal model
  ``τ(P)`` is always checked first — the cheapest model and empirically
  the most likely counterexample — and cheap (small) vectors cluster
  early, giving the containment test its early-termination ordering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..xmltree.node import BOTTOM_LABEL, TNode
from ..xmltree.tree import XMLTree
from .embedding import TreeIndex, iter_bits, pattern_postorder

__all__ = [
    "CanonicalModel",
    "CanonicalEngine",
    "tau",
    "canonical_models",
    "incremental_models",
    "count_canonical_models",
    "gray_vectors",
    "gray_vector_at",
    "star_length",
]


@dataclass
class CanonicalModel:
    """A canonical model with its distinguished output node.

    Attributes
    ----------
    tree:
        The instantiated document tree.
    output:
        The tree node corresponding to the pattern's output node.
    node_map:
        Mapping from pattern nodes to their corresponding tree nodes.
    expansion:
        The chosen path length for each descendant edge, keyed by
        ``(id(parent), id(child))`` of the pattern edge.
    """

    tree: XMLTree
    output: TNode
    node_map: dict[PNode, TNode]
    expansion: dict[tuple[int, int], int]


def _instantiate(
    pattern: Pattern, lengths: dict[tuple[int, int], int]
) -> CanonicalModel:
    """Build the canonical model for the given descendant-edge lengths.

    Iterative, so deep chain patterns never hit the recursion limit.
    """
    node_map: dict[PNode, TNode] = {}
    root_p = pattern.root
    assert root_p is not None
    # Each stack entry: (pattern node, tree node to attach it under or
    # None for the root).  Attachment anchors already account for the
    # ⊥-interior of descendant edges.
    label = BOTTOM_LABEL if root_p.label == WILDCARD else root_p.label
    root_t = TNode(label)
    node_map[root_p] = root_t
    stack: list[PNode] = [root_p]
    while stack:
        pnode = stack.pop()
        tnode = node_map[pnode]
        for axis, pchild in pnode.edges:
            sub_label = BOTTOM_LABEL if pchild.label == WILDCARD else pchild.label
            sub = TNode(sub_label)
            node_map[pchild] = sub
            if axis is Axis.CHILD:
                tnode.add_child(sub)
            else:
                length = lengths[(id(pnode), id(pchild))]
                anchor = tnode
                for _ in range(length - 1):
                    anchor = anchor.new_child(BOTTOM_LABEL)
                anchor.add_child(sub)
            stack.append(pchild)
    return CanonicalModel(
        tree=XMLTree(root_t),
        output=node_map[pattern.output],  # type: ignore[index]
        node_map=node_map,
        expansion=dict(lengths),
    )


def tau(pattern: Pattern) -> CanonicalModel:
    """The transformation ``τ``: the minimal canonical model.

    Every wildcard becomes ⊥ and every descendant edge is instantiated
    with a single edge.  Each pattern node has exactly one corresponding
    tree node (returned in ``node_map``).
    """
    pattern._require_nonempty()
    lengths = {
        (id(parent), id(child)): 1
        for parent, axis, child in pattern.edges()
        if axis is Axis.DESCENDANT
    }
    return _instantiate(pattern, lengths)


def descendant_edges(pattern: Pattern) -> list[tuple[PNode, PNode]]:
    """All descendant edges of the pattern as ``(parent, child)`` pairs."""
    return [
        (parent, child)
        for parent, axis, child in pattern.edges()
        if axis is Axis.DESCENDANT
    ]


def canonical_models(
    pattern: Pattern, max_length: int
) -> Iterator[CanonicalModel]:
    """Enumerate canonical models with expansions in ``1..max_length``.

    The number of models is ``max_length ** (#descendant edges)`` — the
    exponential heart of the coNP containment test.  Every yielded model
    is an independent tree; for the zero-copy enumerator used by the
    containment hot path see :class:`CanonicalEngine` and
    :func:`incremental_models`.
    """
    pattern._require_nonempty()
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    edges = descendant_edges(pattern)
    keys = [(id(parent), id(child)) for parent, child in edges]
    for combo in itertools.product(range(1, max_length + 1), repeat=len(edges)):
        yield _instantiate(pattern, dict(zip(keys, combo)))


def count_canonical_models(pattern: Pattern, max_length: int) -> int:
    """Number of canonical models enumerated for the given bound."""
    if pattern.is_empty:
        return 0
    return max_length ** len(descendant_edges(pattern))


def gray_vectors(digits: int, base: int) -> Iterator[tuple[int, ...]]:
    """All vectors of ``{0..base-1}**digits`` in reflected-Gray order.

    Successive vectors differ in exactly one digit, by exactly ±1; the
    first vector is all zeros.  This is Knuth's loopless mixed-radix
    reflected Gray code (TAOCP 7.2.1.1, Algorithm H) specialised to a
    uniform radix.
    """
    if digits == 0:
        yield ()
        return
    if base < 1:
        raise ValueError("base must be >= 1")
    if base == 1:
        # Algorithm H needs radix >= 2; the single-vector case is trivial.
        yield (0,) * digits
        return
    a = [0] * digits
    d = [1] * digits
    f = list(range(digits + 1))
    while True:
        yield tuple(a)
        j = f[0]
        f[0] = 0
        if j == digits:
            return
        a[j] += d[j]
        if a[j] == 0 or a[j] == base - 1:
            d[j] = -d[j]
            f[j] = f[j + 1]
            f[j + 1] = j + 1


def gray_vector_at(rank: int, digits: int, base: int) -> tuple[int, ...]:
    """The ``rank``-th vector of :func:`gray_vectors`, in O(digits).

    Closed form of the reflected code: write ``rank`` in base ``base``
    (digit 0 fastest-changing, matching :func:`gray_vectors`); a digit is
    reflected (``base-1-d``) iff the sum of the already-emitted
    more-significant *Gray* digits is odd.  This is what lets
    :meth:`CanonicalEngine.models_slice` start a Gray-code segment at an
    arbitrary rank without walking the prefix — the entry point for
    process-sharded model enumeration.
    """
    if base < 1:
        raise ValueError("base must be >= 1")
    if rank < 0 or rank >= base**digits:
        raise ValueError(f"rank {rank} outside 0..{base**digits - 1}")
    if base == 1:
        return (0,) * digits
    raw = [0] * digits
    for i in range(digits):
        rank, raw[i] = divmod(rank, base)
    vector = [0] * digits
    emitted_sum = 0
    for i in range(digits - 1, -1, -1):
        vector[i] = raw[i] if emitted_sum % 2 == 0 else base - 1 - raw[i]
        emitted_sum += vector[i]
    return tuple(vector)


class _QPlan:
    """A container pattern compiled against one engine's maximal tree.

    Holds the postorder DP steps (label base mask, output flag, child
    edges as ``(is_child_axis, postorder_slot)``), the per-descendant-
    edge relevance vector shaping the embeds-memo fingerprint, the
    fingerprint→verdict memo itself, and a reusable sat buffer.
    """

    __slots__ = ("q", "steps", "rel", "sat", "memo")

    def __init__(
        self,
        q: Pattern,
        steps: list[tuple[int | None, bool, list[tuple[bool, int]]]],
        rel: list[bool],
        n: int,
    ):
        self.q = q
        self.steps = steps
        self.rel = rel
        self.sat = [0] * n
        self.memo: dict[int, bool] = {}


class CanonicalEngine:
    """Incremental canonical-model enumerator with a bitset embed test.

    Builds the maximal canonical tree of ``pattern`` (all ⊥-chains at
    ``max_length``) once, then steps through expansion vectors in Gray
    order, splicing one ⊥ node in or out of the live tree per step.  The
    fixed postorder numbering of the maximal tree supplies contiguous
    strict-descendant ranges and ancestor masks that stay valid across
    every model; only the ``active`` mask, the dynamic parent array and a
    couple of child-mask rows change per step.

    Use :meth:`models` to drive the enumeration and :meth:`embeds` to ask
    whether a container pattern (weakly) embeds into the *current* model
    with its output pinned to the distinguished node.
    """

    __slots__ = (
        "pattern",
        "max_length",
        "total",
        "_edges",
        "_edge_keys",
        "_lengths",
        "_node_map",
        "_tree",
        "_index",
        "_slots",
        "_u_idx",
        "_c_idx",
        "_active",
        "_parent_dyn",
        "_child_mask_dyn",
        "_patched_mask",
        "_slot_masks",
        "_chain_parent_masks",
        "_c_bits",
        "_output_idx",
        "_root_bit",
        "_q_cache",
        "memo_hits",
        "memo_misses",
    )

    def __init__(self, pattern: Pattern, max_length: int):
        pattern._require_nonempty()
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.pattern = pattern
        self.max_length = max_length
        self._edges = descendant_edges(pattern)
        self._edge_keys = [(id(p), id(c)) for p, c in self._edges]
        self.total = max_length ** len(self._edges)

        # Maximal tree: every descendant edge expanded to ``max_length``.
        node_map: dict[PNode, TNode] = {}
        chain_nodes: dict[tuple[int, int], list[TNode]] = {}
        root_p = pattern.root
        assert root_p is not None
        label = BOTTOM_LABEL if root_p.label == WILDCARD else root_p.label
        root_t = TNode(label)
        node_map[root_p] = root_t
        stack: list[PNode] = [root_p]
        while stack:
            pnode = stack.pop()
            tnode = node_map[pnode]
            for axis, pchild in pnode.edges:
                sub_label = (
                    BOTTOM_LABEL if pchild.label == WILDCARD else pchild.label
                )
                sub = TNode(sub_label)
                node_map[pchild] = sub
                if axis is Axis.CHILD:
                    tnode.add_child(sub)
                else:
                    interior: list[TNode] = []
                    anchor = tnode
                    for _ in range(max_length - 1):
                        anchor = anchor.new_child(BOTTOM_LABEL)
                        interior.append(anchor)
                    anchor.add_child(sub)
                    chain_nodes[(id(pnode), id(pchild))] = interior
                stack.append(pchild)

        self._node_map = node_map
        self._tree = XMLTree(root_t)
        index = TreeIndex(root_t)
        self._index = index
        self._slots = [
            [index.index[id(node)] for node in chain_nodes[key]]
            for key in self._edge_keys
        ]
        self._u_idx = [index.index[id(node_map[p])] for p, _ in self._edges]
        self._c_idx = [index.index[id(node_map[c])] for _, c in self._edges]
        self._output_idx = index.index[id(node_map[pattern.output])]  # type: ignore[index]
        self._root_bit = 1 << (index.n - 1)
        # Per-edge masks used by the embeds memo: the OR of the edge's
        # ⊥-slot bits, the chain-child bit, and (for the relevance DP's
        # union-parents step) every parent the chain child can have
        # across expansion vectors.
        self._slot_masks = [
            sum(1 << s for s in slots) for slots in self._slots
        ]
        self._chain_parent_masks = [
            self._slot_masks[j] | (1 << self._u_idx[j])
            for j in range(len(self._edges))
        ]
        self._c_bits = [1 << c for c in self._c_idx]
        self._q_cache: dict[int, "_QPlan"] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self._reset()

    # ------------------------------------------------------------------
    # Dynamic structure
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """(Re)initialize the live structure to the all-ones vector τ."""
        index = self._index
        self._active = index.all_mask
        self._parent_dyn = list(index.parent)
        self._child_mask_dyn = list(index.child_mask)
        self._lengths = [self.max_length] * len(self._edges)
        # At full length every dynamic parent equals its static one.
        self._patched_mask = 0
        for j in range(len(self._edges)):
            while self._lengths[j] > 1:
                self._shrink(j)

    def _grow(self, j: int) -> None:
        """Expansion length of edge ``j``: ℓ → ℓ + 1 (activate one slot)."""
        length = self._lengths[j]
        slots = self._slots[j]
        new_slot = slots[length - 1]
        prev_last = slots[length - 2] if length >= 2 else self._u_idx[j]
        c = self._c_idx[j]
        bit_c = 1 << c
        self._child_mask_dyn[prev_last] = (
            self._child_mask_dyn[prev_last] & ~bit_c
        ) | (1 << new_slot)
        self._child_mask_dyn[new_slot] = bit_c
        self._parent_dyn[new_slot] = prev_last
        self._parent_dyn[c] = new_slot
        self._active |= 1 << new_slot
        self._lengths[j] = length + 1
        # ``parent_dyn`` diverges from the static parent array only at
        # chain children whose edge is below full length; track those
        # bits so the DP can batch everything else word-at-a-time.
        if self._lengths[j] == self.max_length:
            self._patched_mask &= ~bit_c
        else:
            self._patched_mask |= bit_c
        # Splice the live tree: prev_last → new_slot → c.
        post = self._index.post
        new_t, prev_t, c_t = post[new_slot], post[prev_last], post[c]
        new_t.add_child(c_t)
        prev_t.add_child(new_t)

    def _shrink(self, j: int) -> None:
        """Expansion length of edge ``j``: ℓ → ℓ - 1 (deactivate one slot)."""
        length = self._lengths[j]
        slots = self._slots[j]
        dead_slot = slots[length - 2]
        prev = self._parent_dyn[dead_slot]
        c = self._c_idx[j]
        self._child_mask_dyn[prev] = (
            self._child_mask_dyn[prev] & ~(1 << dead_slot)
        ) | (1 << c)
        self._parent_dyn[c] = prev
        self._active &= ~(1 << dead_slot)
        self._lengths[j] = length - 1
        # Shrinking always leaves the edge below full length.
        self._patched_mask |= 1 << c
        # Splice the live tree: prev adopts c, the dead slot detaches.
        post = self._index.post
        post[prev].add_child(post[c])
        post[dead_slot].detach()

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def models(self) -> Iterator["CanonicalEngine"]:
        """Step through all expansion vectors (Gray order, τ first).

        Yields ``self`` after each mutation; the engine's state (and the
        live tree from :meth:`current_model`) is only valid until the
        next step.  Restartable: each call re-enumerates from τ.
        """
        self._reset()
        previous: tuple[int, ...] | None = None
        for vector in gray_vectors(len(self._edges), self.max_length):
            if previous is not None:
                for j, (old, new) in enumerate(zip(previous, vector)):
                    if old != new:
                        if new > old:
                            self._grow(j)
                        else:
                            self._shrink(j)
                        break
            previous = vector
            yield self

    def _seek(self, vector: tuple[int, ...]) -> None:
        """Jump the live structure to an arbitrary expansion vector.

        ``vector`` is a Gray digit vector (digit ``g`` ↦ expansion length
        ``g + 1``), applied one grow/shrink at a time so every splice
        invariant holds throughout.
        """
        for j, digit in enumerate(vector):
            want = digit + 1
            while self._lengths[j] < want:
                self._grow(j)
            while self._lengths[j] > want:
                self._shrink(j)

    def models_slice(self, start: int, count: int) -> Iterator["CanonicalEngine"]:
        """Step through Gray ranks ``start .. start+count-1``.

        Same per-rank states as :meth:`models` (rank 0 is τ), but the
        segment starts at an arbitrary rank via :func:`gray_vector_at`
        without walking the prefix — this is the unit of work handed to
        each process shard.  ``models_slice(0, self.total)`` is exactly
        ``models()``.
        """
        if start < 0 or count < 0 or start + count > self.total:
            raise ValueError(
                f"slice {start}..{start + count} outside 0..{self.total}"
            )
        if count == 0:
            return
        self._reset()
        digits = len(self._edges)
        previous = gray_vector_at(start, digits, self.max_length)
        self._seek(previous)
        yield self
        for rank in range(start + 1, start + count):
            vector = gray_vector_at(rank, digits, self.max_length)
            for j, (old, new) in enumerate(zip(previous, vector)):
                if old != new:
                    if new > old:
                        self._grow(j)
                    else:
                        self._shrink(j)
                    break
            previous = vector
            yield self

    def current_model(self) -> CanonicalModel:
        """A :class:`CanonicalModel` view of the current state.

        The returned ``tree``/``node_map`` alias the engine's live tree:
        they are valid only until the next enumeration step (copy them if
        you need persistence).
        """
        return CanonicalModel(
            tree=self._tree,
            output=self._node_map[self.pattern.output],  # type: ignore[index]
            node_map=self._node_map,
            expansion={
                key: length
                for key, length in zip(self._edge_keys, self._lengths)
            },
        )

    # ------------------------------------------------------------------
    # Bitset embedding test
    # ------------------------------------------------------------------
    #: Bound on ``_q_cache``: engines outlive single containment calls
    #: via the cross-call LRU, so the per-engine container cache must not
    #: grow with the number of distinct containers ever tested.
    _Q_CACHE_LIMIT = 64
    #: Bound on each plan's fingerprint→verdict memo, cleared wholesale
    #: on overflow.  The clear is deterministic in enumeration order,
    #: which the sharded containment driver relies on to replay memo
    #: counters bit-identically to the inline walk.
    _MEMO_LIMIT = 8192

    def _plan_of(self, q: Pattern) -> "_QPlan":
        # The cache entry holds ``q`` itself: keying by id() alone would
        # let a garbage-collected pattern's address be reused by a new
        # one, serving a stale plan (and a wrong verdict).
        cached = self._q_cache.get(id(q))
        if cached is None or cached.q is not q:
            if len(self._q_cache) >= self._Q_CACHE_LIMIT:
                self._q_cache.clear()
            cached = self._compile_plan(q)
            self._q_cache[id(q)] = cached
        return cached

    def _compile_plan(self, q: Pattern) -> "_QPlan":
        """Compile ``q`` into postorder DP steps plus a relevance vector.

        The relevance vector marks the descendant edges whose expansion
        length can influence the DP verdict for this container.  It is
        derived from an *over-approximating* DP against the maximal
        tree: no activity restriction (wildcards range over every node,
        including all ⊥ slots), no output pinning, and union-parents for
        chain children (a chain child can attach to any of its slots or
        directly to the chain head, depending on the vector).  Every
        transition is monotone in the child sat sets, so each
        ``sat_star`` is a superset of the true sat set under *every*
        expansion vector.  An edge whose slots never enter any
        reachable sat set, and whose chain child is never the input of
        a child-axis step, therefore cannot affect the verdict.
        """
        index = self._index
        label_mask = index.label_mask
        nodes = pattern_postorder(q.root)  # type: ignore[arg-type]
        slot_of = {id(node): i for i, node in enumerate(nodes)}
        output_node = q.output
        steps: list[tuple[int | None, bool, list[tuple[bool, int]]]] = []
        for node in nodes:
            base = (
                None
                if node.label == WILDCARD
                else label_mask.get(node.label, 0)
            )
            edges = [
                (axis is Axis.CHILD, slot_of[id(child)])
                for axis, child in node.edges
            ]
            steps.append((base, node is output_node, edges))

        all_mask = index.all_mask
        c_bits = self._c_bits
        chain_parents = self._chain_parent_masks
        sat_star = [0] * len(steps)
        union_all = 0
        child_step_union = 0
        for i, (base, _is_out, edges) in enumerate(steps):
            cand = all_mask if base is None else base
            for is_child, child_slot in edges:
                if not cand:
                    break
                child_sat = sat_star[child_slot]
                if is_child:
                    child_step_union |= child_sat
                    acc = index.parents_of(child_sat)
                    for j, c_bit in enumerate(c_bits):
                        if child_sat & c_bit:
                            acc |= chain_parents[j]
                else:
                    acc = index.ancestors_of(child_sat)
                cand &= acc
            sat_star[i] = cand
            union_all |= cand

        rel = [
            bool(
                (self._slot_masks[j] & union_all)
                | (c_bits[j] & child_step_union)
            )
            for j in range(len(self._edges))
        ]
        return _QPlan(q, steps, rel, len(steps))

    def _embed_dp(self, plan: "_QPlan") -> int:
        """The word-parallel bitset DP; returns the root's sat mask."""
        index = self._index
        active = self._active
        patched = self._patched_mask
        parent_dyn = self._parent_dyn
        parents_of = index.parents_of
        ancestors_of = index.ancestors_of
        out_bit = 1 << self._output_idx
        sat = plan.sat
        for i, (base, is_out, edges) in enumerate(plan.steps):
            cand = active if base is None else base & active
            if is_out:
                cand &= out_bit
            for is_child, child_slot in edges:
                if not cand:
                    break
                child_sat = sat[child_slot]
                if not child_sat:
                    cand = 0
                    break
                if is_child:
                    plain = child_sat & ~patched
                    acc = parents_of(plain) if plain else 0
                    spliced = child_sat & patched
                    if spliced:
                        # Only chain children below full length have a
                        # dynamic parent differing from the static one.
                        for u in iter_bits(spliced):
                            p = parent_dyn[u]
                            if p >= 0:
                                acc |= 1 << p
                else:
                    # Ancestor masks of the maximal tree stay correct:
                    # splicing ⊥ interiors preserves ancestry among the
                    # surviving nodes, and ``cand`` is already restricted
                    # to active nodes.
                    acc = ancestors_of(child_sat)
                cand &= acc
            sat[i] = cand
        return sat[-1]

    def embeds(self, q: Pattern, weak: bool = False) -> bool:
        """Does ``q`` embed into the current model producing its output?

        Root-preserving unless ``weak``; the image of ``q``'s output node
        is pinned to the model's distinguished node, which is exactly the
        per-model condition of the canonical containment test.

        Verdicts are memoized per container on an *active-mask
        fingerprint*: the exact expansion length of every edge relevant
        to ``q`` (plus the ``weak`` flag), with irrelevant edges
        collapsed to a constant.  Gray-code steps that only toggle
        chains the container cannot observe short-circuit here instead
        of re-running the DP; hits and misses are counted on the engine
        and folded into ``ContainmentStats`` by the containment layer.
        """
        if q.is_empty:
            return False
        plan = self._plan_of(q)
        radix = self.max_length + 1
        fp = 1 if weak else 0
        rel = plan.rel
        for j, length in enumerate(self._lengths):
            fp = fp * radix + (length if rel[j] else 0)
        memo = plan.memo
        verdict = memo.get(fp)
        if verdict is not None:
            self.memo_hits += 1
            return verdict
        self.memo_misses += 1
        root_sat = self._embed_dp(plan)
        if weak:
            verdict = bool(root_sat)
        else:
            verdict = bool(root_sat & self._root_bit)
        if len(memo) >= self._MEMO_LIMIT:
            memo.clear()
        memo[fp] = verdict
        return verdict

    def embed_fingerprint(self, q: Pattern, weak: bool = False) -> int:
        """The :meth:`embeds` memo fingerprint of the *current* vector.

        Shard workers key their returned verdict maps by this value;
        because the relevance vector and the descendant-edge order are
        deterministic functions of ``(pattern, max_length, q)``, worker
        and driver engines agree on every fingerprint.
        """
        plan = self._plan_of(q)
        radix = self.max_length + 1
        fp = 1 if weak else 0
        rel = plan.rel
        for j, length in enumerate(self._lengths):
            fp = fp * radix + (length if rel[j] else 0)
        return fp

    def replay_models(
        self, q: Pattern, weak: bool, verdicts: dict[int, bool], last_rank: int
    ) -> bool:
        """Replay Gray ranks ``0..last_rank`` through the embeds memo.

        Used by the sharded containment driver: workers return
        fingerprint→verdict maps, and the driver pushes the rank
        sequence through its own engine's memo *without running the DP
        or touching the live tree* — so memo contents and hit/miss
        counters end up bit-identical to an inline :meth:`models` walk
        over the same ranks (including the deterministic
        overflow clear).  Returns the verdict at ``last_rank``.
        """
        plan = self._plan_of(q)
        radix = self.max_length + 1
        rel = plan.rel
        memo = plan.memo
        digits = len(self._edges)
        verdict = True
        for rank in range(last_rank + 1):
            vector = gray_vector_at(rank, digits, self.max_length)
            fp = 1 if weak else 0
            for j, digit in enumerate(vector):
                fp = fp * radix + (digit + 1 if rel[j] else 0)
            cached = memo.get(fp)
            if cached is not None:
                self.memo_hits += 1
                verdict = cached
            else:
                self.memo_misses += 1
                verdict = verdicts[fp]
                if len(memo) >= self._MEMO_LIMIT:
                    memo.clear()
                memo[fp] = verdict
        return verdict


def incremental_models(
    pattern: Pattern, max_length: int
) -> Iterator[CanonicalModel]:
    """Zero-copy canonical-model enumeration (Gray order, τ first).

    Yields :class:`CanonicalModel` views over **one shared mutable tree**
    that is spliced in place between yields — each yielded model is valid
    only until the next iteration step.  Use :func:`canonical_models`
    when models must outlive the loop.
    """
    pattern._require_nonempty()
    engine = CanonicalEngine(pattern, max_length)
    for state in engine.models():
        yield state.current_model()


def star_length(pattern: Pattern) -> int:
    """The longest chain of wildcard nodes joined by child edges.

    This is the quantity (``w`` in [14]) that bounds the descendant-edge
    expansion lengths a containment test must consider: a ⊥-path longer
    than every star chain of the containing pattern can always absorb
    extra length through one of its descendant edges.
    """
    if pattern.is_empty:
        return 0
    best = 0
    chain: dict[int, int] = {}
    root = pattern.root
    assert root is not None
    for node in pattern_postorder(root):
        if node.label == WILDCARD:
            longest_child = 0
            for axis, child in node.edges:
                if axis is Axis.CHILD and child.label == WILDCARD:
                    longest_child = max(longest_child, chain[id(child)])
            chain[id(node)] = 1 + longest_child
            best = max(best, chain[id(node)])
        else:
            chain[id(node)] = 0
    return best
