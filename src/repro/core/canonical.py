"""Canonical models of patterns (paper Section 2.1).

A *canonical model* of a pattern ``P`` is a tree obtained by (1) replacing
every wildcard with the special label ⊥, and (2) replacing every
descendant edge with a path of one or more edges whose interior nodes are
labeled ⊥.  ``τ(P)`` — every descendant edge instantiated with a single
edge — is the *minimal* canonical model (footnote 1 of the paper).

Canonical models come with a distinguished node: the image of the
pattern's output node.  Containment testing (Section 2.2, after [14])
quantifies over canonical models whose expansion lengths are bounded by a
function of the containing pattern — see :mod:`repro.core.containment`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..xmltree.node import BOTTOM_LABEL, TNode
from ..xmltree.tree import XMLTree

__all__ = [
    "CanonicalModel",
    "tau",
    "canonical_models",
    "count_canonical_models",
    "star_length",
]


@dataclass
class CanonicalModel:
    """A canonical model with its distinguished output node.

    Attributes
    ----------
    tree:
        The instantiated document tree.
    output:
        The tree node corresponding to the pattern's output node.
    node_map:
        Mapping from pattern nodes to their corresponding tree nodes.
    expansion:
        The chosen path length for each descendant edge, keyed by
        ``(id(parent), id(child))`` of the pattern edge.
    """

    tree: XMLTree
    output: TNode
    node_map: dict[PNode, TNode]
    expansion: dict[tuple[int, int], int]


def _instantiate(
    pattern: Pattern, lengths: dict[tuple[int, int], int]
) -> CanonicalModel:
    """Build the canonical model for the given descendant-edge lengths."""
    node_map: dict[PNode, TNode] = {}

    def rec(pnode: PNode) -> TNode:
        label = BOTTOM_LABEL if pnode.label == WILDCARD else pnode.label
        tnode = TNode(label)
        node_map[pnode] = tnode
        for axis, pchild in pnode.edges:
            sub = rec(pchild)
            if axis is Axis.CHILD:
                tnode.add_child(sub)
            else:
                length = lengths[(id(pnode), id(pchild))]
                anchor = tnode
                for _ in range(length - 1):
                    anchor = anchor.new_child(BOTTOM_LABEL)
                anchor.add_child(sub)
        return tnode

    root = rec(pattern.root)  # type: ignore[arg-type]
    return CanonicalModel(
        tree=XMLTree(root),
        output=node_map[pattern.output],  # type: ignore[index]
        node_map=node_map,
        expansion=dict(lengths),
    )


def tau(pattern: Pattern) -> CanonicalModel:
    """The transformation ``τ``: the minimal canonical model.

    Every wildcard becomes ⊥ and every descendant edge is instantiated
    with a single edge.  Each pattern node has exactly one corresponding
    tree node (returned in ``node_map``).
    """
    pattern._require_nonempty()
    lengths = {
        (id(parent), id(child)): 1
        for parent, axis, child in pattern.edges()
        if axis is Axis.DESCENDANT
    }
    return _instantiate(pattern, lengths)


def descendant_edges(pattern: Pattern) -> list[tuple[PNode, PNode]]:
    """All descendant edges of the pattern as ``(parent, child)`` pairs."""
    return [
        (parent, child)
        for parent, axis, child in pattern.edges()
        if axis is Axis.DESCENDANT
    ]


def canonical_models(
    pattern: Pattern, max_length: int
) -> Iterator[CanonicalModel]:
    """Enumerate canonical models with expansions in ``1..max_length``.

    The number of models is ``max_length ** (#descendant edges)`` — the
    exponential heart of the coNP containment test.
    """
    pattern._require_nonempty()
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    edges = descendant_edges(pattern)
    keys = [(id(parent), id(child)) for parent, child in edges]
    for combo in itertools.product(range(1, max_length + 1), repeat=len(edges)):
        yield _instantiate(pattern, dict(zip(keys, combo)))


def count_canonical_models(pattern: Pattern, max_length: int) -> int:
    """Number of canonical models enumerated for the given bound."""
    if pattern.is_empty:
        return 0
    return max_length ** len(descendant_edges(pattern))


def star_length(pattern: Pattern) -> int:
    """The longest chain of wildcard nodes joined by child edges.

    This is the quantity (``w`` in [14]) that bounds the descendant-edge
    expansion lengths a containment test must consider: a ⊥-path longer
    than every star chain of the containing pattern can always absorb
    extra length through one of its descendant edges.
    """
    if pattern.is_empty:
        return 0
    best = 0
    chain: dict[int, int] = {}

    def rec(node: PNode) -> None:
        nonlocal best
        for _, child in node.edges:
            rec(child)
        if node.label == WILDCARD:
            longest_child = 0
            for axis, child in node.edges:
                if axis is Axis.CHILD and child.label == WILDCARD:
                    longest_child = max(longest_child, chain[id(child)])
            chain[id(node)] = 1 + longest_child
            best = max(best, chain[id(node)])
        else:
            chain[id(node)] = 0

    rec(pattern.root)  # type: ignore[arg-type]
    return best
