"""Canonical models of patterns (paper Section 2.1).

A *canonical model* of a pattern ``P`` is a tree obtained by (1) replacing
every wildcard with the special label ⊥, and (2) replacing every
descendant edge with a path of one or more edges whose interior nodes are
labeled ⊥.  ``τ(P)`` — every descendant edge instantiated with a single
edge — is the *minimal* canonical model (footnote 1 of the paper).

Canonical models come with a distinguished node: the image of the
pattern's output node.  Containment testing (Section 2.2, after [14])
quantifies over canonical models whose expansion lengths are bounded by a
function of the containing pattern — see :mod:`repro.core.containment`.

Incremental enumeration
-----------------------
Two enumerators are provided:

* :func:`canonical_models` — the simple generator: one fresh tree per
  expansion vector, in lexicographic (``itertools.product``) order.
  Models are independent objects; keep as many as you like.
* :class:`CanonicalEngine` — the hot-path enumerator behind the
  containment engine.  It builds the **maximal** canonical tree (every
  ⊥-chain at full length) exactly once, numbers it in postorder, and then
  walks the expansion vectors in **reflected-Gray-code order**: each step
  changes a single ⊥-chain by one node, which is realized by an O(1)
  splice of the live tree plus an O(1) patch of the dynamic
  parent/child-mask tables.  Because splicing interior chain nodes never
  reorders the surviving nodes, the postorder numbering, the contiguous
  strict-descendant ranges and the per-node ancestor masks computed from
  the maximal tree remain valid for every model — only an ``active``
  bitmask changes.  Candidate embeddings of a container pattern are then
  decided by the bitset DP of :meth:`CanonicalEngine.embeds`, with the
  output image pinned to the distinguished node.

  Gray-code order starts at the all-ones vector, i.e. the minimal model
  ``τ(P)`` is always checked first — the cheapest model and empirically
  the most likely counterexample — and cheap (small) vectors cluster
  early, giving the containment test its early-termination ordering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..xmltree.node import BOTTOM_LABEL, TNode
from ..xmltree.tree import XMLTree
from .embedding import TreeIndex, iter_bits, pattern_postorder

__all__ = [
    "CanonicalModel",
    "CanonicalEngine",
    "tau",
    "canonical_models",
    "incremental_models",
    "count_canonical_models",
    "gray_vectors",
    "star_length",
]


@dataclass
class CanonicalModel:
    """A canonical model with its distinguished output node.

    Attributes
    ----------
    tree:
        The instantiated document tree.
    output:
        The tree node corresponding to the pattern's output node.
    node_map:
        Mapping from pattern nodes to their corresponding tree nodes.
    expansion:
        The chosen path length for each descendant edge, keyed by
        ``(id(parent), id(child))`` of the pattern edge.
    """

    tree: XMLTree
    output: TNode
    node_map: dict[PNode, TNode]
    expansion: dict[tuple[int, int], int]


def _instantiate(
    pattern: Pattern, lengths: dict[tuple[int, int], int]
) -> CanonicalModel:
    """Build the canonical model for the given descendant-edge lengths.

    Iterative, so deep chain patterns never hit the recursion limit.
    """
    node_map: dict[PNode, TNode] = {}
    root_p = pattern.root
    assert root_p is not None
    # Each stack entry: (pattern node, tree node to attach it under or
    # None for the root).  Attachment anchors already account for the
    # ⊥-interior of descendant edges.
    label = BOTTOM_LABEL if root_p.label == WILDCARD else root_p.label
    root_t = TNode(label)
    node_map[root_p] = root_t
    stack: list[PNode] = [root_p]
    while stack:
        pnode = stack.pop()
        tnode = node_map[pnode]
        for axis, pchild in pnode.edges:
            sub_label = BOTTOM_LABEL if pchild.label == WILDCARD else pchild.label
            sub = TNode(sub_label)
            node_map[pchild] = sub
            if axis is Axis.CHILD:
                tnode.add_child(sub)
            else:
                length = lengths[(id(pnode), id(pchild))]
                anchor = tnode
                for _ in range(length - 1):
                    anchor = anchor.new_child(BOTTOM_LABEL)
                anchor.add_child(sub)
            stack.append(pchild)
    return CanonicalModel(
        tree=XMLTree(root_t),
        output=node_map[pattern.output],  # type: ignore[index]
        node_map=node_map,
        expansion=dict(lengths),
    )


def tau(pattern: Pattern) -> CanonicalModel:
    """The transformation ``τ``: the minimal canonical model.

    Every wildcard becomes ⊥ and every descendant edge is instantiated
    with a single edge.  Each pattern node has exactly one corresponding
    tree node (returned in ``node_map``).
    """
    pattern._require_nonempty()
    lengths = {
        (id(parent), id(child)): 1
        for parent, axis, child in pattern.edges()
        if axis is Axis.DESCENDANT
    }
    return _instantiate(pattern, lengths)


def descendant_edges(pattern: Pattern) -> list[tuple[PNode, PNode]]:
    """All descendant edges of the pattern as ``(parent, child)`` pairs."""
    return [
        (parent, child)
        for parent, axis, child in pattern.edges()
        if axis is Axis.DESCENDANT
    ]


def canonical_models(
    pattern: Pattern, max_length: int
) -> Iterator[CanonicalModel]:
    """Enumerate canonical models with expansions in ``1..max_length``.

    The number of models is ``max_length ** (#descendant edges)`` — the
    exponential heart of the coNP containment test.  Every yielded model
    is an independent tree; for the zero-copy enumerator used by the
    containment hot path see :class:`CanonicalEngine` and
    :func:`incremental_models`.
    """
    pattern._require_nonempty()
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    edges = descendant_edges(pattern)
    keys = [(id(parent), id(child)) for parent, child in edges]
    for combo in itertools.product(range(1, max_length + 1), repeat=len(edges)):
        yield _instantiate(pattern, dict(zip(keys, combo)))


def count_canonical_models(pattern: Pattern, max_length: int) -> int:
    """Number of canonical models enumerated for the given bound."""
    if pattern.is_empty:
        return 0
    return max_length ** len(descendant_edges(pattern))


def gray_vectors(digits: int, base: int) -> Iterator[tuple[int, ...]]:
    """All vectors of ``{0..base-1}**digits`` in reflected-Gray order.

    Successive vectors differ in exactly one digit, by exactly ±1; the
    first vector is all zeros.  This is Knuth's loopless mixed-radix
    reflected Gray code (TAOCP 7.2.1.1, Algorithm H) specialised to a
    uniform radix.
    """
    if digits == 0:
        yield ()
        return
    if base < 1:
        raise ValueError("base must be >= 1")
    if base == 1:
        # Algorithm H needs radix >= 2; the single-vector case is trivial.
        yield (0,) * digits
        return
    a = [0] * digits
    d = [1] * digits
    f = list(range(digits + 1))
    while True:
        yield tuple(a)
        j = f[0]
        f[0] = 0
        if j == digits:
            return
        a[j] += d[j]
        if a[j] == 0 or a[j] == base - 1:
            d[j] = -d[j]
            f[j] = f[j + 1]
            f[j + 1] = j + 1


class CanonicalEngine:
    """Incremental canonical-model enumerator with a bitset embed test.

    Builds the maximal canonical tree of ``pattern`` (all ⊥-chains at
    ``max_length``) once, then steps through expansion vectors in Gray
    order, splicing one ⊥ node in or out of the live tree per step.  The
    fixed postorder numbering of the maximal tree supplies contiguous
    strict-descendant ranges and ancestor masks that stay valid across
    every model; only the ``active`` mask, the dynamic parent array and a
    couple of child-mask rows change per step.

    Use :meth:`models` to drive the enumeration and :meth:`embeds` to ask
    whether a container pattern (weakly) embeds into the *current* model
    with its output pinned to the distinguished node.
    """

    __slots__ = (
        "pattern",
        "max_length",
        "total",
        "_edges",
        "_edge_keys",
        "_lengths",
        "_node_map",
        "_tree",
        "_index",
        "_slots",
        "_u_idx",
        "_c_idx",
        "_active",
        "_parent_dyn",
        "_child_mask_dyn",
        "_output_idx",
        "_root_bit",
        "_q_cache",
    )

    def __init__(self, pattern: Pattern, max_length: int):
        pattern._require_nonempty()
        if max_length < 1:
            raise ValueError("max_length must be >= 1")
        self.pattern = pattern
        self.max_length = max_length
        self._edges = descendant_edges(pattern)
        self._edge_keys = [(id(p), id(c)) for p, c in self._edges]
        self.total = max_length ** len(self._edges)

        # Maximal tree: every descendant edge expanded to ``max_length``.
        node_map: dict[PNode, TNode] = {}
        chain_nodes: dict[tuple[int, int], list[TNode]] = {}
        root_p = pattern.root
        assert root_p is not None
        label = BOTTOM_LABEL if root_p.label == WILDCARD else root_p.label
        root_t = TNode(label)
        node_map[root_p] = root_t
        stack: list[PNode] = [root_p]
        while stack:
            pnode = stack.pop()
            tnode = node_map[pnode]
            for axis, pchild in pnode.edges:
                sub_label = (
                    BOTTOM_LABEL if pchild.label == WILDCARD else pchild.label
                )
                sub = TNode(sub_label)
                node_map[pchild] = sub
                if axis is Axis.CHILD:
                    tnode.add_child(sub)
                else:
                    interior: list[TNode] = []
                    anchor = tnode
                    for _ in range(max_length - 1):
                        anchor = anchor.new_child(BOTTOM_LABEL)
                        interior.append(anchor)
                    anchor.add_child(sub)
                    chain_nodes[(id(pnode), id(pchild))] = interior
                stack.append(pchild)

        self._node_map = node_map
        self._tree = XMLTree(root_t)
        index = TreeIndex(root_t)
        self._index = index
        self._slots = [
            [index.index[id(node)] for node in chain_nodes[key]]
            for key in self._edge_keys
        ]
        self._u_idx = [index.index[id(node_map[p])] for p, _ in self._edges]
        self._c_idx = [index.index[id(node_map[c])] for _, c in self._edges]
        self._output_idx = index.index[id(node_map[pattern.output])]  # type: ignore[index]
        self._root_bit = 1 << (index.n - 1)
        self._q_cache: dict[int, tuple[Pattern, list[PNode]]] = {}
        self._reset()

    # ------------------------------------------------------------------
    # Dynamic structure
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        """(Re)initialize the live structure to the all-ones vector τ."""
        index = self._index
        self._active = index.all_mask
        self._parent_dyn = list(index.parent)
        self._child_mask_dyn = list(index.child_mask)
        self._lengths = [self.max_length] * len(self._edges)
        for j in range(len(self._edges)):
            while self._lengths[j] > 1:
                self._shrink(j)

    def _grow(self, j: int) -> None:
        """Expansion length of edge ``j``: ℓ → ℓ + 1 (activate one slot)."""
        length = self._lengths[j]
        slots = self._slots[j]
        new_slot = slots[length - 1]
        prev_last = slots[length - 2] if length >= 2 else self._u_idx[j]
        c = self._c_idx[j]
        bit_c = 1 << c
        self._child_mask_dyn[prev_last] = (
            self._child_mask_dyn[prev_last] & ~bit_c
        ) | (1 << new_slot)
        self._child_mask_dyn[new_slot] = bit_c
        self._parent_dyn[new_slot] = prev_last
        self._parent_dyn[c] = new_slot
        self._active |= 1 << new_slot
        self._lengths[j] = length + 1
        # Splice the live tree: prev_last → new_slot → c.
        post = self._index.post
        new_t, prev_t, c_t = post[new_slot], post[prev_last], post[c]
        new_t.add_child(c_t)
        prev_t.add_child(new_t)

    def _shrink(self, j: int) -> None:
        """Expansion length of edge ``j``: ℓ → ℓ - 1 (deactivate one slot)."""
        length = self._lengths[j]
        slots = self._slots[j]
        dead_slot = slots[length - 2]
        prev = self._parent_dyn[dead_slot]
        c = self._c_idx[j]
        self._child_mask_dyn[prev] = (
            self._child_mask_dyn[prev] & ~(1 << dead_slot)
        ) | (1 << c)
        self._parent_dyn[c] = prev
        self._active &= ~(1 << dead_slot)
        self._lengths[j] = length - 1
        # Splice the live tree: prev adopts c, the dead slot detaches.
        post = self._index.post
        post[prev].add_child(post[c])
        post[dead_slot].detach()

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def models(self) -> Iterator["CanonicalEngine"]:
        """Step through all expansion vectors (Gray order, τ first).

        Yields ``self`` after each mutation; the engine's state (and the
        live tree from :meth:`current_model`) is only valid until the
        next step.  Restartable: each call re-enumerates from τ.
        """
        self._reset()
        previous: tuple[int, ...] | None = None
        for vector in gray_vectors(len(self._edges), self.max_length):
            if previous is not None:
                for j, (old, new) in enumerate(zip(previous, vector)):
                    if old != new:
                        if new > old:
                            self._grow(j)
                        else:
                            self._shrink(j)
                        break
            previous = vector
            yield self

    def current_model(self) -> CanonicalModel:
        """A :class:`CanonicalModel` view of the current state.

        The returned ``tree``/``node_map`` alias the engine's live tree:
        they are valid only until the next enumeration step (copy them if
        you need persistence).
        """
        return CanonicalModel(
            tree=self._tree,
            output=self._node_map[self.pattern.output],  # type: ignore[index]
            node_map=self._node_map,
            expansion={
                key: length
                for key, length in zip(self._edge_keys, self._lengths)
            },
        )

    # ------------------------------------------------------------------
    # Bitset embedding test
    # ------------------------------------------------------------------
    #: Bound on ``_q_cache``: engines outlive single containment calls
    #: via the cross-call LRU, so the per-engine container cache must not
    #: grow with the number of distinct containers ever tested.
    _Q_CACHE_LIMIT = 64

    def _postorder_of(self, q: Pattern) -> list[PNode]:
        # The cache entry holds ``q`` itself: keying by id() alone would
        # let a garbage-collected pattern's address be reused by a new
        # one, serving a stale postorder (and a wrong verdict).
        cached = self._q_cache.get(id(q))
        if cached is None or cached[0] is not q:
            if len(self._q_cache) >= self._Q_CACHE_LIMIT:
                self._q_cache.clear()
            cached = (q, pattern_postorder(q.root))  # type: ignore[arg-type]
            self._q_cache[id(q)] = cached
        return cached[1]

    def embeds(self, q: Pattern, weak: bool = False) -> bool:
        """Does ``q`` embed into the current model producing its output?

        Root-preserving unless ``weak``; the image of ``q``'s output node
        is pinned to the model's distinguished node, which is exactly the
        per-model condition of the canonical containment test.
        """
        if q.is_empty:
            return False
        index = self._index
        active = self._active
        parent_dyn = self._parent_dyn
        anc_mask = index.anc_mask
        out_bit = 1 << self._output_idx
        output_node = q.output
        sat: dict[int, int] = {}
        for pnode in self._postorder_of(q):
            if pnode.label == WILDCARD:
                cand = active
            else:
                cand = index.label_mask.get(pnode.label, 0) & active
            if pnode is output_node:
                cand &= out_bit
            for axis, pchild in pnode.edges:
                if not cand:
                    break
                child_sat = sat[id(pchild)]
                if not child_sat:
                    cand = 0
                    break
                acc = 0
                if axis is Axis.CHILD:
                    for u in iter_bits(child_sat):
                        p = parent_dyn[u]
                        if p >= 0:
                            acc |= 1 << p
                else:
                    # Ancestor masks of the maximal tree stay correct:
                    # splicing ⊥ interiors preserves ancestry among the
                    # surviving nodes, and ``cand`` is already restricted
                    # to active nodes.
                    for u in iter_bits(child_sat):
                        acc |= anc_mask[u]
                cand &= acc
            sat[id(pnode)] = cand
        root_sat = sat[id(q.root)]
        if weak:
            return bool(root_sat)
        return bool(root_sat & self._root_bit)


def incremental_models(
    pattern: Pattern, max_length: int
) -> Iterator[CanonicalModel]:
    """Zero-copy canonical-model enumeration (Gray order, τ first).

    Yields :class:`CanonicalModel` views over **one shared mutable tree**
    that is spliced in place between yields — each yielded model is valid
    only until the next iteration step.  Use :func:`canonical_models`
    when models must outlive the loop.
    """
    pattern._require_nonempty()
    engine = CanonicalEngine(pattern, max_length)
    for state in engine.models():
        yield state.current_model()


def star_length(pattern: Pattern) -> int:
    """The longest chain of wildcard nodes joined by child edges.

    This is the quantity (``w`` in [14]) that bounds the descendant-edge
    expansion lengths a containment test must consider: a ⊥-path longer
    than every star chain of the containing pattern can always absorb
    extra length through one of its descendant edges.
    """
    if pattern.is_empty:
        return 0
    best = 0
    chain: dict[int, int] = {}
    root = pattern.root
    assert root is not None
    for node in pattern_postorder(root):
        if node.label == WILDCARD:
            longest_child = 0
            for axis, child in node.edges:
                if axis is Axis.CHILD and child.label == WILDCARD:
                    longest_child = max(longest_child, chain[id(child)])
            chain[id(node)] = 1 + longest_child
            best = max(best, chain[id(node)])
        else:
            chain[id(node)] = 0
    return best
