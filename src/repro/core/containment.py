"""Containment and equivalence of patterns (paper Section 2.2).

``P1 ⊑ P2`` iff ``P1(t) ⊆ P2(t)`` for all trees ``t``; weak containment
``P1 ⊑w P2`` is the same under weak-embedding semantics.  Following [14]
(and [10] for the weak case), containment is decided on *canonical
models*: ``P1 ⊑ P2`` iff for every canonical model of ``P1`` (with
distinguished output ``o``) there is an embedding of ``P2`` producing
``o``.  Expansion lengths can be bounded by the star length of ``P2``
(longest child-edge chain of wildcards) plus a constant: a ⊥-path longer
than every star chain of ``P2`` can absorb extra length via a descendant
edge, so longer expansions add no new counterexamples.

Two engines are provided:

* :func:`hom_containment` — the PTIME homomorphism test.  Always *sound*
  for containment; *complete* exactly on the three sub-fragments
  ``XP{//,[]}``, ``XP{//,*}``, ``XP{[],*}`` [14].  This is the engine
  behind the paper's PTIME results ([17], Corollary 4.8 context).
* :func:`canonical_containment` — the complete coNP procedure on all of
  ``XP{//,[],*}``; cost is exponential in the number of descendant edges
  of the contained pattern.

:func:`contains` dispatches automatically and memoizes results.

Performance architecture
------------------------
Both engines run on **integer bitsets** (see
:mod:`repro.core.embedding`): ``hom_exists`` numbers the target pattern
in postorder so subtree ranges are contiguous, and the canonical engine
(:class:`repro.core.canonical.CanonicalEngine`) enumerates expansion
vectors in Gray-code order over a single pre-built maximal tree — the
minimal model ``τ(P1)`` is always checked first, each further model costs
one O(1) splice plus a bitset DP, and per-node descendant/ancestor masks
are computed exactly once per test (or once per *batch*, see below).

The memoization layer keys results by :meth:`Pattern.memo_key` —
process-interned integer tokens, so lookups are O(1) after a pattern's
first use — and is a **bounded LRU** (default 65 536 entries, see
:func:`set_cache_limit`); evictions are counted in
:class:`ContainmentStats`.

:func:`contains_all` is the batched entry point: it decides
``[p ⊑ v for v in views]`` while sharing all ``p``-side setup (the
maximal canonical tree, its postorder numbering, descendant ranges and
ancestor masks) across every view with the same expansion bound.  The
rewriting solver and the view-answering engine use it to amortize
per-view setup.

On top of the per-batch sharing sits a **cross-call engine LRU**: built
:class:`~repro.core.canonical.CanonicalEngine` instances are cached
process-wide, keyed by ``(memo_key(p1), bound)``, so workloads that
probe the same query repeatedly — the view advisor scoring many
candidates per workload query, the query engine replaying a stream with
temporal locality — pay the maximal-tree construction once per distinct
``(query, bound)`` instead of once per call.  The LRU is bounded
(default 256 engines, see :func:`set_engine_cache_limit`; 0 disables
it), and hits/evictions are counted in :class:`ContainmentStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from ..errors import ContainmentBudgetError
from ..obs import span
from ..patterns.ast import Axis, Pattern, PNode, WILDCARD, on_memo_reset
from ..patterns.fragments import homomorphism_complete
from . import parallel
from .canonical import CanonicalEngine, count_canonical_models, star_length
from .embedding import iter_bits, pattern_postorder

__all__ = [
    "ContainmentBatch",
    "ContainmentStats",
    "STATS",
    "contains",
    "contains_all",
    "equivalent",
    "weakly_contains",
    "weakly_equivalent",
    "hom_containment",
    "canonical_containment",
    "hom_exists",
    "prune_subsumed_branches",
    "prune_subsumed_branches_memoized",
    "set_branch_prune_enabled",
    "branch_prune_enabled",
    "clear_cache",
    "set_cache_limit",
    "cache_limit",
    "set_engine_cache_limit",
    "engine_cache_limit",
    "set_default_workers",
    "default_workers",
    "expansion_bound",
]


@dataclass
class ContainmentStats:
    """Counters for containment-engine activity (benchmark instrumentation)."""

    hom_tests: int = 0
    canonical_tests: int = 0
    canonical_models_checked: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    engine_cache_hits: int = 0
    engine_cache_evictions: int = 0
    branch_prunes: int = 0
    embed_memo_hits: int = 0
    embed_memo_misses: int = 0
    shard_tasks: int = 0
    shard_fallbacks: int = 0

    def reset(self) -> None:
        self.hom_tests = 0
        self.canonical_tests = 0
        self.canonical_models_checked = 0
        self.cache_hits = 0
        self.cache_evictions = 0
        self.engine_cache_hits = 0
        self.engine_cache_evictions = 0
        self.branch_prunes = 0
        self.embed_memo_hits = 0
        self.embed_memo_misses = 0
        self.shard_tasks = 0
        self.shard_fallbacks = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hom_tests": self.hom_tests,
            "canonical_tests": self.canonical_tests,
            "canonical_models_checked": self.canonical_models_checked,
            "cache_hits": self.cache_hits,
            "cache_evictions": self.cache_evictions,
            "engine_cache_hits": self.engine_cache_hits,
            "engine_cache_evictions": self.engine_cache_evictions,
            "branch_prunes": self.branch_prunes,
            "embed_memo_hits": self.embed_memo_hits,
            "embed_memo_misses": self.embed_memo_misses,
            "shard_tasks": self.shard_tasks,
            "shard_fallbacks": self.shard_fallbacks,
        }


#: Module-level statistics, reset via ``STATS.reset()``.
STATS = ContainmentStats()

#: Default bound on the number of memoized containment results.
DEFAULT_CACHE_LIMIT = 65_536

#: Default bound on the number of cached canonical engines.  Engines hold
#: a maximal canonical tree each, so the bound is much tighter than the
#: boolean-result LRU's.
DEFAULT_ENGINE_CACHE_LIMIT = 256

# Result cache keyed by (memo_key(p1), memo_key(p2), weak), LRU-bounded.
_CACHE: OrderedDict[tuple, bool] = OrderedDict()
_CACHE_LIMIT = DEFAULT_CACHE_LIMIT

# Cross-call engine cache keyed by (memo_key(p1), bound), LRU-bounded.
_ENGINES: OrderedDict[tuple[int, int], CanonicalEngine] = OrderedDict()
_ENGINE_CACHE_LIMIT = DEFAULT_ENGINE_CACHE_LIMIT

#: Bound on the memoized pruned-pattern map (patterns, not booleans, so
#: the bound is tighter than the result LRU's).
PRUNE_CACHE_LIMIT = 4_096

# Memoized prune results keyed by memo_key, LRU-bounded.  A hit returns
# the *same* pruned Pattern object, so its memo_key is stable and the
# engine LRU keyed by it keeps hitting across calls.
_PRUNED: OrderedDict[int, Pattern] = OrderedDict()
_PRUNE_ENABLED = True


def set_branch_prune_enabled(enabled: bool) -> None:
    """Toggle the dispatch's hom-subsumption prune (default on).

    Exists for baseline measurement (the replay benchmark's "PR 1
    stack" advisor baseline predates the prune) and for regression
    tests that compare the pruned and unpruned canonical fallbacks.
    Verdicts are identical either way — the prune is
    equivalence-preserving — only the enumerated model space changes.
    Cached results are dropped on a toggle so runs under different
    settings never mix counters.
    """
    global _PRUNE_ENABLED
    if enabled != _PRUNE_ENABLED:
        _PRUNE_ENABLED = enabled
        clear_cache()


def branch_prune_enabled() -> bool:
    """Whether the dispatch prunes before the canonical fallback."""
    return _PRUNE_ENABLED


def clear_cache() -> None:
    """Drop all memoized containment results, engines and pruned forms."""
    _CACHE.clear()
    _ENGINES.clear()
    _PRUNED.clear()


# Both LRUs are keyed by ``memo_key`` tokens, which are only meaningful
# within one interning epoch — an epoch reset must clear them too.
on_memo_reset(clear_cache)


def set_cache_limit(limit: int) -> None:
    """Bound the containment-result LRU to ``limit`` entries.

    The views workloads issue millions of containment probes against a
    bounded set of distinct pairs; an unbounded cache was a memory leak.
    Lowering the limit evicts immediately (counted in
    ``STATS.cache_evictions``).
    """
    global _CACHE_LIMIT
    if limit < 1:
        raise ValueError("cache limit must be >= 1")
    _CACHE_LIMIT = limit
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
        STATS.cache_evictions += 1


def cache_limit() -> int:
    """The current containment-result LRU bound."""
    return _CACHE_LIMIT


def set_engine_cache_limit(limit: int) -> None:
    """Bound the cross-call engine LRU to ``limit`` entries.

    ``0`` disables cross-call engine reuse entirely (every containment
    call builds fresh engines; per-batch sharing inside one
    :class:`ContainmentBatch` still applies).  Lowering the limit evicts
    immediately, counted in ``STATS.engine_cache_evictions``.
    """
    global _ENGINE_CACHE_LIMIT
    if limit < 0:
        raise ValueError("engine cache limit must be >= 0")
    _ENGINE_CACHE_LIMIT = limit
    while len(_ENGINES) > _ENGINE_CACHE_LIMIT:
        _ENGINES.popitem(last=False)
        STATS.engine_cache_evictions += 1


def engine_cache_limit() -> int:
    """The current engine-LRU bound (0 = cross-call reuse disabled)."""
    return _ENGINE_CACHE_LIMIT


#: Worker-process count used when a call passes ``workers=None``.
_DEFAULT_WORKERS = 0


def set_default_workers(workers: int) -> None:
    """Set the worker count used when calls do not pass ``workers``.

    ``0`` (the default) keeps every containment call on the
    deterministic inline path; ``n >= 2`` routes big-bound canonical
    checks through the process shards (subject to the degradation
    policy in :mod:`repro.core.parallel`).
    """
    global _DEFAULT_WORKERS
    if workers < 0:
        raise ValueError("workers must be >= 0")
    _DEFAULT_WORKERS = workers


def default_workers() -> int:
    """The worker count used when calls do not pass ``workers``."""
    return _DEFAULT_WORKERS


def _engine_for(
    p1: Pattern,
    bound: int,
    local: dict[int, CanonicalEngine] | None = None,
) -> CanonicalEngine:
    """A canonical engine for ``(p1, bound)``, shared where possible.

    Lookup order: the caller's per-batch ``local`` dict (no stats, no
    LRU bookkeeping), then the process-wide LRU (a hit counts as
    ``engine_cache_hits``), else a fresh build that is stored in both.
    Reuse is sound because :meth:`CanonicalEngine.models` re-enumerates
    from τ on every call, and correct across isomorphic patterns because
    ``memo_key`` identifies patterns up to isomorphism.
    """
    if local is not None:
        engine = local.get(bound)
        if engine is not None:
            return engine
    if _ENGINE_CACHE_LIMIT > 0:
        key = (p1.memo_key(), bound)
        engine = _ENGINES.get(key)
        if engine is not None:
            _ENGINES.move_to_end(key)
            STATS.engine_cache_hits += 1
        else:
            engine = CanonicalEngine(p1, bound)
            _ENGINES[key] = engine
            while len(_ENGINES) > _ENGINE_CACHE_LIMIT:
                _ENGINES.popitem(last=False)
                STATS.engine_cache_evictions += 1
    else:
        engine = CanonicalEngine(p1, bound)
    if local is not None:
        local[bound] = engine
    return engine


def _cache_get(key: tuple) -> bool | None:
    result = _CACHE.get(key)
    if result is not None:
        _CACHE.move_to_end(key)
        STATS.cache_hits += 1
    return result


def _cache_put(key: tuple, value: bool) -> None:
    _CACHE[key] = value
    _CACHE.move_to_end(key)
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
        STATS.cache_evictions += 1


# ----------------------------------------------------------------------
# Homomorphism engine (PTIME)
# ----------------------------------------------------------------------

def hom_exists(src: Pattern, dst: Pattern, require_root: bool = True) -> bool:
    """Is there a homomorphism from ``src`` to ``dst``?

    A homomorphism maps nodes of ``src`` to nodes of ``dst`` such that

    * non-wildcard labels are preserved,
    * child edges map to child edges,
    * descendant edges map to proper-descendant paths (length ≥ 1, any
      edge types), and
    * the output of ``src`` maps to the output of ``dst``; the root maps
      to the root unless ``require_root`` is False (the *weak* variant).

    Existence implies ``dst ⊑ src``.

    The test runs on bitsets over a postorder numbering of ``dst`` (so
    "strictly below ``v``" is a contiguous index range) and all
    traversals are iterative — chain patterns deeper than the interpreter
    recursion limit are handled.
    """
    if src.is_empty or dst.is_empty:
        # Υ has no nodes: vacuous homomorphism exists only from Υ.
        return src.is_empty
    dst_post = pattern_postorder(dst.root)  # type: ignore[arg-type]
    n = len(dst_post)
    index = {id(node): i for i, node in enumerate(dst_post)}
    # cparent[i]: parent index when connected by a *child* edge, else -1.
    # anc_mask[i]: all proper ancestors (any edge types).
    cparent = [-1] * n
    parent = [-1] * n
    label_mask: dict[str, int] = {}
    for i, node in enumerate(dst_post):
        label_mask[node.label] = label_mask.get(node.label, 0) | (1 << i)
        for axis, child in node.edges:
            j = index[id(child)]
            parent[j] = i
            if axis is Axis.CHILD:
                cparent[j] = i
    anc_mask = [0] * n
    for i in range(n - 2, -1, -1):  # root (index n-1) has no ancestors
        p = parent[i]
        anc_mask[i] = anc_mask[p] | (1 << p)
    all_mask = (1 << n) - 1
    out_bit = 1 << index[id(dst.output)]
    root_bit = 1 << (n - 1)

    sat: dict[int, int] = {}
    src_output = src.output
    for pnode in pattern_postorder(src.root):  # type: ignore[arg-type]
        if pnode.label == WILDCARD:
            cand = all_mask
        else:
            cand = label_mask.get(pnode.label, 0)
        if pnode is src_output:
            # The output of src must land on the output of dst; other
            # nodes are unconstrained (they may share dst's output).
            cand &= out_bit
        for axis, pchild in pnode.edges:
            if not cand:
                break
            child_sat = sat[id(pchild)]
            if not child_sat:
                cand = 0
                break
            acc = 0
            if axis is Axis.CHILD:
                for u in iter_bits(child_sat):
                    p = cparent[u]
                    if p >= 0:
                        acc |= 1 << p
            else:
                for u in iter_bits(child_sat):
                    acc |= anc_mask[u]
            cand &= acc
        sat[id(pnode)] = cand
    root_sat = sat[id(src.root)]
    if require_root:
        return bool(root_sat & root_bit)
    return bool(root_sat)


def _hom_test(src: Pattern, dst: Pattern, require_root: bool = True) -> bool:
    """Counted homomorphism test: the single place ``hom_tests`` bumps."""
    STATS.hom_tests += 1
    return hom_exists(src, dst, require_root=require_root)


def hom_containment(p1: Pattern, p2: Pattern) -> bool:
    """The homomorphism test for ``p1 ⊑ p2``: a homomorphism ``p2 → p1``.

    Sound always; complete iff the patterns jointly fit one of the three
    sub-fragments (use :func:`repro.patterns.homomorphism_complete`).
    """
    if p1.is_empty:
        STATS.hom_tests += 1
        return True
    if p2.is_empty:
        STATS.hom_tests += 1
        return False
    return _hom_test(p2, p1)


# ----------------------------------------------------------------------
# Hom-subsumption branch pruning (PTIME, equivalence-preserving)
# ----------------------------------------------------------------------

def prune_subsumed_branches(pattern: Pattern) -> Pattern:
    """Drop branch subtrees hom-subsumed by a sibling (PTIME, sound).

    A branch ``A`` hanging off ``u`` may be removed when a sibling ``B``
    admits a root-to-root homomorphism ``A → B`` with a compatible
    incoming axis: the identity-outside-``A`` homomorphism witnesses
    ``pruned ⊑ original``, and removal is a relaxation
    (``original ⊑ pruned``), so the result is *equivalent* — under both
    standard and weak semantics (the witnessing homomorphisms compose
    with weak embeddings just as well) — and every containment verdict
    involving the pattern is unchanged.

    This matters because duplicated-or-subsumed sibling branches are
    exactly what compositions ``R ∘ V`` produce (the query's k-node
    branches reappear in the view's output node), and each such branch
    multiplies the canonical-model count of the coNP test that follows.
    The shared dispatch (:func:`contains` / :class:`ContainmentBatch`)
    applies this prune — memoized per ``memo_key`` — to both sides
    before falling back to the canonical engine, so the rewrite solver's
    composition tests benefit without doing anything; returns the input
    object unchanged when nothing prunes.

    Output-path branches are never pruned (the selection path carries
    the answer semantics).
    """
    if pattern.is_empty:
        return pattern
    # Read-only wrappers for the branch homomorphism tests; memoized per
    # node since surviving branches are compared repeatedly.
    wrapped: dict[int, Pattern] = {}

    def wrap(node: PNode) -> Pattern:
        cached = wrapped.get(id(node))
        if cached is None:
            cached = Pattern(node)
            wrapped[id(node)] = cached
        return cached

    def subsumed_branch(pat: Pattern):
        on_path = set(map(id, pat.selection_path()))
        for node in pat.root.iter_subtree():  # type: ignore[union-attr]
            if len(node.edges) < 2:
                continue
            for axis_a, branch_a in node.edges:
                if id(branch_a) in on_path:
                    continue
                for axis_b, branch_b in node.edges:
                    if branch_b is branch_a:
                        continue
                    if axis_a is Axis.CHILD and axis_b is not Axis.CHILD:
                        continue
                    if hom_exists(wrap(branch_a), wrap(branch_b)):
                        return node, branch_a
        return None

    # Most patterns have nothing to prune; detect on the original
    # (read-only) and copy only when a removal actually happens.  The
    # detected pair translates to the copy through the node mapping, so
    # the first removal does not re-run the sibling sweep.
    found = subsumed_branch(pattern)
    if found is None:
        return pattern
    copy, mapping = pattern.copy_with_map()
    node, branch = mapping[found[0]], mapping[found[1]]
    while True:
        node.edges = [
            (axis, child) for axis, child in node.edges if child is not branch
        ]
        wrapped.clear()
        current = Pattern(copy.root, mapping[pattern.output])  # type: ignore[index]
        found = subsumed_branch(current)
        if found is None:
            return current
        node, branch = found


def prune_subsumed_branches_memoized(pattern: Pattern) -> Pattern:
    """Memoized :func:`prune_subsumed_branches`, LRU-bounded.

    The variant the dispatch itself runs; callers that prune eagerly
    (the view advisor, before its isomorphism fast path) should use
    this one too, so the dispatch's later lookup of the same pattern
    is a cache hit instead of a repeated sibling sweep.  Honors
    :func:`set_branch_prune_enabled` (identity when disabled).

    Keyed by ``memo_key`` (valid within one interning epoch — the map is
    cleared by :func:`clear_cache`, which is registered on epoch reset).
    ``STATS.branch_prunes`` counts calls where something was actually
    removed, cache hits included, so the counter is deterministic for a
    fixed workload regardless of eviction timing.
    """
    if not _PRUNE_ENABLED:
        return pattern
    key = pattern.memo_key()
    cached = _PRUNED.get(key)
    if cached is None:
        cached = prune_subsumed_branches(pattern)
        _PRUNED[key] = cached
        _PRUNED.move_to_end(key)
        while len(_PRUNED) > PRUNE_CACHE_LIMIT:
            _PRUNED.popitem(last=False)
    else:
        _PRUNED.move_to_end(key)
    if cached is not pattern and cached.memo_key() != key:
        STATS.branch_prunes += 1
    return cached


# ----------------------------------------------------------------------
# Canonical-model engine (complete, coNP)
# ----------------------------------------------------------------------

def expansion_bound(container: Pattern) -> int:
    """Descendant-edge expansion bound sufficient for testing ``· ⊑ container``.

    ``star_length(container) + 2``: one more than the longest all-wildcard
    child chain (the [14] bound), plus a safety margin of one.  Larger
    bounds only add redundant models (soundness is unaffected).
    """
    return star_length(container) + 2


def _canonical_check(
    engine: CanonicalEngine,
    p2: Pattern,
    weak: bool,
    max_models: int | None,
) -> bool:
    """Run the canonical-model quantifier for one (engine, container) pair."""
    if max_models is not None and engine.total > max_models:
        raise ContainmentBudgetError(
            f"containment test needs {engine.total} canonical models "
            f"(budget {max_models})"
        )
    hits_before = engine.memo_hits
    misses_before = engine.memo_misses
    try:
        for state in engine.models():
            STATS.canonical_models_checked += 1
            if not state.embeds(p2, weak=weak):
                return False
        return True
    finally:
        STATS.embed_memo_hits += engine.memo_hits - hits_before
        STATS.embed_memo_misses += engine.memo_misses - misses_before


def _canonical_check_sharded(
    engine: CanonicalEngine,
    p2: Pattern,
    weak: bool,
    max_models: int | None,
    workers: int,
) -> bool:
    """Sharded canonical-model quantifier; falls back to inline.

    The model space splits into contiguous Gray-rank segments, one per
    worker process.  Workers check their segment (stopping at the
    segment's first failing model) and return fingerprint→verdict
    maps; the driver then *replays* ranks ``0 .. first global failure``
    through its own engine's embeds memo.  That replay is what makes
    verdicts **and** stats bit-identical to the inline walk: the memo's
    end state, its hit/miss counters and ``canonical_models_checked``
    all match what ``workers=0`` would have produced.  Any pool
    failure degrades to the inline path (``shard_fallbacks``).
    """
    if max_models is not None and engine.total > max_models:
        raise ContainmentBudgetError(
            f"containment test needs {engine.total} canonical models "
            f"(budget {max_models})"
        )
    shards = parallel.effective_workers(workers, engine.total)
    if shards == 0:
        STATS.shard_fallbacks += 1
        return _canonical_check(engine, p2, weak, max_models)
    try:
        pool = parallel.shard_pool(shards)
        p1_spec = parallel.pattern_to_spec(engine.pattern)
        p2_spec = parallel.pattern_to_spec(p2)
        segments = parallel.shard_segments(engine.total, shards)
        futures = [
            pool.submit(
                index,
                parallel._shard_task,
                p1_spec,
                engine.max_length,
                p2_spec,
                weak,
                start,
                count,
            )
            for index, (start, count) in enumerate(segments)
        ]
        first_fail: int | None = None
        verdicts: dict[int, bool] = {}
        for (start, _count), future in zip(segments, futures):
            fail_offset, segment_verdicts = future.result()
            verdicts.update(segment_verdicts)
            if fail_offset is not None:
                rank = start + fail_offset
                if first_fail is None or rank < first_fail:
                    first_fail = rank
    except Exception:
        # Broken pool, unpicklable state, spawn failure: the inline
        # path is always available and no counters have moved yet.
        STATS.shard_fallbacks += 1
        return _canonical_check(engine, p2, weak, max_models)
    STATS.shard_tasks += len(segments)
    last_rank = engine.total - 1 if first_fail is None else first_fail
    hits_before = engine.memo_hits
    misses_before = engine.memo_misses
    engine.replay_models(p2, weak, verdicts, last_rank)
    STATS.canonical_models_checked += last_rank + 1
    STATS.embed_memo_hits += engine.memo_hits - hits_before
    STATS.embed_memo_misses += engine.memo_misses - misses_before
    return first_fail is None


def _resolve_workers(workers: int | None) -> int:
    if workers is None:
        return _DEFAULT_WORKERS
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return workers


def _check(
    engine: CanonicalEngine,
    p2: Pattern,
    weak: bool,
    max_models: int | None,
    workers: int,
) -> bool:
    """Route one canonical check inline or through the shards."""
    if workers >= 2:
        return _canonical_check_sharded(engine, p2, weak, max_models, workers)
    return _canonical_check(engine, p2, weak, max_models)


def canonical_containment(
    p1: Pattern,
    p2: Pattern,
    weak: bool = False,
    max_models: int | None = None,
    workers: int | None = None,
) -> bool:
    """Complete containment test: ``p1 ⊑ p2`` (or ``p1 ⊑w p2``).

    Enumerates the canonical models of ``p1`` with expansions bounded by
    :func:`expansion_bound` of ``p2`` and requires, for each model with
    distinguished output ``o``, an embedding of ``p2`` producing ``o``
    (a weak embedding when ``weak=True``).  The minimal model ``τ(p1)``
    is checked first and each further model is derived from its
    predecessor by a single ⊥-chain splice (Gray-code enumeration via
    :class:`repro.core.canonical.CanonicalEngine`).

    ``workers >= 2`` shards the model space across processes
    (:mod:`repro.core.parallel`); ``workers=0``/``1`` (and ``None``
    with the module default unset) is the deterministic inline mode
    whose verdicts and stats the sharded path reproduces bit for bit.

    Raises
    ------
    ContainmentBudgetError
        If the model count exceeds ``max_models``.
    """
    STATS.canonical_tests += 1
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    bound = expansion_bound(p2)
    if max_models is not None:
        total = count_canonical_models(p1, bound)
        if total > max_models:
            raise ContainmentBudgetError(
                f"containment test needs {total} canonical models "
                f"(budget {max_models})"
            )
    engine = _engine_for(p1, bound)
    return _check(
        engine, p2, weak, max_models, _resolve_workers(workers)
    )


# ----------------------------------------------------------------------
# Public dispatching API
# ----------------------------------------------------------------------

def _decide(
    p1: Pattern,
    p2: Pattern,
    weak: bool,
    max_models: int | None,
    engines: dict[int, CanonicalEngine] | None = None,
    workers: int = 0,
) -> bool:
    """Uncached dispatch for one pair (shared by contains/contains_all).

    ``engines`` is an optional per-batch cache of
    :class:`CanonicalEngine` instances keyed by expansion bound, so a
    batch of containers reuses all ``p1``-side setup; engines are drawn
    from (and feed) the cross-call LRU either way.

    Before the coNP fallback both sides are rewritten to their
    hom-subsumption-pruned equivalents (:func:`prune_subsumed_branches`,
    sound for any pair): pruning ``p1`` shrinks the canonical-model
    space directly, and pruning ``p2`` can shrink the expansion bound
    (it is derived from ``p2``'s star chains) as well as every embed
    check.  The PTIME fast paths above run on the originals — a prune
    would cost more than they do.
    """
    if not weak:
        if homomorphism_complete(p1, p2):
            return hom_containment(p1, p2)
        if hom_containment(p1, p2):
            return True
    else:
        # Sound fast path: a root-free homomorphism p2 → p1 composes with
        # any weak embedding of p1 to give a weak embedding of p2.
        if _hom_test(p2, p1, require_root=False):
            return True
    p1 = prune_subsumed_branches_memoized(p1)
    p2 = prune_subsumed_branches_memoized(p2)
    STATS.canonical_tests += 1
    bound = expansion_bound(p2)
    engine = _engine_for(p1, bound, local=engines)
    return _check(engine, p2, weak, max_models, workers)


def contains(
    p1: Pattern,
    p2: Pattern,
    max_models: int | None = None,
    use_cache: bool = True,
    workers: int | None = None,
) -> bool:
    """Decide ``p1 ⊑ p2`` (Definition 2.2).  Complete on ``XP{//,[],*}``.

    Strategy: if the pair fits a homomorphism-complete sub-fragment the
    PTIME test decides; otherwise the homomorphism test is tried as a
    sufficient condition before falling back to the canonical-model
    procedure (τ-first, Gray-code incremental — see
    :func:`canonical_containment`).  ``workers >= 2`` shards the
    canonical fallback across processes with verdicts and stats
    bit-identical to the inline default.
    """
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    key = (p1.memo_key(), p2.memo_key(), False)
    if use_cache:
        cached = _cache_get(key)
        if cached is not None:
            return cached
    # Only memo-cache *misses* get a span: hits are sub-microsecond and
    # would swamp the trace without saying anything about time spent.
    with span("containment.decide") as scope:
        result = _decide(
            p1, p2, weak=False, max_models=max_models,
            workers=_resolve_workers(workers),
        )
        scope.set(result=result)
    if use_cache:
        _cache_put(key, result)
    return result


class ContainmentBatch:
    """Lazily decide ``p1 ⊑ v`` for many containers ``v``.

    Shares all ``p1``-side setup (the maximal canonical tree, postorder
    numbering, descendant ranges, ancestor masks) across every query
    with the same expansion bound, while letting the caller stop early —
    the rewriting solver tests its second natural candidate only when
    the first one fails.
    """

    __slots__ = (
        "p1", "max_models", "use_cache", "weak", "workers", "_engines",
        "_key1",
    )

    def __init__(
        self,
        p1: Pattern,
        max_models: int | None = None,
        use_cache: bool = True,
        weak: bool = False,
        workers: int | None = None,
    ):
        self.p1 = p1
        self.max_models = max_models
        self.use_cache = use_cache
        self.weak = weak
        self.workers = _resolve_workers(workers)
        self._engines: dict[int, CanonicalEngine] = {}
        self._key1 = (
            p1.memo_key() if use_cache and not p1.is_empty else 0
        )

    def contains(self, view: Pattern) -> bool:
        """``p1 ⊑ view`` (or ``⊑w`` when the batch is weak)."""
        if self.p1.is_empty:
            return True
        if view.is_empty:
            return False
        key = (self._key1, view.memo_key(), self.weak)
        if self.use_cache:
            cached = _cache_get(key)
            if cached is not None:
                return cached
        with span("containment.decide", batched=True) as scope:
            decided = _decide(
                self.p1,
                view,
                weak=self.weak,
                max_models=self.max_models,
                engines=self._engines,
                workers=self.workers,
            )
            scope.set(result=decided)
        if self.use_cache:
            _cache_put(key, decided)
        return decided


def contains_all(
    p1: Pattern,
    views: Sequence[Pattern],
    max_models: int | None = None,
    use_cache: bool = True,
    weak: bool = False,
    workers: int | None = None,
) -> list[bool]:
    """Batched containment: ``[p1 ⊑ v for v in views]``.

    Semantically identical to calling :func:`contains` (or
    :func:`weakly_contains`) per view, but all ``p1``-side setup — the
    maximal canonical tree, postorder numbering, descendant ranges,
    ancestor masks — is built once per distinct expansion bound and
    shared across the batch.  The rewriting solver and the view engine
    use this to amortize per-view cost; for early-exit consumers use
    :class:`ContainmentBatch` directly.
    """
    batch = ContainmentBatch(
        p1, max_models=max_models, use_cache=use_cache, weak=weak,
        workers=workers,
    )
    return [batch.contains(view) for view in views]


def weakly_contains(
    p1: Pattern,
    p2: Pattern,
    max_models: int | None = None,
    use_cache: bool = True,
    workers: int | None = None,
) -> bool:
    """Decide weak containment ``p1 ⊑w p2`` (Definition 2.3).

    Uses the weak-homomorphism test (root preservation dropped) as a
    sufficient fast path, then the canonical-model procedure with weak
    embeddings ([10] notes the canonical test adapts to weak semantics).
    """
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    key = (p1.memo_key(), p2.memo_key(), True)
    if use_cache:
        cached = _cache_get(key)
        if cached is not None:
            return cached
    result = _decide(
        p1, p2, weak=True, max_models=max_models,
        workers=_resolve_workers(workers),
    )
    if use_cache:
        _cache_put(key, result)
    return result


def equivalent(p1: Pattern, p2: Pattern, max_models: int | None = None) -> bool:
    """Decide ``p1 ≡ p2``: containment in both directions."""
    return contains(p1, p2, max_models=max_models) and contains(
        p2, p1, max_models=max_models
    )


def weakly_equivalent(
    p1: Pattern, p2: Pattern, max_models: int | None = None
) -> bool:
    """Decide ``p1 ≡w p2``: weak containment in both directions."""
    return weakly_contains(p1, p2, max_models=max_models) and weakly_contains(
        p2, p1, max_models=max_models
    )
