"""Containment and equivalence of patterns (paper Section 2.2).

``P1 ⊑ P2`` iff ``P1(t) ⊆ P2(t)`` for all trees ``t``; weak containment
``P1 ⊑w P2`` is the same under weak-embedding semantics.  Following [14]
(and [10] for the weak case), containment is decided on *canonical
models*: ``P1 ⊑ P2`` iff for every canonical model of ``P1`` (with
distinguished output ``o``) there is an embedding of ``P2`` producing
``o``.  Expansion lengths can be bounded by the star length of ``P2``
(longest child-edge chain of wildcards) plus a constant: a ⊥-path longer
than every star chain of ``P2`` can absorb extra length via a descendant
edge, so longer expansions add no new counterexamples.

Two engines are provided:

* :func:`hom_containment` — the PTIME homomorphism test.  Always *sound*
  for containment; *complete* exactly on the three sub-fragments
  ``XP{//,[]}``, ``XP{//,*}``, ``XP{[],*}`` [14].  This is the engine
  behind the paper's PTIME results ([17], Corollary 4.8 context).
* :func:`canonical_containment` — the complete coNP procedure on all of
  ``XP{//,[],*}``; cost is exponential in the number of descendant edges
  of the contained pattern.

:func:`contains` dispatches automatically and memoizes results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ContainmentBudgetError
from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..patterns.fragments import homomorphism_complete
from .canonical import canonical_models, count_canonical_models, star_length
from .embedding import Matcher

__all__ = [
    "ContainmentStats",
    "STATS",
    "contains",
    "equivalent",
    "weakly_contains",
    "weakly_equivalent",
    "hom_containment",
    "canonical_containment",
    "hom_exists",
    "clear_cache",
    "expansion_bound",
]


@dataclass
class ContainmentStats:
    """Counters for containment-engine activity (benchmark instrumentation)."""

    hom_tests: int = 0
    canonical_tests: int = 0
    canonical_models_checked: int = 0
    cache_hits: int = 0

    def reset(self) -> None:
        self.hom_tests = 0
        self.canonical_tests = 0
        self.canonical_models_checked = 0
        self.cache_hits = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hom_tests": self.hom_tests,
            "canonical_tests": self.canonical_tests,
            "canonical_models_checked": self.canonical_models_checked,
            "cache_hits": self.cache_hits,
        }


#: Module-level statistics, reset via ``STATS.reset()``.
STATS = ContainmentStats()

# Result cache keyed by (key1, key2, weak).
_CACHE: dict[tuple, bool] = {}


def clear_cache() -> None:
    """Drop all memoized containment results."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# Homomorphism engine (PTIME)
# ----------------------------------------------------------------------

def hom_exists(src: Pattern, dst: Pattern, require_root: bool = True) -> bool:
    """Is there a homomorphism from ``src`` to ``dst``?

    A homomorphism maps nodes of ``src`` to nodes of ``dst`` such that

    * non-wildcard labels are preserved,
    * child edges map to child edges,
    * descendant edges map to proper-descendant paths (length ≥ 1, any
      edge types), and
    * the output of ``src`` maps to the output of ``dst``; the root maps
      to the root unless ``require_root`` is False (the *weak* variant).

    Existence implies ``dst ⊑ src``.
    """
    if src.is_empty or dst.is_empty:
        # Υ has no nodes: vacuous homomorphism exists only from Υ.
        return src.is_empty
    dst_nodes = list(dst.nodes())
    dst_children: dict[int, list[PNode]] = {}
    for parent, axis, child in dst.edges():
        if axis is Axis.CHILD:
            dst_children.setdefault(id(parent), []).append(child)
    # strict_below[v] = all nodes strictly below v (any edge types).
    strict_below: dict[int, set[int]] = {}

    def below(node: PNode) -> set[int]:
        result: set[int] = set()
        for _, child in node.edges:
            result.add(id(child))
            result |= below(child)
        strict_below[id(node)] = result
        return result

    below(dst.root)  # type: ignore[arg-type]

    def compat(n: PNode, v: PNode) -> bool:
        # The output of src must land on the output of dst; other nodes
        # are unconstrained (they may share dst's output).
        if n is src.output and v is not dst.output:
            return False
        return n.label == WILDCARD or n.label == v.label

    sat: dict[int, set[int]] = {}

    def rec(n: PNode) -> None:
        for _, child in n.edges:
            rec(child)
        ok: set[int] = set()
        for v in dst_nodes:
            if not compat(n, v):
                continue
            good = True
            for axis, child in n.edges:
                child_sat = sat[id(child)]
                if axis is Axis.CHILD:
                    if not any(
                        id(u) in child_sat for u in dst_children.get(id(v), [])
                    ):
                        good = False
                        break
                else:
                    if not (strict_below[id(v)] & child_sat):
                        good = False
                        break
            if good:
                ok.add(id(v))
        sat[id(n)] = ok

    rec(src.root)  # type: ignore[arg-type]
    if require_root:
        return id(dst.root) in sat[id(src.root)]
    return bool(sat[id(src.root)])


def hom_containment(p1: Pattern, p2: Pattern) -> bool:
    """The homomorphism test for ``p1 ⊑ p2``: a homomorphism ``p2 → p1``.

    Sound always; complete iff the patterns jointly fit one of the three
    sub-fragments (use :func:`repro.patterns.homomorphism_complete`).
    """
    STATS.hom_tests += 1
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    return hom_exists(p2, p1)


# ----------------------------------------------------------------------
# Canonical-model engine (complete, coNP)
# ----------------------------------------------------------------------

def expansion_bound(container: Pattern) -> int:
    """Descendant-edge expansion bound sufficient for testing ``· ⊑ container``.

    ``star_length(container) + 2``: one more than the longest all-wildcard
    child chain (the [14] bound), plus a safety margin of one.  Larger
    bounds only add redundant models (soundness is unaffected).
    """
    return star_length(container) + 2


def canonical_containment(
    p1: Pattern,
    p2: Pattern,
    weak: bool = False,
    max_models: int | None = None,
) -> bool:
    """Complete containment test: ``p1 ⊑ p2`` (or ``p1 ⊑w p2``).

    Enumerates the canonical models of ``p1`` with expansions bounded by
    :func:`expansion_bound` of ``p2`` and requires, for each model with
    distinguished output ``o``, an embedding of ``p2`` producing ``o``
    (a weak embedding when ``weak=True``).

    Raises
    ------
    ContainmentBudgetError
        If the model count exceeds ``max_models``.
    """
    STATS.canonical_tests += 1
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    bound = expansion_bound(p2)
    total = count_canonical_models(p1, bound)
    if max_models is not None and total > max_models:
        raise ContainmentBudgetError(
            f"containment test needs {total} canonical models "
            f"(budget {max_models})"
        )
    for model in canonical_models(p1, bound):
        STATS.canonical_models_checked += 1
        images = Matcher(p2, model.tree).output_images(weak=weak)
        if model.output not in images:
            return False
    return True


# ----------------------------------------------------------------------
# Public dispatching API
# ----------------------------------------------------------------------

def contains(
    p1: Pattern,
    p2: Pattern,
    max_models: int | None = None,
    use_cache: bool = True,
) -> bool:
    """Decide ``p1 ⊑ p2`` (Definition 2.2).  Complete on ``XP{//,[],*}``.

    Strategy: if the pair fits a homomorphism-complete sub-fragment the
    PTIME test decides; otherwise the homomorphism test is tried as a
    sufficient condition before falling back to the canonical-model
    procedure.
    """
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    key = (p1.canonical_key(), p2.canonical_key(), False)
    if use_cache and key in _CACHE:
        STATS.cache_hits += 1
        return _CACHE[key]
    if homomorphism_complete(p1, p2):
        result = hom_containment(p1, p2)
    elif hom_containment(p1, p2):
        result = True
    else:
        result = canonical_containment(p1, p2, weak=False, max_models=max_models)
    if use_cache:
        _CACHE[key] = result
    return result


def weakly_contains(
    p1: Pattern,
    p2: Pattern,
    max_models: int | None = None,
    use_cache: bool = True,
) -> bool:
    """Decide weak containment ``p1 ⊑w p2`` (Definition 2.3).

    Uses the weak-homomorphism test (root preservation dropped) as a
    sufficient fast path, then the canonical-model procedure with weak
    embeddings ([10] notes the canonical test adapts to weak semantics).
    """
    if p1.is_empty:
        return True
    if p2.is_empty:
        return False
    key = (p1.canonical_key(), p2.canonical_key(), True)
    if use_cache and key in _CACHE:
        STATS.cache_hits += 1
        return _CACHE[key]
    # Sound fast path: a root-free homomorphism p2 → p1 composes with any
    # weak embedding of p1 to give a weak embedding of p2.
    STATS.hom_tests += 1
    if hom_exists(p2, p1, require_root=False):
        result = True
    else:
        result = canonical_containment(p1, p2, weak=True, max_models=max_models)
    if use_cache:
        _CACHE[key] = result
    return result


def equivalent(p1: Pattern, p2: Pattern, max_models: int | None = None) -> bool:
    """Decide ``p1 ≡ p2``: containment in both directions."""
    return contains(p1, p2, max_models=max_models) and contains(
        p2, p1, max_models=max_models
    )


def weakly_equivalent(
    p1: Pattern, p2: Pattern, max_models: int | None = None
) -> bool:
    """Decide ``p1 ≡w p2``: weak containment in both directions."""
    return weakly_contains(p1, p2, max_models=max_models) and weakly_contains(
        p2, p1, max_models=max_models
    )
