"""Pattern transformations used by the rewriting machinery.

* :func:`relax_root` — ``Q_r//``: every edge emanating from the root
  becomes a descendant edge (Section 4; ``Q ⊑ Q_r//`` always holds).
* :func:`label_descendant` — ``l//Q``: a new root labeled ``l`` above
  ``Q`` via a descendant edge (Section 5.2).
* :func:`extend` — the ``l``-extension ``Q+l`` (Section 5.3): a child
  labeled ``l`` under the output node and a wildcard child under every
  other leaf.
* :func:`lift_output` — ``Q^{j→}``: move the output node up to the j-node
  of the selection path (Section 5.3).
"""

from __future__ import annotations

from ..errors import EmptyPatternError, PatternStructureError
from ..patterns.ast import Axis, Pattern, PNode, WILDCARD

__all__ = ["relax_root", "label_descendant", "extend", "lift_output"]


def relax_root(pattern: Pattern) -> Pattern:
    """``Q_r//``: relax (make descendant) all edges leaving the root.

    ``Q ⊑ Q_r//`` holds for every ``Q`` since a child pair is in
    particular a proper ancestor-descendant pair.
    """
    if pattern.is_empty:
        raise EmptyPatternError("cannot relax the empty pattern")
    copy = pattern.copy()
    copy.root.edges = [  # type: ignore[union-attr]
        (Axis.DESCENDANT, child) for _, child in copy.root.edges  # type: ignore[union-attr]
    ]
    copy._key_cache = None
    return Pattern(copy.root, copy.output)


def label_descendant(label: str, pattern: Pattern) -> Pattern:
    """``l//Q``: a fresh root labeled ``l`` with a descendant edge to Q.

    The output node is that of ``Q`` (Section 5.2, Proposition 5.5).
    """
    if pattern.is_empty:
        raise EmptyPatternError("cannot extend the empty pattern with a root")
    copy, mapping = pattern.copy_with_map()
    new_root = PNode(label)
    new_root.add(Axis.DESCENDANT, copy.root)  # type: ignore[arg-type]
    return Pattern(new_root, mapping[pattern.output])  # type: ignore[index]


def extend(pattern: Pattern, label: str) -> Pattern:
    """The ``l``-extension ``Q+l`` (Section 5.3).

    Adds (all by child edges):

    * a child labeled ``label`` to the output node, and
    * a child labeled ``*`` to every leaf — except that when the output
      node is itself a leaf it receives only the ``label`` child.
    """
    if pattern.is_empty:
        raise EmptyPatternError("cannot extend the empty pattern")
    copy, mapping = pattern.copy_with_map()
    out = mapping[pattern.output]  # type: ignore[index]
    # Collect leaves before adding any new nodes.
    leaves = [node for node in copy.nodes() if not node.edges]
    for leaf in leaves:
        if leaf is out:
            continue
        leaf.add(Axis.CHILD, PNode(WILDCARD))
    out.add(Axis.CHILD, PNode(label))
    copy._key_cache = None
    return Pattern(copy.root, out)


def lift_output(pattern: Pattern, j: int) -> Pattern:
    """``Q^{j→}``: the same tree with the output moved to the j-node.

    ``j`` indexes the (original) selection path; ``Q^{h→}`` with ``h`` the
    original depth is ``Q`` itself (Section 5.3).
    """
    if pattern.is_empty:
        raise EmptyPatternError("cannot lift the output of the empty pattern")
    path = pattern.selection_path()
    if not 0 <= j < len(path):
        raise PatternStructureError(
            f"lift_output: j={j} out of range for depth {len(path) - 1}"
        )
    copy, mapping = pattern.copy_with_map()
    return Pattern(copy.root, mapping[path[j]])
