"""The rewriting solver (paper Sections 4 and 5).

Given a query pattern ``P`` and a view pattern ``V``, decide whether an
equivalent rewriting ``R`` (``R ∘ V ≡ P``) exists, and produce one.

The algorithm follows the paper:

1. **Prechecks** (Proposition 3.1): the view may not be deeper than the
   query, and the selection-node labels of ``V`` must agree with those of
   ``P`` above depth ``k`` (with the glb-compatibility condition at depth
   ``k``).  Violations refute existence outright.
2. **Natural candidates** (Section 4): test ``P≥k`` and ``P≥k_r//`` by
   equivalence of their composition with ``V`` against ``P`` — at most
   two (coNP) containment-based tests.
3. **Completeness certificates** (Theorems 4.3, 4.4, 4.9, 4.10, 4.16;
   Corollaries 5.2, 5.7; Theorem 5.4; Propositions 3.5, 5.6; Theorem 5.9
   with Corollary 5.11): syntactic conditions under which the natural
   candidates are complete — if both failed, **no rewriting exists**.
   Certificates are checked on the original instance and on derived
   instances produced by the Section 5 transformations (ignoring
   all-but-last descendant edges; extension + output lifting).
4. **Fallback** (Proposition 3.4): bounded exhaustive search.  Finding a
   rewriting is definitive; exhausting the budget is reported as
   ``UNKNOWN`` — faithfully mirroring the paper, where the exact
   complexity of the unrestricted problem is open.

Every decision carries a trace and test counters used by the paper-claims
benchmarks (C3, C4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..patterns.ast import Axis, Pattern, WILDCARD
from .candidates import natural_candidates
from .composition import compose
from .containment import ContainmentBatch, contains
from .decide import exhaustive_search
from .selection import (
    last_descendant_selection_depth,
    selection_prefix_all_child,
    sub_ge,
)
from .stability import is_in_gnf, is_stable
from .transform import extend, label_descendant, lift_output

__all__ = [
    "RewriteStatus",
    "RewriteResult",
    "RewriteSolver",
    "find_rewriting",
    "precheck_refutation",
]


def precheck_refutation(query: Pattern, view: Pattern) -> str | None:
    """The Proposition 3.1 prechecks: a refutation rule name, or None.

    Purely syntactic — no containment tests.  Shared by the solver's
    step 1 and the view advisor's candidate screening, so the two can
    never drift apart.
    """
    d, k = query.depth, view.depth
    if k > d:
        return "prop-3.1-depth"
    qpath = query.selection_path()
    vpath = view.selection_path()
    # For i < k, the i-node of R ∘ V is the i-node of V; equivalent
    # patterns have identical selection-node labels (Prop 3.1 Part 3).
    for i in range(k):
        if qpath[i].label != vpath[i].label:
            return "prop-3.1-label-mismatch"
    # At depth k the merged node's label is glb(root(R), out(V)).
    target = qpath[k].label
    view_out = vpath[k].label
    if view_out != WILDCARD and target == WILDCARD:
        # §4: "if the label of the k-node of P is ∗ and that of
        # out(V) is not, then a rewriting does not exist".
        return "prop-3.1-wildcard-k-node"
    if view_out != WILDCARD and view_out != target:
        return "prop-3.1-output-label"
    return None


class RewriteStatus(Enum):
    """Outcome of a rewriting decision."""

    FOUND = "found"
    NO_REWRITING = "no-rewriting"
    UNKNOWN = "unknown"


@dataclass
class RewriteResult:
    """A rewriting decision with its derivation.

    Attributes
    ----------
    status:
        FOUND / NO_REWRITING / UNKNOWN.
    rewriting:
        The verified rewriting when status is FOUND.
    rule:
        The decisive rule: a discovery rule (``natural-candidate``,
        ``prop-3.4-search``), a refutation precheck, or the completeness
        certificate that justified NO_REWRITING.
    candidates:
        The natural candidates that were tested.
    equivalence_tests:
        Number of (coNP) equivalence tests performed — the paper's "only
        a few containment tests" claim (benchmark C3).
    fallback_tried:
        Candidates examined by the exhaustive fallback (0 if unused).
    trace:
        Human-readable derivation log.
    """

    status: RewriteStatus
    rewriting: Pattern | None = None
    rule: str | None = None
    candidates: list[Pattern] = field(default_factory=list)
    equivalence_tests: int = 0
    fallback_tried: int = 0
    trace: list[str] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.status is RewriteStatus.FOUND


@dataclass
class _Instance:
    """A (possibly derived) rewriting instance with its provenance."""

    query: Pattern
    view: Pattern
    via: str  # transformation chain, "" for the original instance


class RewriteSolver:
    """Configurable solver for the rewriting-existence problem.

    Parameters
    ----------
    use_fallback:
        Run the Prop 3.4 bounded search when no certificate applies.
    fallback_extra_nodes / fallback_max_candidates:
        Budget of the exhaustive search.
    max_models:
        Canonical-model budget per containment test (None = unbounded).
    derived_depth:
        How many Section 5 transformations may be chained when looking
        for a completeness certificate (2 covers the paper's examples,
        e.g. extension+lifting followed by Corollary 5.7).
    """

    def __init__(
        self,
        use_fallback: bool = True,
        use_certificates: bool = True,
        fallback_extra_nodes: int = 2,
        fallback_max_candidates: int | None = 20000,
        max_models: int | None = None,
        derived_depth: int = 2,
    ):
        self.use_fallback = use_fallback
        self.use_certificates = use_certificates
        self.fallback_extra_nodes = fallback_extra_nodes
        self.fallback_max_candidates = fallback_max_candidates
        self.max_models = max_models
        self.derived_depth = derived_depth

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def solve(self, query: Pattern, view: Pattern) -> RewriteResult:
        """Decide rewriting existence for ``(query, view)``."""
        result = RewriteResult(status=RewriteStatus.UNKNOWN)

        # Degenerate instances.
        if query.is_empty:
            result.status = RewriteStatus.FOUND
            result.rewriting = Pattern.empty()
            result.rule = "empty-query"
            result.trace.append("P = Υ: the empty rewriting works (Υ ∘ V = Υ).")
            return result
        if view.is_empty:
            result.status = RewriteStatus.NO_REWRITING
            result.rule = "empty-view"
            result.trace.append("V = Υ: R ∘ Υ = Υ ≢ P for nonempty P.")
            return result

        d, k = query.depth, view.depth
        result.trace.append(f"depths: d = {d} (query), k = {k} (view).")

        # Step 1: Prop 3.1 prechecks.
        refutation = self._precheck(query, view)
        if refutation is not None:
            result.status = RewriteStatus.NO_REWRITING
            result.rule = refutation
            result.trace.append(f"precheck refutation: {refutation}.")
            return result

        # Step 2: natural candidates (at most two equivalence tests).
        # The ``query ⊑ R ∘ V`` direction goes through a ContainmentBatch
        # so the canonical-model setup for ``query`` is shared across the
        # candidates — lazily, so a first-candidate hit (the common case)
        # still performs a single equivalence test.
        result.candidates = natural_candidates(query, k)
        backward = ContainmentBatch(query, max_models=self.max_models)
        for candidate in result.candidates:
            result.equivalence_tests += 1
            composition = compose(candidate, view)
            if backward.contains(composition) and contains(
                composition, query, max_models=self.max_models
            ):
                result.status = RewriteStatus.FOUND
                result.rewriting = candidate
                result.rule = "natural-candidate"
                result.trace.append(
                    f"candidate {candidate!r} verified: R ∘ V ≡ P."
                )
                return result
        result.trace.append(
            f"natural candidates failed ({len(result.candidates)} tested)."
        )

        # Step 3: completeness certificates.
        if self.use_certificates:
            certificate = self.find_certificate(query, view)
            if certificate is not None:
                result.status = RewriteStatus.NO_REWRITING
                result.rule = certificate
                result.trace.append(
                    f"certificate {certificate}: candidates are complete; "
                    "no rewriting exists."
                )
                return result
            result.trace.append("no completeness certificate applies.")
        else:
            result.trace.append("certificates disabled; skipping to fallback.")

        # Step 4: bounded exhaustive fallback (Prop 3.4).
        if self.use_fallback:
            outcome = exhaustive_search(
                query,
                view,
                max_extra_nodes=self.fallback_extra_nodes,
                max_candidates=self.fallback_max_candidates,
                max_models=self.max_models,
            )
            result.fallback_tried = outcome.tried
            result.equivalence_tests += outcome.tried
            if outcome.rewriting is not None:
                result.status = RewriteStatus.FOUND
                result.rewriting = outcome.rewriting
                result.rule = "prop-3.4-search"
                result.trace.append(
                    f"exhaustive search found a rewriting after "
                    f"{outcome.tried} candidates."
                )
                return result
            result.trace.append(
                f"exhaustive search exhausted its budget "
                f"({outcome.tried} candidates, no rewriting)."
            )
        result.status = RewriteStatus.UNKNOWN
        result.rule = None
        return result

    # ------------------------------------------------------------------
    # Step 1: Prop 3.1 prechecks
    # ------------------------------------------------------------------
    def _precheck(self, query: Pattern, view: Pattern) -> str | None:
        return precheck_refutation(query, view)

    # ------------------------------------------------------------------
    # Step 3: certificates
    # ------------------------------------------------------------------
    def find_certificate(self, query: Pattern, view: Pattern) -> str | None:
        """A completeness certificate for the instance, or None.

        When a certificate is returned, the natural candidates are
        *complete*: if neither is a rewriting, none exists.  Checks the
        base Section 4 conditions on the instance itself, then on
        instances derived via the Section 5 transformations (the ``via``
        chain is encoded in the returned rule name, e.g.
        ``prop-5.6+thm-4.16`` is exactly Corollary 5.7).
        """
        instances = [_Instance(query, view, via="")]
        frontier = instances
        for _ in range(self.derived_depth):
            next_frontier: list[_Instance] = []
            for instance in frontier:
                next_frontier.extend(self._derive(instance))
            instances.extend(next_frontier)
            frontier = next_frontier

        for instance in instances:
            rule = self._base_certificate(instance.query, instance.view)
            if rule is not None:
                return rule if not instance.via else f"{instance.via}+{rule}"
        return None

    def _base_certificate(self, query: Pattern, view: Pattern) -> str | None:
        """The Section 4 conditions (plus Prop 3.5 and Cor 5.2)."""
        d, k = query.depth, view.depth
        if k > d:  # derived instances are checked defensively
            return None

        if k == d:
            return "k-equals-d"
        if k == 0:
            # root(V) = out(V): Prop 3.5 makes P itself potential.
            return "prop-3.5-view-output-at-root"
        if is_stable(sub_ge(query, k)):
            return "thm-4.3-stable-subquery"
        if selection_prefix_all_child(query, k):
            return "thm-4.4-query-prefix-child-edges"
        view_axes = view.selection_axes()
        if view_axes and view_axes[-1] is Axis.DESCENDANT:
            return "thm-4.9-descendant-into-view-output"
        if all(axis is Axis.CHILD for axis in view_axes):
            return "thm-4.10-view-path-child-edges"
        j = last_descendant_selection_depth(query)
        if j is not None and j <= k and view_axes[j - 1] is Axis.DESCENDANT:
            return "thm-4.16-corresponding-descendant-edges"
        if self._cor_5_2(query, view):
            return "cor-5.2-stable-prefix"
        if is_in_gnf(query):
            return "thm-5.4-gnf"
        return None

    @staticmethod
    def _cor_5_2(query: Pattern, view: Pattern) -> bool:
        """Corollary 5.2: a non-wildcard i-node connected to the k-node by
        child edges only, on the selection path of P or of V."""
        k = view.depth
        q_axes = query.selection_axes()
        v_axes = view.selection_axes()
        q_path = query.selection_path()
        v_path = view.selection_path()
        for i in range(k + 1):
            if q_path[i].label != WILDCARD and all(
                axis is Axis.CHILD for axis in q_axes[i:k]
            ):
                return True
            if v_path[i].label != WILDCARD and all(
                axis is Axis.CHILD for axis in v_axes[i:k]
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Section 5 derived instances
    # ------------------------------------------------------------------
    def _derive(self, instance: _Instance) -> list[_Instance]:
        """Instances derived by Prop 5.6 and Thm 5.9 + Cor 5.11.

        Soundness of using them for refutation:

        * Prop 5.6 (ignore all-but-last descendant edges of V): if a
          rewriting of (P, V) exists it is a rewriting of the derived
          instance, whose natural candidates coincide with the original
          ones; a certificate on the derived instance therefore transfers
          the refutation.
        * Thm 5.9 / Cor 5.11 (extension + output lifting at a non-wildcard
          j-node of P, k ≤ j ≤ d): rewriting existence and
          natural-candidate success are preserved in both directions.
        """
        derived: list[_Instance] = []
        query, view = instance.query, instance.view
        d, k = query.depth, view.depth

        # Prop 5.6: cut above the deepest descendant selection edge of V.
        i = last_descendant_selection_depth(view)
        if i is not None and i <= min(k, d):
            reduced_q = label_descendant(WILDCARD, sub_ge(query, i))
            reduced_v = label_descendant(WILDCARD, sub_ge(view, i))
            derived.append(
                _Instance(reduced_q, reduced_v, via=_chain(instance.via, "prop-5.6"))
            )

        # Thm 5.9 / Cor 5.11: extension and output lifting, for every
        # admissible j with a non-wildcard j-node of P.
        mu = _fresh_label(query, view)
        q_path = query.selection_path()
        for j in range(k, d + 1):
            if q_path[j].label == WILDCARD:
                continue
            if j == d:
                continue  # lifting to d is the identity instance
            lifted_q = lift_output(extend(query, mu), j)
            extended_v = extend(view, WILDCARD)
            derived.append(
                _Instance(
                    lifted_q,
                    extended_v,
                    via=_chain(instance.via, f"thm-5.9-lift@{j}"),
                )
            )
        return derived


def _chain(via: str, step: str) -> str:
    return step if not via else f"{via}+{step}"


def _fresh_label(*patterns: Pattern) -> str:
    used: set[str] = set()
    for pattern in patterns:
        used |= pattern.labels()
    base = "µ"
    if base not in used:
        return base
    index = 1
    while f"{base}{index}" in used:
        index += 1
    return f"{base}{index}"


def find_rewriting(
    query: Pattern,
    view: Pattern,
    use_fallback: bool = True,
    max_models: int | None = None,
) -> RewriteResult:
    """Decide rewriting existence with default solver settings.

    Convenience wrapper around :class:`RewriteSolver`.
    """
    solver = RewriteSolver(use_fallback=use_fallback, max_models=max_models)
    return solver.solve(query, view)
