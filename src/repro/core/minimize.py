"""Redundancy elimination for patterns (after [10], used by Prop 3.4).

A branch subtree of a pattern is *redundant* when deleting it yields an
equivalent pattern.  The paper's decidability argument (Proposition 3.4)
assumes candidate rewritings are non-redundant; the exhaustive search in
:mod:`repro.core.decide` uses :func:`minimize` to normalize candidates,
and the view engine uses it to simplify rewritings before evaluation.

Deleting a subtree always *relaxes* a pattern (``P ⊑ P'`` where ``P'`` is
``P`` minus a branch), so redundancy of the branch reduces to the single
containment test ``P' ⊑ P``.

Note: as the paper discusses in its conclusions, non-redundancy does not
obviously coincide with minimality for ``XP{//,[],*}`` (that question is
open); :func:`minimize` computes a non-redundant equivalent pattern, not
necessarily a globally minimum one.
"""

from __future__ import annotations

from ..patterns.ast import Pattern, PNode
from .containment import contains

__all__ = ["minimize", "is_non_redundant", "redundant_branches"]


def _without_edge(pattern: Pattern, parent: PNode, child: PNode) -> Pattern:
    """A copy of ``pattern`` with the subtree at ``child`` removed."""
    copy, mapping = pattern.copy_with_map()
    new_parent = mapping[parent]
    new_child = mapping[child]
    new_parent.edges = [
        (axis, c) for axis, c in new_parent.edges if c is not new_child
    ]
    return Pattern(copy.root, mapping[pattern.output])  # type: ignore[index]


def _removable_edges(pattern: Pattern) -> list[tuple[PNode, PNode]]:
    """Edges whose removal keeps the output node in the pattern."""
    on_path = set(map(id, pattern.selection_path()))
    return [
        (parent, child)
        for parent, _, child in pattern.edges()
        if id(child) not in on_path
    ]


def redundant_branches(
    pattern: Pattern, max_models: int | None = None
) -> list[tuple[PNode, PNode]]:
    """All currently redundant branch edges ``(parent, child)``.

    An edge is redundant when removing the subtree below it preserves
    equivalence.  (Removing one branch can make another non-redundant, so
    use :func:`minimize` — which re-checks after each removal — to reach
    a non-redundant form.)
    """
    if pattern.is_empty:
        return []
    result = []
    for parent, child in _removable_edges(pattern):
        relaxed = _without_edge(pattern, parent, child)
        if contains(relaxed, pattern, max_models=max_models):
            result.append((parent, child))
    return result


def minimize(pattern: Pattern, max_models: int | None = None) -> Pattern:
    """A non-redundant pattern equivalent to ``pattern``.

    Repeatedly removes one redundant branch until none remains.  The
    result is equivalent to the input (each step preserves equivalence by
    construction).
    """
    if pattern.is_empty:
        return pattern
    current = pattern
    changed = True
    while changed:
        changed = False
        for parent, child in _removable_edges(current):
            relaxed = _without_edge(current, parent, child)
            if contains(relaxed, current, max_models=max_models):
                current = relaxed
                changed = True
                break
    return current


def is_non_redundant(pattern: Pattern, max_models: int | None = None) -> bool:
    """True iff no branch of the pattern is redundant."""
    return not redundant_branches(pattern, max_models=max_models)
