"""Process-sharded canonical-model checking (the big-bound regime).

Gray-code segments of :meth:`CanonicalEngine.models` are embarrassingly
parallel: :func:`~repro.core.canonical.gray_vector_at` opens an
enumeration at any rank, so the model space splits into contiguous rank
segments, one per worker process.  The plumbing reuses the catalog
server's shape (:class:`repro.shardpool.ShardPool`): single-worker
shards primed once, picklable specs as transport, a deterministic
inline mode as the semantics reference.

Transport is **structural**, not textual: patterns cross the process
boundary as postorder node tuples (:func:`pattern_to_spec`), because an
XPath round-trip does not preserve edge order — and edge order is what
fixes the descendant-edge indexing, hence the Gray rank↔vector mapping
and every memo fingerprint the driver replays.  Workers keep small LRU
caches of decoded patterns and built engines, so a shard serving the
same ``(pattern, bound)`` stays warm across tasks exactly like a
catalog shard's planning caches.

Degradation policy (the 1-CPU reference container): requesting
``workers >= 2`` on a single-core box, for a model space below
:data:`SHARD_MIN_MODELS`, or after a pool failure silently runs the
inline walk instead — counted as ``shard_fallbacks`` in
:class:`~repro.core.containment.ContainmentStats`.
"""

from __future__ import annotations

import atexit
import os
from collections import OrderedDict

from ..patterns.ast import Axis, Pattern, PNode
from ..shardpool import ShardPool
from .canonical import CanonicalEngine
from .embedding import pattern_postorder

__all__ = [
    "SHARD_MIN_MODELS",
    "effective_workers",
    "pattern_from_spec",
    "pattern_to_spec",
    "shard_pool",
    "shard_segments",
    "shutdown_pool",
]

#: Below this many canonical models, per-task overhead (pickling, IPC)
#: outweighs any parallel win; such requests run inline.
SHARD_MIN_MODELS = 32

#: Spec type: ``(postorder node tuples, output slot)`` or ``None`` for Υ.
PatternSpec = "tuple[tuple[tuple[str, tuple[tuple[int, int], ...]], ...], int] | None"


def _cpu_count() -> int:
    """Visible seam so tests can force single- or multi-core behavior."""
    return os.cpu_count() or 1


def pattern_to_spec(pattern: Pattern):
    """A picklable structural spec of ``pattern``.

    Postorder node tuples ``(label, ((axis_value, child_slot), ...))``
    plus the output node's slot.  Unlike an XPath round-trip this
    preserves **edge order**, which :func:`pattern_from_spec` replays
    verbatim — so a worker's rebuilt pattern enumerates descendant
    edges, Gray ranks and memo fingerprints identically to the
    driver's original.
    """
    if pattern.is_empty:
        return None
    nodes = pattern_postorder(pattern.root)  # type: ignore[arg-type]
    slot_of = {id(node): i for i, node in enumerate(nodes)}
    return (
        tuple(
            (
                node.label,
                tuple(
                    (int(axis), slot_of[id(child)])
                    for axis, child in node.edges
                ),
            )
            for node in nodes
        ),
        slot_of[id(pattern.output)],
    )


def pattern_from_spec(spec) -> Pattern:
    """Rebuild a :class:`Pattern` from :func:`pattern_to_spec` output.

    Iterative (postorder slots resolve children before parents), so
    chain patterns deeper than the recursion limit decode fine.
    """
    if spec is None:
        return Pattern.empty()
    node_specs, output_slot = spec
    built: list[PNode] = []
    for label, edges in node_specs:
        built.append(
            PNode(label, [(Axis(axis), built[slot]) for axis, slot in edges])
        )
    return Pattern(built[-1], built[output_slot])


def effective_workers(requested: int, total_models: int) -> int:
    """How many shards a request actually gets (0 = run inline).

    ``requested <= 1`` is inline by definition; multi-worker requests
    degrade to inline on a single-core box or when the model space is
    too small to amortize task overhead.  Never exceeds the model
    count (each shard needs at least one rank).
    """
    if requested < 0:
        raise ValueError("workers must be >= 0")
    if requested <= 1:
        return 0
    if _cpu_count() < 2:
        return 0
    if total_models < SHARD_MIN_MODELS:
        return 0
    return min(requested, total_models)


def shard_segments(total: int, shards: int) -> list[tuple[int, int]]:
    """Split ranks ``0..total-1`` into ``shards`` contiguous segments.

    Balanced to within one rank; every segment is non-empty (callers
    guarantee ``shards <= total`` via :func:`effective_workers`).
    """
    base, extra = divmod(total, shards)
    segments: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        count = base + (1 if index < extra else 0)
        segments.append((start, count))
        start += count
    return segments


# ----------------------------------------------------------------------
# Worker-process plumbing (module-level for picklability)
# ----------------------------------------------------------------------

#: Per-worker cache bounds: a shard typically serves one hot
#: ``(pattern, bound)`` pair plus a handful of containers.
_WORKER_ENGINE_LIMIT = 8
_WORKER_PATTERN_LIMIT = 64

_WORKER_ENGINES: OrderedDict[tuple, CanonicalEngine] = OrderedDict()
_WORKER_PATTERNS: OrderedDict[tuple, Pattern] = OrderedDict()


def _init_worker() -> None:
    _WORKER_ENGINES.clear()
    _WORKER_PATTERNS.clear()


def _worker_pattern(spec) -> Pattern:
    """Decode ``spec``, serving the *same* object for repeated specs.

    Identity matters: the engine's per-container plan cache (and with
    it the embeds memo) is keyed by pattern identity, so a shard
    re-serving a container must hand the engine the same object.
    """
    pattern = _WORKER_PATTERNS.get(spec)
    if pattern is None:
        pattern = pattern_from_spec(spec)
        _WORKER_PATTERNS[spec] = pattern
        while len(_WORKER_PATTERNS) > _WORKER_PATTERN_LIMIT:
            _WORKER_PATTERNS.popitem(last=False)
    else:
        _WORKER_PATTERNS.move_to_end(spec)
    return pattern


def _worker_engine(p1_spec, bound: int) -> CanonicalEngine:
    key = (p1_spec, bound)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = CanonicalEngine(pattern_from_spec(p1_spec), bound)
        _WORKER_ENGINES[key] = engine
        while len(_WORKER_ENGINES) > _WORKER_ENGINE_LIMIT:
            _WORKER_ENGINES.popitem(last=False)
    else:
        _WORKER_ENGINES.move_to_end(key)
    return engine


def _shard_task(
    p1_spec, bound: int, p2_spec, weak: bool, start: int, count: int
) -> tuple[int | None, dict[int, bool]]:
    """Check embeds over Gray ranks ``start .. start+count-1``.

    Returns ``(first failing offset or None, fingerprint→verdict map
    for every rank checked)``.  Stops at the segment's first failure —
    the driver only replays up to the *global* first failure, and
    every rank at or before it is covered by its segment's map.
    """
    engine = _worker_engine(p1_spec, bound)
    q = _worker_pattern(p2_spec)
    verdicts: dict[int, bool] = {}
    fail_offset: int | None = None
    for offset, state in enumerate(engine.models_slice(start, count)):
        fp = state.embed_fingerprint(q, weak)
        ok = state.embeds(q, weak=weak)
        verdicts[fp] = ok
        if not ok:
            fail_offset = offset
            break
    return fail_offset, verdicts


# ----------------------------------------------------------------------
# Driver-side pool lifecycle
# ----------------------------------------------------------------------

_POOL: ShardPool | None = None


def shard_pool(shards: int) -> ShardPool:
    """The persistent shard fleet, grown to at least ``shards`` shards.

    Persistent across containment calls so worker caches stay warm;
    an oversized fleet serves smaller requests by using a prefix of
    its shards.
    """
    global _POOL
    if _POOL is None or _POOL.closed or len(_POOL) < shards:
        shutdown_pool()
        _POOL = ShardPool(_init_worker, [() for _ in range(shards)])
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent fleet (tests, interpreter exit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None


atexit.register(shutdown_pool)
