"""Pattern composition ``R ∘ V`` (paper Section 2.3).

The greatest lower bound of two labels (``glb``) merges the output node of
``V`` with the root of ``R``; when the labels are incompatible the result
is the empty pattern Υ.  Proposition 2.4 — ``R ∘ V (t) = R(V(t))`` for all
trees — is the semantic justification for view-based rewriting and is
verified by the test suite using the embedding engine.
"""

from __future__ import annotations

from ..patterns.ast import Pattern, WILDCARD

__all__ = ["glb", "compose"]


def glb(label1: str, label2: str) -> str | None:
    """Greatest lower bound of two labels (Section 2.3).

    ``glb(l, l) = glb(l, *) = glb(*, l) = l``; two distinct Σ-labels have
    no lower bound — the paper writes ``3``, we return None.
    """
    if label1 == label2:
        return label1
    if label1 == WILDCARD:
        return label2
    if label2 == WILDCARD:
        return label1
    return None


def compose(rewriting: Pattern, view: Pattern) -> Pattern:
    """The composition ``R ∘ V``: merge ``out(V)`` with ``root(R)``.

    Returns the empty pattern Υ when either input is Υ or when the merged
    labels are incompatible.  The result has the root of ``V`` and the
    output of ``R`` (the merged node itself when ``root(R) = out(R)``).

    Both inputs are copied; the result shares no nodes with them.
    """
    if rewriting.is_empty or view.is_empty:
        return Pattern.empty()

    merged_label = glb(rewriting.root.label, view.output.label)  # type: ignore[union-attr]
    if merged_label is None:
        return Pattern.empty()

    view_copy, view_map = view.copy_with_map()
    rew_copy, rew_map = rewriting.copy_with_map()

    merged = view_map[view.output]  # type: ignore[index]
    merged.label = merged_label
    # The merged node keeps out(V)'s branches and gains root(R)'s edges.
    merged.edges.extend(rew_copy.root.edges)  # type: ignore[union-attr]

    if rewriting.root is rewriting.output:
        output = merged
    else:
        output = rew_map[rewriting.output]  # type: ignore[index]
    return Pattern(view_copy.root, output)
