"""Selection paths and sub-patterns (paper Section 3.1).

For a pattern ``P`` of depth ``d`` and ``0 ≤ k ≤ d``:

* ``P≥k`` (:func:`sub_ge`) — the subtree rooted at the k-node, output
  unchanged;
* ``P≤k`` (:func:`sub_le`) — ``P`` with the subtree below the (k+1)-node
  pruned, output moved to the k-node;
* ``P>k`` / ``P<k`` (:func:`sub_gt` / :func:`sub_lt`) — strict variants;
* ``P1 =k⇒ P2`` (:func:`combine`) — a descendant edge from the k-node of
  ``P1`` to the root of ``P2``, output that of ``P2``.

All functions return fresh patterns (inputs are never mutated).
"""

from __future__ import annotations

from ..errors import PatternStructureError
from ..patterns.ast import Axis, Pattern

__all__ = [
    "sub_ge",
    "sub_le",
    "sub_gt",
    "sub_lt",
    "combine",
    "selection_edge_axes",
    "last_descendant_selection_depth",
    "selection_prefix_all_child",
]


def _check_range(pattern: Pattern, k: int, low: int, high: int, what: str) -> None:
    if not low <= k <= high:
        raise PatternStructureError(
            f"{what} requires {low} <= k <= {high}, got k={k} "
            f"(pattern depth {pattern.depth})"
        )


def sub_ge(pattern: Pattern, k: int) -> Pattern:
    """The k-sub-pattern ``P≥k``: subtree at the k-node, same output."""
    _check_range(pattern, k, 0, pattern.depth, "P>=k")
    copy, mapping = pattern.copy_with_map()
    k_node = mapping[pattern.selection_path()[k]]
    output = mapping[pattern.output]  # type: ignore[index]
    return Pattern(k_node, output)


def sub_le(pattern: Pattern, k: int) -> Pattern:
    """The k-upper-pattern ``P≤k``: prune below the (k+1)-node.

    The output node becomes the k-node.  Branches hanging off the k-node
    are retained — only the selection child is removed.
    """
    _check_range(pattern, k, 0, pattern.depth, "P<=k")
    copy, mapping = pattern.copy_with_map()
    path = pattern.selection_path()
    k_node = mapping[path[k]]
    if k < pattern.depth:
        next_node = mapping[path[k + 1]]
        k_node.edges = [
            (axis, child) for axis, child in k_node.edges if child is not next_node
        ]
    return Pattern(copy.root, k_node)


def sub_gt(pattern: Pattern, k: int) -> Pattern:
    """``P>k`` = ``P≥(k+1)`` for ``0 ≤ k < d``."""
    _check_range(pattern, k, 0, pattern.depth - 1, "P>k")
    return sub_ge(pattern, k + 1)


def sub_lt(pattern: Pattern, k: int) -> Pattern:
    """``P<k`` = ``P≤(k-1)`` for ``0 < k ≤ d``."""
    _check_range(pattern, k, 1, pattern.depth, "P<k")
    return sub_le(pattern, k - 1)


def combine(upper: Pattern, k: int, lower: Pattern) -> Pattern:
    """``upper =k⇒ lower``: descendant edge from upper's k-node to lower.

    The combined pattern keeps upper's root and takes lower's output
    (Section 3.1).  For example, if a descendant edge enters the k-node of
    ``P``, then ``P<k =k-1⇒ P≥k`` is ``P`` itself.
    """
    if lower.is_empty:
        raise PatternStructureError("cannot combine with the empty pattern")
    _check_range(upper, k, 0, upper.depth, "combine")
    upper_copy, upper_map = upper.copy_with_map()
    lower_copy, lower_map = lower.copy_with_map()
    k_node = upper_map[upper.selection_path()[k]]
    k_node.add(Axis.DESCENDANT, lower_copy.root)  # type: ignore[arg-type]
    return Pattern(upper_copy.root, lower_map[lower.output])  # type: ignore[index]


# ----------------------------------------------------------------------
# Selection-edge predicates used by the rewriting conditions
# ----------------------------------------------------------------------

def selection_edge_axes(pattern: Pattern) -> list[Axis]:
    """Axes of the selection edges, top-down (alias of selection_axes)."""
    return pattern.selection_axes()


def last_descendant_selection_depth(pattern: Pattern) -> int | None:
    """Depth of the node the *deepest* descendant selection edge enters.

    The depth of a selection edge ``(m, n)`` is the depth of ``n``
    (Section 5.2).  None when the selection path has no descendant edge.
    """
    axes = pattern.selection_axes()
    deepest = None
    for index, axis in enumerate(axes):
        if axis is Axis.DESCENDANT:
            deepest = index + 1
    return deepest


def selection_prefix_all_child(pattern: Pattern, k: int) -> bool:
    """True iff the first ``k`` selection edges are all child edges."""
    axes = pattern.selection_axes()
    return all(axis is Axis.CHILD for axis in axes[:k])
