"""repro — a reproduction of *On Rewriting XPath Queries Using Views*
(Afrati, Chirkova, Gergatsoulis, Kimelfeld, Pavlaki, Sagiv; EDBT 2009).

The library implements, from scratch:

* the XPath fragment ``XP{//,[],*}`` (tree patterns with child edges,
  descendant edges, branches and wildcards) with parsing, serialization
  and evaluation over XML trees;
* containment and equivalence engines (PTIME homomorphism test, complete
  coNP canonical-model test, weak variants);
* the paper's rewriting machinery: pattern composition, selection-path
  toolkit, natural candidates, completeness certificates and the full
  rewriting solver, plus the decidability fallback of Proposition 3.4;
* a materialized-view query engine (view store, cache, multi-view
  planner) built on the rewriting solver;
* workload generators and the paper-figure reconstructions used by the
  benchmark suite.

Quickstart
----------
>>> from repro import parse_pattern, find_rewriting, compose, equivalent
>>> P = parse_pattern("a//*/e")
>>> V = parse_pattern("a/*")
>>> result = find_rewriting(P, V)
>>> result.found
True
>>> equivalent(compose(result.rewriting, V), P)
True
"""

from .errors import (
    CompositionError,
    ContainmentBudgetError,
    DocumentSyntaxError,
    EmptyPatternError,
    PatternStructureError,
    PatternSyntaxError,
    ReproError,
    RewriteBudgetError,
    UnknownViewError,
    ViewEngineError,
    WorkloadError,
)
from .patterns import (
    Axis,
    EMPTY_PATTERN,
    Fragment,
    Pattern,
    PatternBuilder,
    PatternConfig,
    PNode,
    WILDCARD,
    classify,
    homomorphism_complete,
    in_fragment,
    parse_pattern,
    pat,
    random_pattern,
    random_rewrite_instance,
    to_grammar,
    to_xpath,
)
from .xmltree import (
    BOTTOM_LABEL,
    TNode,
    XMLTree,
    build_tree,
    dblp_like,
    parse_sexpr,
    parse_xml,
    random_tree,
    to_sexpr,
    to_xml,
    tree_from_tuples,
    xmark_like,
)
from .core import (
    RewriteResult,
    RewriteSolver,
    RewriteStatus,
    canonical_models,
    compose,
    contains,
    contains_all,
    equivalent,
    evaluate,
    evaluate_forest,
    find_embedding,
    find_rewriting,
    glb,
    is_in_gnf,
    is_model,
    is_stable,
    minimize,
    natural_candidates,
    relax_root,
    star_length,
    sub_ge,
    sub_le,
    tau,
    weakly_contains,
    weakly_equivalent,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "PatternSyntaxError",
    "PatternStructureError",
    "EmptyPatternError",
    "CompositionError",
    "ContainmentBudgetError",
    "RewriteBudgetError",
    "ViewEngineError",
    "UnknownViewError",
    "DocumentSyntaxError",
    "WorkloadError",
    # patterns
    "Axis",
    "EMPTY_PATTERN",
    "Fragment",
    "Pattern",
    "PatternBuilder",
    "PatternConfig",
    "PNode",
    "WILDCARD",
    "classify",
    "homomorphism_complete",
    "in_fragment",
    "parse_pattern",
    "pat",
    "random_pattern",
    "random_rewrite_instance",
    "to_grammar",
    "to_xpath",
    # xmltree
    "BOTTOM_LABEL",
    "TNode",
    "XMLTree",
    "build_tree",
    "dblp_like",
    "parse_sexpr",
    "parse_xml",
    "random_tree",
    "to_sexpr",
    "to_xml",
    "tree_from_tuples",
    "xmark_like",
    # core
    "RewriteResult",
    "RewriteSolver",
    "RewriteStatus",
    "canonical_models",
    "compose",
    "contains",
    "contains_all",
    "equivalent",
    "evaluate",
    "evaluate_forest",
    "find_embedding",
    "find_rewriting",
    "glb",
    "is_in_gnf",
    "is_model",
    "is_stable",
    "minimize",
    "natural_candidates",
    "relax_root",
    "star_length",
    "sub_ge",
    "sub_le",
    "tau",
    "weakly_contains",
    "weakly_equivalent",
]
