"""Workload replay: drive query streams through the view engine.

The paper motivates rewriting with two traffic-shaped applications —
query caching and answering query streams from materialized views
(§1, §2.4).  This harness is the first end-to-end measurement of that
scenario in this codebase: it builds a document, asks the (batched)
view advisor for a view set over the stream's template pool,
materializes those views in a :class:`~repro.views.store.ViewStore`,
replays the stream through :class:`~repro.views.engine.QueryEngine`,
and reports throughput, latency percentiles and cache effectiveness.

Two serving-path variants hang off :class:`ReplayConfig`:
``persist_path`` routes materializations through the disk-backed
snapshot backend (:mod:`repro.views.persist`) so a re-run against the
same path starts from a warm store, and ``batch_size > 1`` replays the
stream through :meth:`QueryEngine.answer_many
<repro.views.engine.QueryEngine.answer_many>`, folding duplicate
queries within each batch (:func:`replay_batched`).

The multi-document variant is :func:`replay_catalog`
(:class:`CatalogReplayConfig`): several independent document+stream
pairs behind one :class:`~repro.catalog.catalog.Catalog`, advised per
document (with SQLite-persisted selections warm-starting later runs)
and replayed as one interleaved, routed request stream.

Determinism contract: for a fixed ``ReplayConfig``, seed and cache
configuration, every counter in :meth:`ReplayReport.counters` is
reproducible bit-for-bit — the harness resets the containment caches
and stats before running, so cache hit/miss counts do not depend on
what ran earlier in the process.  The two LRU limits *are* process
state, so :func:`replay_workload` records them in the report's
``containment`` section: runs under different cache configurations
compare unequal instead of spuriously "nondeterministic".  Wall-clock
figures (throughput, latencies) are of course machine-dependent and
excluded from :meth:`ReplayReport.counters`.
"""

from __future__ import annotations

import asyncio
import math
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..core.containment import (
    STATS as CONTAINMENT_STATS,
    cache_limit,
    clear_cache,
    engine_cache_limit,
)
from ..core.rewrite import RewriteSolver
from ..errors import AdmissionRejected, RequestTimeout, WorkloadError
from ..faults import VirtualClock
from ..obs import current_registry, root
from ..patterns.ast import Pattern
from ..views.advisor import advise_views
from ..views.engine import QueryEngine
from ..views.persist import SnapshotBackend
from ..views.store import ViewStore
from ..xmltree.generate import random_tree
from .streams import StreamConfig, StreamSample, sample_stream

__all__ = [
    "CatalogReplayConfig",
    "CatalogReplayReport",
    "ReplayConfig",
    "ReplayReport",
    "ServeReplayConfig",
    "ServeReplayReport",
    "replay_batched",
    "replay_catalog",
    "replay_serve",
    "replay_stream",
    "replay_workload",
]

#: Document name used by :func:`replay_workload`'s store.
DOCUMENT = "replay-doc"


def _counter_snapshots(engine: QueryEngine) -> tuple[dict, dict]:
    """Engine + containment counter snapshots (taken around a replay)."""
    return engine.stats.snapshot(), CONTAINMENT_STATS.snapshot()


def _fill_counter_deltas(
    report: "ReplayReport",
    engine: QueryEngine,
    before: tuple[dict, dict],
) -> None:
    """Store the engine/containment counter deltas since ``before``.

    Shared by :func:`replay_stream` and :func:`replay_batched` so the
    two replay variants can never drift in how they attribute counters
    — the bit-identical :meth:`ReplayReport.counters` contract depends
    on one convention.
    """
    engine_before, containment_before = before
    engine_after, containment_after = _counter_snapshots(engine)
    report.engine = {
        key: engine_after[key] - engine_before[key] for key in engine_after
    }
    report.containment = {
        key: containment_after[key] - containment_before[key]
        for key in containment_after
    }


@dataclass
class ReplayConfig:
    """Everything :func:`replay_workload` needs to build a scenario.

    Attributes
    ----------
    stream:
        Shape of the query stream.
    document_size:
        Node count of the generated document.
    max_views:
        View budget handed to the advisor.
    advise:
        Materialize advisor-selected views before replaying; with False
        the store is empty and every query answers directly (the
        baseline the benchmark compares against).
    verify:
        Cross-check every answer against direct evaluation (Prop 2.4);
        mismatches are counted in the report.  Costs one extra direct
        evaluation per query.
    persist_path:
        When set, materializations go through a disk-backed
        :class:`~repro.views.persist.SnapshotBackend` at this path: the
        first run populates the snapshot log (cold start) and later
        runs against the same path load every view instead of
        re-evaluating it (warm store).  ``None`` keeps the in-memory
        backend.  Counters are identical either way — persistence only
        changes *where* materializations come from, never their content
        (see :meth:`ReplayReport.counters`).
    batch_size:
        ``1`` replays query by query (:func:`replay_stream`); larger
        values replay in batches of this size through
        :meth:`~repro.views.engine.QueryEngine.answer_many`
        (:func:`replay_batched`), folding duplicate queries within each
        batch.
    """

    stream: StreamConfig = field(default_factory=StreamConfig)
    document_size: int = 300
    max_views: int = 4
    advise: bool = True
    verify: bool = False
    persist_path: str | Path | None = None
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise WorkloadError("batch_size must be >= 1")


@dataclass
class ReplayReport:
    """Outcome of one stream replay.

    All integer fields are deterministic for a fixed config and seed
    (see :meth:`counters`); timing fields are machine-dependent.
    """

    queries: int = 0
    distinct_queries: int = 0
    view_plans: int = 0
    intersection_plans: int = 0
    direct_plans: int = 0
    answers_total: int = 0
    verified_mismatches: int = 0
    batches: int = 0
    folded_queries: int = 0
    views: list[str] = field(default_factory=list)
    plans_by_view: dict[str, int] = field(default_factory=dict)
    engine: dict[str, int] = field(default_factory=dict)
    containment: dict[str, int] = field(default_factory=dict)
    #: Storage-backend counters (hits/misses/saves/...) plus a
    #: ``durable`` flag.  Deliberately *not* part of :meth:`counters`:
    #: a warm disk-backed run must compare bit-identical to an
    #: in-memory run, and where materializations came from is exactly
    #: the part that may differ.
    backend: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def queries_per_sec(self) -> float:
        """Replay throughput (0.0 for an empty or instantaneous run)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.queries / self.elapsed_seconds

    @property
    def view_plan_ratio(self) -> float:
        """Fraction of queries answered from materialized views.

        Counts single-view *and* intersection plans — both answer
        entirely from stored forests, never touching the document.
        """
        if not self.queries:
            return 0.0
        return (self.view_plans + self.intersection_plans) / self.queries

    def latency_ms(self, quantile: float) -> float:
        """Latency quantile (nearest-rank) over the per-query timings."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = math.ceil(quantile * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(rank, 0))]

    def counters(self) -> dict:
        """The deterministic portion of the report (for regression tests).

        Determinism contract: for a fixed :class:`ReplayConfig` (stream,
        document size, view budget, ``batch_size``), seed and LRU cache
        configuration, this dict is reproducible **bit-for-bit** — run
        to run, process to process, and regardless of whether the store
        is in-memory, cold disk-backed or warm disk-backed (persistence
        changes where materializations come from, never their content).
        Wall-clock fields (``elapsed_seconds``, ``latencies_ms``) and
        the ``backend`` section are excluded for exactly that reason.
        Different ``batch_size`` values may legitimately differ in the
        ``engine`` section: folding duplicates inside a batch means they
        never reach the decision cache.
        """
        return {
            "queries": self.queries,
            "distinct_queries": self.distinct_queries,
            "view_plans": self.view_plans,
            "intersection_plans": self.intersection_plans,
            "direct_plans": self.direct_plans,
            "answers_total": self.answers_total,
            "verified_mismatches": self.verified_mismatches,
            "batches": self.batches,
            "folded_queries": self.folded_queries,
            "views": list(self.views),
            "plans_by_view": dict(self.plans_by_view),
            "engine": dict(self.engine),
            "containment": dict(self.containment),
        }

    def summary(self) -> str:
        """A human-readable multi-line digest."""
        lines = [
            f"replayed {self.queries} queries "
            f"({self.distinct_queries} distinct) "
            f"in {self.elapsed_seconds:.3f}s "
            f"= {self.queries_per_sec:,.0f} q/s",
            f"plans: {self.view_plans} via views, "
            f"{self.intersection_plans} via intersections, "
            f"{self.direct_plans} direct "
            f"(view ratio {self.view_plan_ratio:.0%})",
            f"latency ms: p50={self.latency_ms(0.5):.3f} "
            f"p95={self.latency_ms(0.95):.3f} "
            f"max={max(self.latencies_ms) if self.latencies_ms else 0.0:.3f}",
            f"decision cache hits: {self.engine.get('decision_cache_hits', 0)}",
        ]
        if self.batches:
            lines.append(
                f"batched: {self.batches} batches, "
                f"{self.folded_queries} duplicate queries folded"
            )
        if self.backend:
            lines.append(
                f"store backend: {self.backend.get('hits', 0)} loads, "
                f"{self.backend.get('saves', 0)} saves "
                f"({'durable' if self.backend.get('durable') else 'memory'})"
            )
        if self.views:
            lines.append("views: " + ", ".join(self.views))
        if self.verified_mismatches:
            lines.append(
                f"!! {self.verified_mismatches} answers differed from "
                "direct evaluation"
            )
        return "\n".join(lines)


def _intersection_label(plan) -> str:
    """The ``plans_by_view`` key for an intersection plan's view combo."""
    return "∩".join(sorted(part.view_name for part in plan.parts))


def replay_stream(
    engine: QueryEngine,
    queries: Sequence[Pattern],
    document: str,
    verify: bool = False,
) -> ReplayReport:
    """Replay a query sequence through an engine, one plan+execute each.

    The engine's own counters (and the containment stats) are snapshotted
    around the run, so the report reflects exactly this replay even on a
    warm engine.
    """
    report = ReplayReport()
    before = _counter_snapshots(engine)
    registry = current_registry()
    latency_hist = (
        registry.histogram("replay.query_seconds")
        if registry is not None
        else None
    )
    distinct: set[int] = set()
    for query in queries:
        t0 = time.perf_counter()
        # One trace per replayed query — the replay-side mint point
        # (the serving tier's is front-end admission).
        with root("replay.query", index=report.queries) as scope:
            plan = engine.plan(query, document)
            scope.set(kind=plan.kind)
            if plan.kind == "view":
                assert plan.view_name is not None
                answers = engine.answer_with_view(
                    query, plan.view_name, document
                )
                report.view_plans += 1
                report.plans_by_view[plan.view_name] = (
                    report.plans_by_view.get(plan.view_name, 0) + 1
                )
            elif plan.kind == "intersection":
                answers = engine.answer_with_intersection(
                    query, plan, document
                )
                report.intersection_plans += 1
                label = _intersection_label(plan)
                report.plans_by_view[label] = (
                    report.plans_by_view.get(label, 0) + 1
                )
            else:
                answers = engine.answer_direct(query, document)
                report.direct_plans += 1
        elapsed_query = time.perf_counter() - t0
        if latency_hist is not None:
            latency_hist.observe(elapsed_query)
        report.latencies_ms.append(elapsed_query * 1000.0)
        report.queries += 1
        report.answers_total += len(answers)
        distinct.add(query.memo_key())
        # Only view-backed answers (single-view or intersection) can
        # differ from direct evaluation (direct plans *are* a store
        # evaluation), so only they are worth the extra cross-check —
        # done outside the timed window so throughput and latencies
        # describe the same work.
        if (
            verify
            and plan.kind != "direct"
            and answers != engine.store.evaluate(query, document)
        ):
            report.verified_mismatches += 1
    # Elapsed is the sum of the per-query timings, so throughput and the
    # latency percentiles describe exactly the same measured work.
    report.elapsed_seconds = sum(report.latencies_ms) / 1000.0
    report.distinct_queries = len(distinct)
    _fill_counter_deltas(report, engine, before)
    return report


def replay_batched(
    engine: QueryEngine,
    queries: Sequence[Pattern],
    document: str,
    batch_size: int,
    verify: bool = False,
) -> ReplayReport:
    """Replay a query sequence in batches through ``answer_many``.

    Consecutive windows of ``batch_size`` queries are folded through
    :meth:`~repro.views.engine.QueryEngine.answer_many`, so duplicate
    queries inside a window are planned and executed once.  Per-query
    latencies are the batch wall time divided evenly across its queries
    (individual timings do not exist in a folded batch); counters are
    exact.  ``verify`` cross-checks each *distinct* view-backed query
    (single-view or intersection plan) per batch against direct
    evaluation and counts a mismatch once per affected query, matching
    :func:`replay_stream`'s semantics.
    """
    if batch_size < 1:
        raise WorkloadError("batch_size must be >= 1")
    report = ReplayReport()
    before = _counter_snapshots(engine)
    distinct: set[int] = set()
    for start in range(0, len(queries), batch_size):
        chunk = list(queries[start : start + batch_size])
        with root(
            "replay.batch", window=report.batches, size=len(chunk)
        ):
            result = engine.answer_many(chunk, document)
        report.batches += 1
        report.folded_queries += result.folded_queries
        per_query_ms = result.elapsed_seconds * 1000.0 / len(chunk)
        report.latencies_ms.extend([per_query_ms] * len(chunk))
        for query, plan, answers in zip(chunk, result.plans, result.answers):
            report.queries += 1
            report.answers_total += len(answers)
            distinct.add(query.memo_key())
            if plan.kind == "view":
                assert plan.view_name is not None
                report.view_plans += 1
                report.plans_by_view[plan.view_name] = (
                    report.plans_by_view.get(plan.view_name, 0) + 1
                )
            elif plan.kind == "intersection":
                report.intersection_plans += 1
                label = _intersection_label(plan)
                report.plans_by_view[label] = (
                    report.plans_by_view.get(label, 0) + 1
                )
            else:
                report.direct_plans += 1
        if verify:
            # One direct evaluation per distinct view-backed query;
            # duplicates share its verdict (evaluation is deterministic,
            # so this counts exactly what per-query checking would).
            verdicts: dict[int, bool] = {}
            for query, plan, answers in zip(chunk, result.plans, result.answers):
                if plan.kind == "direct":
                    continue
                key = query.memo_key()
                if key not in verdicts:
                    verdicts[key] = (
                        answers != engine.store.evaluate(query, document)
                    )
                if verdicts[key]:
                    report.verified_mismatches += 1
    report.elapsed_seconds = sum(report.latencies_ms) / 1000.0
    report.distinct_queries = len(distinct)
    _fill_counter_deltas(report, engine, before)
    return report


@dataclass
class CatalogReplayConfig:
    """A multi-document catalog replay scenario (:func:`replay_catalog`).

    ``documents`` independent document+stream pairs are derived from the
    seed, registered in one :class:`~repro.catalog.catalog.Catalog`,
    advised per document (warm-starting from persisted selections when
    ``db_path`` points at a populated catalog database), and replayed as
    one interleaved request stream through the catalog router in
    windows of ``batch_size``.
    """

    documents: int = 2
    stream: StreamConfig = field(default_factory=StreamConfig)
    document_size: int = 300
    max_views: int = 4
    db_path: str | Path | None = None
    batch_size: int = 16
    answer_cache_size: int = 512
    verify: bool = False

    def __post_init__(self) -> None:
        if self.documents < 1:
            raise WorkloadError("catalog replay needs >= 1 document")
        if self.batch_size < 1:
            raise WorkloadError("batch_size must be >= 1")


@dataclass
class CatalogReplayReport:
    """Outcome of one catalog replay.

    The per-document sections and the aggregate containment delta are
    deterministic (see :meth:`counters`); ``warm_selections``, the
    ``backend`` section and the timing fields are exactly what a warm
    start changes, so they live outside the counters.
    """

    documents: list[str] = field(default_factory=list)
    queries: int = 0
    batches: int = 0
    folded_queries: int = 0
    verified_mismatches: int = 0
    per_document: dict[str, dict] = field(default_factory=dict)
    containment: dict[str, int] = field(default_factory=dict)
    #: Documents whose advising was skipped via a persisted selection.
    warm_selections: int = 0
    backend: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def queries_per_sec(self) -> float:
        """Routed throughput (0.0 for an empty or instantaneous run)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.queries / self.elapsed_seconds

    @property
    def view_plan_ratio(self) -> float:
        """Fraction of routed queries answered from stored forests.

        Single-view and intersection plans both count — same semantics
        as :attr:`ReplayReport.view_plan_ratio`, aggregated over every
        document.
        """
        if not self.queries:
            return 0.0
        served = sum(
            section.get("view_plans", 0)
            + section.get("intersection_plans", 0)
            for section in self.per_document.values()
        )
        return served / self.queries

    def counters(self) -> dict:
        """The deterministic portion (same contract as ``ReplayReport``).

        Bit-for-bit reproducible for a fixed config, seed and cache
        configuration — in-memory, cold-SQLite and warm-SQLite runs all
        compare equal, because the harness clears the containment
        caches *between* the advising phase and the replay (a warm
        start skips advising, so without the reset the two paths would
        reach the replay with different cache contents).
        """
        return {
            "queries": self.queries,
            "batches": self.batches,
            "folded_queries": self.folded_queries,
            "verified_mismatches": self.verified_mismatches,
            "documents": list(self.documents),
            "per_document": {
                doc: dict(section) for doc, section in self.per_document.items()
            },
            "containment": dict(self.containment),
        }

    def summary(self) -> str:
        """A human-readable multi-line digest."""
        lines = [
            f"catalog replay: {self.queries} queries over "
            f"{len(self.documents)} documents in {self.elapsed_seconds:.3f}s "
            f"= {self.queries_per_sec:,.0f} q/s",
            f"batches: {self.batches}, folded duplicates: {self.folded_queries}",
            f"warm selections: {self.warm_selections}/{len(self.documents)}",
        ]
        for doc, section in sorted(self.per_document.items()):
            lines.append(
                f"  {doc}: {section['view_plans']} view / "
                f"{section.get('intersection_plans', 0)} intersection / "
                f"{section['direct_plans']} direct plans, "
                f"{section['answer_cache_hits']} answer-cache hits"
            )
        if self.verified_mismatches:
            lines.append(
                f"!! {self.verified_mismatches} answers differed from "
                "direct evaluation"
            )
        return "\n".join(lines)


def replay_catalog(
    config: CatalogReplayConfig | None = None,
    seed: int | None = None,
) -> CatalogReplayReport:
    """Build a multi-document scenario for one seed and replay it routed.

    Per document ``d``: a document and a query stream derive
    deterministically from ``seed`` (independent sub-seeds), the
    catalog advises views on the stream's template pool (loading a
    persisted selection when the backend has one), and the replay
    interleaves every document's stream round-robin into one request
    sequence answered through :meth:`Catalog.route
    <repro.catalog.catalog.Catalog.route>` in windows of
    ``config.batch_size``.

    Counter isolation: the containment caches are cleared *after* the
    advising phase, so the replay-phase counters are identical whether
    advising ran (cold) or was skipped from a persisted selection
    (warm) — the bit-identity the catalog benchmark asserts.
    """
    from ..catalog.catalog import Catalog  # local: keep import acyclic

    config = config or CatalogReplayConfig()
    clear_cache()
    CONTAINMENT_STATS.reset()
    base = 0 if seed is None else int(seed)

    report = CatalogReplayReport()
    catalog = Catalog(
        db_path=config.db_path,
        answer_cache_size=config.answer_cache_size,
    )
    try:
        samples: dict[str, StreamSample] = {}
        for index in range(config.documents):
            doc_id = f"doc-{index}"
            doc_seed = base * 10_007 + index
            tree = random_tree(config.document_size, seed=doc_seed)
            samples[doc_id] = sample_stream(config.stream, seed=doc_seed)
            catalog.register(doc_id, tree)
            advice = catalog.advise(
                doc_id,
                samples[doc_id].templates,
                weights=samples[doc_id].template_weights(),
                max_views=config.max_views,
            )
            report.documents.append(doc_id)
            report.warm_selections += int(advice.warm)

        # Advising may or may not have run (warm vs cold); reset the
        # process-wide containment state so the replay phase below is
        # bit-identical either way.
        clear_cache()
        CONTAINMENT_STATS.reset()
        engine_before = {
            doc_id: catalog.entry(doc_id).engine.stats.snapshot()
            for doc_id in report.documents
        }
        containment_before = CONTAINMENT_STATS.snapshot()

        requests: list[tuple[str, Pattern]] = []
        for position in range(config.stream.length):
            for doc_id in report.documents:
                requests.append(
                    (doc_id, samples[doc_id].entries[position].query)
                )

        tallies = {
            doc_id: {
                "queries": 0,
                "view_plans": 0,
                "intersection_plans": 0,
                "direct_plans": 0,
                "answers_total": 0,
                "plans_by_view": {},
            }
            for doc_id in report.documents
        }
        distinct: dict[str, set[int]] = {
            doc_id: set() for doc_id in report.documents
        }
        t0 = time.perf_counter()
        for start in range(0, len(requests), config.batch_size):
            window = requests[start : start + config.batch_size]
            with root(
                "replay.batch", window=report.batches, size=len(window)
            ):
                routed = catalog.route(window)
            report.batches += 1
            for batch in routed.groups.values():
                report.folded_queries += batch.folded_queries
            for (doc_id, query), plan, answers in zip(
                window, routed.plans, routed.answers
            ):
                tally = tallies[doc_id]
                tally["queries"] += 1
                tally["answers_total"] += len(answers)
                distinct[doc_id].add(query.memo_key())
                if plan.kind == "view":
                    tally["view_plans"] += 1
                    tally["plans_by_view"][plan.view_name] = (
                        tally["plans_by_view"].get(plan.view_name, 0) + 1
                    )
                elif plan.kind == "intersection":
                    tally["intersection_plans"] += 1
                    label = _intersection_label(plan)
                    tally["plans_by_view"][label] = (
                        tally["plans_by_view"].get(label, 0) + 1
                    )
                else:
                    tally["direct_plans"] += 1
                if (
                    config.verify
                    and plan.kind != "direct"
                    and answers
                    != catalog.entry(doc_id).store.evaluate(query, doc_id)
                ):
                    report.verified_mismatches += 1
        report.elapsed_seconds = time.perf_counter() - t0

        containment_after = CONTAINMENT_STATS.snapshot()
        report.containment = {
            key: containment_after[key] - containment_before[key]
            for key in containment_after
        }
        report.containment["cache_limit"] = cache_limit()
        report.containment["engine_cache_limit"] = engine_cache_limit()
        for doc_id in report.documents:
            after = catalog.entry(doc_id).engine.stats.snapshot()
            section = tallies[doc_id]
            section["distinct_queries"] = len(distinct[doc_id])
            section["views"] = list(catalog.entry(doc_id).views)
            section["engine"] = {
                key: after[key] - engine_before[doc_id][key] for key in after
            }
            section["answer_cache_hits"] = section["engine"][
                "answer_cache_hits"
            ]
            report.per_document[doc_id] = section
            report.queries += section["queries"]
        report.backend = catalog.backend_stats()
        registry = current_registry()
        if registry is not None:
            registry.publish("replay.catalog", report.counters())
        return report
    finally:
        catalog.close()


@dataclass
class ServeReplayConfig:
    """An open-loop serving scenario (:func:`replay_serve`).

    The same derived fleet as :class:`CatalogReplayConfig` — ``documents``
    independent document+stream pairs per seed — but driven through the
    asyncio serving tier (:meth:`CatalogServer.serve
    <repro.catalog.server.CatalogServer.serve>`) as an **open-loop**
    arrival process: request ``i`` is *scheduled* at a Poisson arrival
    time (exponential inter-arrival gaps at ``arrival_rate`` requests
    per second, drawn from the seed) and latency is measured from that
    scheduled arrival, not from when the producer managed to submit —
    queueing delay under overload is part of the number, never hidden
    (no coordinated omission).

    ``timeout`` is the per-request deadline in seconds (``None`` serves
    everything); ``overflow`` is the admission policy (``"wait"`` for
    backpressure, ``"reject"`` to shed at the door); ``workers`` picks
    inline (0) or pooled serving.  ``replicas > 0`` stands up a
    :class:`~repro.catalog.replication.ReplicaSet` (PR 9) in a
    temporary directory and routes every read through the replica tier
    instead of the writer — the baseline stays the synchronous inline
    path, so ``mismatches`` also proves replica answers bit-identical.

    ``virtual_time`` replaces the real-time Poisson pacing with a
    :class:`~repro.faults.VirtualClock` injected into the front end:
    the producer *advances* the clock to each scheduled arrival instead
    of sleeping, and latencies read the virtual clock.  The run
    finishes as fast as the CPU allows and — with ``workers=0`` and no
    replicas — the event-loop interleaving is deterministic, which is
    what makes same-seed trace structure byte-identical (PR 10's
    observability contract).
    """

    documents: int = 2
    stream: StreamConfig = field(default_factory=StreamConfig)
    document_size: int = 300
    max_views: int = 4
    arrival_rate: float = 2000.0
    timeout: float | None = None
    max_pending: int = 64
    batch_size: int = 16
    overflow: str = "wait"
    workers: int = 0
    replicas: int = 0
    virtual_time: bool = False

    def __post_init__(self) -> None:
        if self.documents < 1:
            raise WorkloadError("serve replay needs >= 1 document")
        if self.replicas < 0:
            raise WorkloadError("replicas must be >= 0")
        if self.batch_size < 1:
            raise WorkloadError("batch_size must be >= 1")
        if self.max_pending < 1:
            raise WorkloadError("max_pending must be >= 1")
        if self.arrival_rate <= 0.0:
            raise WorkloadError("arrival_rate must be > 0")
        if self.timeout is not None and self.timeout <= 0.0:
            raise WorkloadError("timeout must be > 0 (or None)")


@dataclass
class ServeReplayReport:
    """Outcome of one open-loop serving replay.

    ``requests = served + shed + rejected + failed`` always holds.
    *Which* requests survive a deadline is wall-clock-dependent, but
    every survivor's answer must be bit-identical to the synchronous
    inline path's — ``mismatches`` counts violations and stays 0.  With
    ``overflow="wait"`` and no timeout, ``served == requests`` exactly.
    """

    requests: int = 0
    served: int = 0
    shed: int = 0
    rejected: int = 0
    failed: int = 0
    #: Survivors whose answers differed from the inline baseline.
    mismatches: int = 0
    serve_counters: dict = field(default_factory=dict)
    #: ``ReplicaSet.stats_snapshot()`` when ``config.replicas > 0``.
    replication: dict = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def answers_identical(self) -> bool:
        """Every survivor matched the inline baseline bit-for-bit."""
        return self.served > 0 and self.mismatches == 0

    @property
    def shed_rate(self) -> float:
        """Fraction of requests shed or rejected (0.0 for empty runs)."""
        if not self.requests:
            return 0.0
        return (self.shed + self.rejected) / self.requests

    @property
    def queries_per_sec(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.served / self.elapsed_seconds

    def latency_ms(self, quantile: float) -> float:
        """Served-request latency quantile (nearest-rank), from the
        *scheduled* arrival time to answer completion."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = math.ceil(quantile * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(rank, 0))]

    def summary(self) -> str:
        """A human-readable multi-line digest."""
        lines = [
            f"serve replay: {self.served}/{self.requests} served "
            f"in {self.elapsed_seconds:.3f}s "
            f"= {self.queries_per_sec:,.0f} q/s",
            f"shed: {self.shed} deadline, {self.rejected} admission "
            f"(shed rate {self.shed_rate:.1%}), {self.failed} failed",
            f"latency ms: p50={self.latency_ms(0.5):.3f} "
            f"p95={self.latency_ms(0.95):.3f} "
            f"p99={self.latency_ms(0.99):.3f}",
        ]
        if self.mismatches:
            lines.append(
                f"!! {self.mismatches} answers differed from the inline path"
            )
        return "\n".join(lines)


def replay_serve(
    config: ServeReplayConfig | None = None,
    seed: int | None = None,
) -> ServeReplayReport:
    """Drive one seed's fleet through the async serving tier, open-loop.

    The fleet derives exactly as in :func:`replay_catalog` (same
    sub-seed scheme, so the request *content* is deterministic per
    seed).  The synchronous inline path answers the whole request
    sequence first — that is the baseline — then the asyncio front end
    replays it as a Poisson arrival stream: a producer coroutine sleeps
    until each request's scheduled arrival, submits it (awaiting
    admission under backpressure, counting
    :class:`~repro.errors.AdmissionRejected` under ``"reject"``), and
    every completion is classified as served, shed
    (:class:`~repro.errors.RequestTimeout`) or failed.

    Per-request latency runs from the scheduled arrival to completion.
    Survivor answers are compared index-for-index against the baseline;
    any difference counts in ``mismatches`` (the bench asserts 0).
    """
    from ..catalog.replication import ReplicaSet  # local: keep import acyclic
    from ..catalog.server import (
        CatalogServer,
        CatalogSpec,
        DocumentSpec,
    )

    config = config or ServeReplayConfig()
    clear_cache()
    CONTAINMENT_STATS.reset()
    base = 0 if seed is None else int(seed)

    doc_ids: list[str] = []
    samples: dict[str, StreamSample] = {}
    documents: list[DocumentSpec] = []
    for index in range(config.documents):
        doc_id = f"doc-{index}"
        doc_seed = base * 10_007 + index
        tree = random_tree(config.document_size, seed=doc_seed)
        sample = sample_stream(config.stream, seed=doc_seed)
        doc_ids.append(doc_id)
        samples[doc_id] = sample
        documents.append(
            DocumentSpec.from_tree(
                doc_id,
                tree,
                sample.templates,
                sample.template_weights(),
            )
        )
    spec = CatalogSpec(documents=tuple(documents), max_views=config.max_views)

    requests: list[tuple[str, Pattern]] = []
    for position in range(config.stream.length):
        for doc_id in doc_ids:
            requests.append((doc_id, samples[doc_id].entries[position].query))

    # Poisson arrival schedule: exponential gaps, derived from the seed
    # so the *schedule* (not the wall-clock outcome) is reproducible.
    rng = random.Random(base * 65_537 + 11)
    offsets: list[float] = []
    t_arrival = 0.0
    for _ in requests:
        t_arrival += rng.expovariate(config.arrival_rate)
        offsets.append(t_arrival)

    report = ServeReplayReport(requests=len(requests))
    with CatalogServer(spec, workers=config.workers) as server:
        baseline = server.serve_requests(
            requests, batch_size=config.batch_size
        )
        replica_dir: tempfile.TemporaryDirectory | None = None
        replica_set: "ReplicaSet | None" = None
        if config.replicas > 0:
            replica_dir = tempfile.TemporaryDirectory(
                prefix="repro-replicas-"
            )
            replica_set = ReplicaSet(
                spec, replicas=config.replicas, root=replica_dir.name
            )

        async def _replay() -> dict:
            loop = asyncio.get_running_loop()
            virtual = VirtualClock() if config.virtual_time else None
            now = virtual if virtual is not None else loop.time
            start = now()
            done_at: dict[int, float] = {}
            outstanding: dict[int, tuple[float, asyncio.Future]] = {}
            front = server.serve(
                max_pending=config.max_pending,
                batch_size=config.batch_size,
                overflow=config.overflow,
                default_timeout=config.timeout,
                clock=virtual,
                replica_set=replica_set,
            )
            async with front:
                for index, (offset, (doc_id, query)) in enumerate(
                    zip(offsets, requests)
                ):
                    if virtual is not None:
                        # Advance to the scheduled arrival instead of
                        # sleeping; yield once so the drain loop keeps
                        # interleaving deterministically.
                        behind = (start + offset) - virtual()
                        if behind > 0:
                            virtual.advance(behind)
                        await asyncio.sleep(0)
                    else:
                        delay = (start + offset) - loop.time()
                        if delay > 0:
                            await asyncio.sleep(delay)
                    try:
                        future = await front.submit(doc_id, query)
                    except AdmissionRejected:
                        report.rejected += 1
                        continue
                    future.add_done_callback(
                        lambda _fut, i=index: done_at.setdefault(i, now())
                    )
                    outstanding[index] = (start + offset, future)
            # close() drained: every future is resolved by here.
            for index, (scheduled, future) in outstanding.items():
                exc = future.exception()
                if exc is None:
                    report.served += 1
                    report.latencies_ms.append(
                        (done_at[index] - scheduled) * 1000.0
                    )
                    if future.result() != baseline.answer_ids[index]:
                        report.mismatches += 1
                elif isinstance(exc, RequestTimeout):
                    report.shed += 1
                else:
                    report.failed += 1
            return front.counters()

        try:
            t0 = time.perf_counter()
            report.serve_counters = asyncio.run(_replay())
            report.elapsed_seconds = time.perf_counter() - t0
            if replica_set is not None:
                report.replication = replica_set.stats_snapshot()
            registry = current_registry()
            if registry is not None:
                # Served latencies feed the exportable histogram; the
                # front end published its own lifetime stats at close.
                latency_hist = registry.histogram("serve.latency_seconds")
                for latency_ms in report.latencies_ms:
                    latency_hist.observe(latency_ms / 1000.0)
                registry.publish(
                    "serve.replay",
                    {
                        "requests": report.requests,
                        "served": report.served,
                        "shed": report.shed,
                        "rejected": report.rejected,
                        "failed": report.failed,
                        "mismatches": report.mismatches,
                    },
                )
        finally:
            if replica_set is not None:
                replica_set.close()
            if replica_dir is not None:
                replica_dir.cleanup()
    return report


def replay_workload(
    config: ReplayConfig | None = None,
    seed: int | None = None,
) -> ReplayReport:
    """Build the full scenario for one seed and replay it.

    Document, stream and advisor all derive deterministically from
    ``seed``; the containment caches are cleared first so the report's
    :meth:`~ReplayReport.counters` are reproducible run-to-run.

    With ``config.persist_path`` set, the store materializes through a
    disk-backed snapshot log: the first run evaluates and saves every
    advised view (cold start) and subsequent runs load them (warm
    store) — the report's ``backend`` section says which happened.
    With ``config.batch_size > 1`` the stream is replayed through
    :func:`replay_batched` instead of :func:`replay_stream`.
    """
    config = config or ReplayConfig()
    clear_cache()
    CONTAINMENT_STATS.reset()

    document = random_tree(config.document_size, seed=seed)
    sample: StreamSample = sample_stream(config.stream, seed=seed)

    backend = (
        SnapshotBackend(config.persist_path)
        if config.persist_path is not None
        else None
    )
    store = ViewStore(backend=backend)
    try:
        store.add_document(DOCUMENT, document)
        chosen: list[str] = []
        if config.advise:
            # Advise on the template pool — the stream's generating
            # distribution — weighted exactly as the stream drew it.
            advice = advise_views(
                sample.templates,
                weights=sample.template_weights(),
                max_views=config.max_views,
                sample=document,
            )
            for rank, view in enumerate(advice.views):
                name = f"view-{rank}"
                store.define_view(name, view.pattern)
                chosen.append(name)

        engine = QueryEngine(store, solver=RewriteSolver(use_fallback=False))
        if config.batch_size > 1:
            report = replay_batched(
                engine,
                sample.queries,
                DOCUMENT,
                config.batch_size,
                verify=config.verify,
            )
        else:
            report = replay_stream(
                engine, sample.queries, DOCUMENT, verify=config.verify
            )
        report.views = chosen
        # The LRU limits shape the cache counters; record them so reports
        # from different cache configurations never compare equal.
        report.containment["cache_limit"] = cache_limit()
        report.containment["engine_cache_limit"] = engine_cache_limit()
        report.backend = dict(store.backend.stats.snapshot())
        report.backend["durable"] = int(store.backend.durable)
        registry = current_registry()
        if registry is not None:
            registry.publish("replay", report.counters())
            registry.publish("backend", report.backend)
        return report
    finally:
        store.close()
