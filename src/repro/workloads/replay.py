"""Workload replay: drive query streams through the view engine.

The paper motivates rewriting with two traffic-shaped applications —
query caching and answering query streams from materialized views
(§1, §2.4).  This harness is the first end-to-end measurement of that
scenario in this codebase: it builds a document, asks the (batched)
view advisor for a view set over the stream's template pool,
materializes those views in a :class:`~repro.views.store.ViewStore`,
replays the stream through :class:`~repro.views.engine.QueryEngine`,
and reports throughput, latency percentiles and cache effectiveness.

Determinism contract: for a fixed ``ReplayConfig``, seed and cache
configuration, every counter in :meth:`ReplayReport.counters` is
reproducible bit-for-bit — the harness resets the containment caches
and stats before running, so cache hit/miss counts do not depend on
what ran earlier in the process.  The two LRU limits *are* process
state, so :func:`replay_workload` records them in the report's
``containment`` section: runs under different cache configurations
compare unequal instead of spuriously "nondeterministic".  Wall-clock
figures (throughput, latencies) are of course machine-dependent and
excluded from :meth:`ReplayReport.counters`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.containment import (
    STATS as CONTAINMENT_STATS,
    cache_limit,
    clear_cache,
    engine_cache_limit,
)
from ..core.rewrite import RewriteSolver
from ..patterns.ast import Pattern
from ..views.advisor import advise_views
from ..views.engine import QueryEngine
from ..views.store import ViewStore
from ..xmltree.generate import random_tree
from .streams import StreamConfig, StreamSample, sample_stream

__all__ = ["ReplayConfig", "ReplayReport", "replay_stream", "replay_workload"]

#: Document name used by :func:`replay_workload`'s store.
DOCUMENT = "replay-doc"


@dataclass
class ReplayConfig:
    """Everything :func:`replay_workload` needs to build a scenario.

    Attributes
    ----------
    stream:
        Shape of the query stream.
    document_size:
        Node count of the generated document.
    max_views:
        View budget handed to the advisor.
    advise:
        Materialize advisor-selected views before replaying; with False
        the store is empty and every query answers directly (the
        baseline the benchmark compares against).
    verify:
        Cross-check every answer against direct evaluation (Prop 2.4);
        mismatches are counted in the report.  Costs one extra direct
        evaluation per query.
    """

    stream: StreamConfig = field(default_factory=StreamConfig)
    document_size: int = 300
    max_views: int = 4
    advise: bool = True
    verify: bool = False


@dataclass
class ReplayReport:
    """Outcome of one stream replay.

    All integer fields are deterministic for a fixed config and seed
    (see :meth:`counters`); timing fields are machine-dependent.
    """

    queries: int = 0
    distinct_queries: int = 0
    view_plans: int = 0
    direct_plans: int = 0
    answers_total: int = 0
    verified_mismatches: int = 0
    views: list[str] = field(default_factory=list)
    plans_by_view: dict[str, int] = field(default_factory=dict)
    engine: dict[str, int] = field(default_factory=dict)
    containment: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def queries_per_sec(self) -> float:
        """Replay throughput (0.0 for an empty or instantaneous run)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.queries / self.elapsed_seconds

    @property
    def view_plan_ratio(self) -> float:
        """Fraction of queries answered from a materialized view."""
        return self.view_plans / self.queries if self.queries else 0.0

    def latency_ms(self, quantile: float) -> float:
        """Latency quantile (nearest-rank) over the per-query timings."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = math.ceil(quantile * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(rank, 0))]

    def counters(self) -> dict:
        """The deterministic portion of the report (for regression tests)."""
        return {
            "queries": self.queries,
            "distinct_queries": self.distinct_queries,
            "view_plans": self.view_plans,
            "direct_plans": self.direct_plans,
            "answers_total": self.answers_total,
            "verified_mismatches": self.verified_mismatches,
            "views": list(self.views),
            "plans_by_view": dict(self.plans_by_view),
            "engine": dict(self.engine),
            "containment": dict(self.containment),
        }

    def summary(self) -> str:
        """A human-readable multi-line digest."""
        lines = [
            f"replayed {self.queries} queries "
            f"({self.distinct_queries} distinct) "
            f"in {self.elapsed_seconds:.3f}s "
            f"= {self.queries_per_sec:,.0f} q/s",
            f"plans: {self.view_plans} via views, "
            f"{self.direct_plans} direct "
            f"(view ratio {self.view_plan_ratio:.0%})",
            f"latency ms: p50={self.latency_ms(0.5):.3f} "
            f"p95={self.latency_ms(0.95):.3f} "
            f"max={max(self.latencies_ms) if self.latencies_ms else 0.0:.3f}",
            f"decision cache hits: {self.engine.get('decision_cache_hits', 0)}",
        ]
        if self.views:
            lines.append("views: " + ", ".join(self.views))
        if self.verified_mismatches:
            lines.append(
                f"!! {self.verified_mismatches} answers differed from "
                "direct evaluation"
            )
        return "\n".join(lines)


def replay_stream(
    engine: QueryEngine,
    queries: Sequence[Pattern],
    document: str,
    verify: bool = False,
) -> ReplayReport:
    """Replay a query sequence through an engine, one plan+execute each.

    The engine's own counters (and the containment stats) are snapshotted
    around the run, so the report reflects exactly this replay even on a
    warm engine.
    """
    report = ReplayReport()
    engine_before = engine.stats.snapshot()
    containment_before = CONTAINMENT_STATS.snapshot()
    distinct: set[int] = set()
    for query in queries:
        t0 = time.perf_counter()
        plan = engine.plan(query, document)
        if plan.kind == "view":
            assert plan.view_name is not None
            answers = engine.answer_with_view(query, plan.view_name, document)
            report.view_plans += 1
            report.plans_by_view[plan.view_name] = (
                report.plans_by_view.get(plan.view_name, 0) + 1
            )
        else:
            answers = engine.answer_direct(query, document)
            report.direct_plans += 1
        report.latencies_ms.append((time.perf_counter() - t0) * 1000.0)
        report.queries += 1
        report.answers_total += len(answers)
        distinct.add(query.memo_key())
        # Only view-plan answers can differ from direct evaluation
        # (direct plans *are* a store evaluation), so only they are
        # worth the extra Prop 2.4 cross-check — done outside the timed
        # window so throughput and latencies describe the same work.
        if (
            verify
            and plan.kind == "view"
            and answers != engine.store.evaluate(query, document)
        ):
            report.verified_mismatches += 1
    # Elapsed is the sum of the per-query timings, so throughput and the
    # latency percentiles describe exactly the same measured work.
    report.elapsed_seconds = sum(report.latencies_ms) / 1000.0
    report.distinct_queries = len(distinct)
    engine_after = engine.stats.snapshot()
    containment_after = CONTAINMENT_STATS.snapshot()
    report.engine = {
        key: engine_after[key] - engine_before[key] for key in engine_after
    }
    report.containment = {
        key: containment_after[key] - containment_before[key]
        for key in containment_after
    }
    return report


def replay_workload(
    config: ReplayConfig | None = None,
    seed: int | None = None,
) -> ReplayReport:
    """Build the full scenario for one seed and replay it.

    Document, stream and advisor all derive deterministically from
    ``seed``; the containment caches are cleared first so the report's
    :meth:`~ReplayReport.counters` are reproducible run-to-run.
    """
    config = config or ReplayConfig()
    clear_cache()
    CONTAINMENT_STATS.reset()

    document = random_tree(config.document_size, seed=seed)
    sample: StreamSample = sample_stream(config.stream, seed=seed)

    store = ViewStore()
    store.add_document(DOCUMENT, document)
    chosen: list[str] = []
    if config.advise:
        # Advise on the template pool — the stream's generating
        # distribution — weighted exactly as the stream drew it.
        advice = advise_views(
            sample.templates,
            weights=sample.template_weights(),
            max_views=config.max_views,
            sample=document,
        )
        for rank, view in enumerate(advice.views):
            name = f"view-{rank}"
            store.define_view(name, view.pattern)
            chosen.append(name)

    engine = QueryEngine(store, solver=RewriteSolver(use_fallback=False))
    report = replay_stream(
        engine, sample.queries, DOCUMENT, verify=config.verify
    )
    report.views = chosen
    # The LRU limits shape the cache counters; record them so reports
    # from different cache configurations never compare equal.
    report.containment["cache_limit"] = cache_limit()
    report.containment["engine_cache_limit"] = engine_cache_limit()
    return report
