"""Workload generators: rewriting instances, query streams, and replay.

* :mod:`instances` — ``(P, V)`` populations for the rewriting benchmarks
  (rewritable, mutated, and condition-targeted instances).
* :mod:`streams` — query streams with temporal locality for the cache
  and view-answering scenarios (with per-element provenance).
* :mod:`replay` — end-to-end stream replay through the view engine with
  throughput/latency/cache reporting.
"""

from .instances import InstanceConfig, condition_instance, make_instances
from .replay import ReplayConfig, ReplayReport, replay_stream, replay_workload
from .streams import StreamConfig, StreamQuery, StreamSample, query_stream, sample_stream

__all__ = [
    "InstanceConfig",
    "condition_instance",
    "make_instances",
    "ReplayConfig",
    "ReplayReport",
    "replay_stream",
    "replay_workload",
    "StreamConfig",
    "StreamQuery",
    "StreamSample",
    "query_stream",
    "sample_stream",
]
