"""Workload generators: rewriting instances and query streams.

* :mod:`instances` — ``(P, V)`` populations for the rewriting benchmarks
  (rewritable, mutated, and condition-targeted instances).
* :mod:`streams` — query streams with temporal locality for the cache
  and view-answering scenarios.
"""

from .instances import InstanceConfig, condition_instance, make_instances
from .streams import StreamConfig, query_stream

__all__ = [
    "InstanceConfig",
    "condition_instance",
    "make_instances",
    "StreamConfig",
    "query_stream",
]
