"""Query streams for the cache and view-answering scenarios.

The paper's motivating applications (query caching, answering queries
using cached views) involve *streams* of queries with locality: popular
queries recur, and many queries are specializations of earlier ones.
:func:`query_stream` produces such a stream over a fixed document schema:

* a pool of "template" queries is drawn first;
* each stream element is, with configurable probabilities, a repeat of a
  template (Zipf-weighted), a specialization of a template (an extra
  branch or a deepened selection path — typically answerable from a
  cached prefix view), or a fresh random query.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..patterns.random import PatternConfig, random_pattern

__all__ = ["StreamConfig", "query_stream"]


def _rng(seed_or_rng: int | _random.Random | None) -> _random.Random:
    if isinstance(seed_or_rng, _random.Random):
        return seed_or_rng
    return _random.Random(seed_or_rng)


@dataclass
class StreamConfig:
    """Shape of a query stream.

    ``repeat_prob`` + ``specialize_prob`` ≤ 1; the rest are fresh
    queries.  Templates are Zipf-weighted (rank r has weight 1/r).
    """

    length: int = 100
    templates: int = 8
    repeat_prob: float = 0.5
    specialize_prob: float = 0.3
    pattern: PatternConfig | None = None

    def resolved_pattern(self) -> PatternConfig:
        return self.pattern or PatternConfig(depth=3, branch_prob=0.4)


def query_stream(
    config: StreamConfig | None = None,
    seed: int | _random.Random | None = None,
) -> list[Pattern]:
    """Generate a query stream with temporal locality."""
    config = config or StreamConfig()
    rng = _rng(seed)
    pattern_config = config.resolved_pattern()
    templates = [random_pattern(pattern_config, rng) for _ in range(config.templates)]
    weights = [1.0 / (rank + 1) for rank in range(len(templates))]

    stream: list[Pattern] = []
    for _ in range(config.length):
        roll = rng.random()
        if roll < config.repeat_prob:
            stream.append(rng.choices(templates, weights=weights, k=1)[0])
        elif roll < config.repeat_prob + config.specialize_prob:
            template = rng.choices(templates, weights=weights, k=1)[0]
            stream.append(_specialize(template, pattern_config, rng))
        else:
            stream.append(random_pattern(pattern_config, rng))
    return stream


def _specialize(
    template: Pattern, config: PatternConfig, rng: _random.Random
) -> Pattern:
    """A strictly more selective variant of ``template``.

    Either grows the selection path below the output (the new query's
    prefix is the template — the classic cache-hit shape), or adds a
    branch to the output node.
    """
    copy, mapping = template.copy_with_map()
    out = mapping[template.output]  # type: ignore[index]
    if rng.random() < 0.6:
        axis = config.draw_axis(rng)
        new_out = out.add(axis, PNode(config.draw_label(rng)))
        return Pattern(copy.root, new_out)
    out.add(config.draw_axis(rng), PNode(config.draw_label(rng)))
    return Pattern(copy.root, out)
