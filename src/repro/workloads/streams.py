"""Query streams for the cache and view-answering scenarios.

The paper's motivating applications (query caching, answering queries
using cached views) involve *streams* of queries with locality: popular
queries recur, and many queries are specializations of earlier ones.
:func:`query_stream` produces such a stream over a fixed document schema:

* a pool of "template" queries is drawn first;
* each stream element is, with configurable probabilities, a repeat of a
  template (Zipf-weighted), a specialization of a template (an extra
  branch or a deepened selection path — typically answerable from a
  cached prefix view), or a fresh random query.

:func:`sample_stream` returns the same stream with full *provenance* —
the template pool and, per element, its kind (repeat / specialize /
fresh) and template index.  The replay harness uses the provenance to
warm views from the template pool, and the metamorphic property tests
use it to check the stream's contract (specializations really specialize
their template, kind frequencies track the configured probabilities).
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..patterns.ast import Pattern, PNode
from ..patterns.random import PatternConfig, random_pattern

__all__ = [
    "StreamConfig",
    "StreamQuery",
    "StreamSample",
    "query_stream",
    "sample_stream",
    "zipf_weights",
]

#: Provenance kinds of a stream element.
KINDS = ("repeat", "specialize", "fresh")


def zipf_weights(count: int) -> list[float]:
    """The template weights the stream draws with: rank r weighs 1/(r+1)."""
    return [1.0 / (rank + 1) for rank in range(count)]


def _rng(seed_or_rng: int | _random.Random | None) -> _random.Random:
    if isinstance(seed_or_rng, _random.Random):
        return seed_or_rng
    return _random.Random(seed_or_rng)


@dataclass
class StreamConfig:
    """Shape of a query stream.

    ``repeat_prob`` + ``specialize_prob`` ≤ 1; the rest are fresh
    queries.  Templates are Zipf-weighted (rank r has weight 1/r).
    """

    length: int = 100
    templates: int = 8
    repeat_prob: float = 0.5
    specialize_prob: float = 0.3
    pattern: PatternConfig | None = None

    def __post_init__(self) -> None:
        if self.length < 0:
            raise WorkloadError("stream length must be >= 0")
        if self.templates < 1:
            raise WorkloadError("template pool must be nonempty")
        if not 0.0 <= self.repeat_prob <= 1.0:
            raise WorkloadError("repeat_prob must be in [0, 1]")
        if not 0.0 <= self.specialize_prob <= 1.0:
            raise WorkloadError("specialize_prob must be in [0, 1]")
        if self.repeat_prob + self.specialize_prob > 1.0:
            raise WorkloadError("repeat_prob + specialize_prob must be <= 1")

    def resolved_pattern(self) -> PatternConfig:
        return self.pattern or PatternConfig(depth=3, branch_prob=0.4)


@dataclass
class StreamQuery:
    """One stream element with its provenance.

    Attributes
    ----------
    query:
        The query pattern.
    kind:
        ``"repeat"``, ``"specialize"`` or ``"fresh"``.
    template_index:
        Index into the template pool for repeats and specializations;
        None for fresh queries.
    """

    query: Pattern
    kind: str
    template_index: int | None = None


@dataclass
class StreamSample:
    """A generated stream plus the template pool that shaped it."""

    config: StreamConfig
    templates: list[Pattern] = field(default_factory=list)
    entries: list[StreamQuery] = field(default_factory=list)

    @property
    def queries(self) -> list[Pattern]:
        """The bare query sequence (what :func:`query_stream` returns)."""
        return [entry.query for entry in self.entries]

    def template_weights(self) -> list[float]:
        """The Zipf weights the stream drew its templates with."""
        return zipf_weights(len(self.templates))

    def kind_counts(self) -> dict[str, int]:
        """How many elements of each provenance kind the stream holds."""
        counts = {kind: 0 for kind in KINDS}
        for entry in self.entries:
            counts[entry.kind] += 1
        return counts


def sample_stream(
    config: StreamConfig | None = None,
    seed: int | _random.Random | None = None,
) -> StreamSample:
    """Generate a query stream with temporal locality, with provenance."""
    config = config or StreamConfig()
    rng = _rng(seed)
    pattern_config = config.resolved_pattern()
    templates = [random_pattern(pattern_config, rng) for _ in range(config.templates)]
    weights = zipf_weights(len(templates))
    indices = range(len(templates))

    sample = StreamSample(config=config, templates=templates)
    for _ in range(config.length):
        roll = rng.random()
        if roll < config.repeat_prob:
            index = rng.choices(indices, weights=weights, k=1)[0]
            sample.entries.append(
                StreamQuery(templates[index], "repeat", index)
            )
        elif roll < config.repeat_prob + config.specialize_prob:
            index = rng.choices(indices, weights=weights, k=1)[0]
            sample.entries.append(
                StreamQuery(
                    _specialize(templates[index], pattern_config, rng),
                    "specialize",
                    index,
                )
            )
        else:
            sample.entries.append(
                StreamQuery(random_pattern(pattern_config, rng), "fresh")
            )
    return sample


def query_stream(
    config: StreamConfig | None = None,
    seed: int | _random.Random | None = None,
) -> list[Pattern]:
    """Generate a query stream with temporal locality."""
    return sample_stream(config, seed).queries


def _specialize(
    template: Pattern, config: PatternConfig, rng: _random.Random
) -> Pattern:
    """A strictly more selective variant of ``template``.

    Either grows the selection path below the output (the new query's
    prefix is the template — the classic cache-hit shape), or adds a
    branch to the output node (the new query is *contained* in the
    template).
    """
    copy, mapping = template.copy_with_map()
    out = mapping[template.output]  # type: ignore[index]
    if rng.random() < 0.6:
        axis = config.draw_axis(rng)
        new_out = out.add(axis, PNode(config.draw_label(rng)))
        return Pattern(copy.root, new_out)
    out.add(config.draw_axis(rng), PNode(config.draw_label(rng)))
    return Pattern(copy.root, out)
