"""Workload generators for rewriting instances ``(P, V)``.

Benchmarks C3/C4 need instance populations with controlled properties:

* *rewritable* instances (view = a prefix of the query, so ``P≥k ∘ V``
  reconstructs ``P``);
* *mutated* instances (the view gains a branch the query lacks, usually
  destroying rewritability) — these exercise the completeness
  certificates;
* *condition-targeted* instances that satisfy one specific theorem's
  precondition (e.g. "selection path of V has only child edges" for
  Theorem 4.10 workloads).

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from ..errors import WorkloadError
from ..patterns.ast import Axis, Pattern, PNode, WILDCARD
from ..patterns.random import PatternConfig, random_pattern, random_rewrite_instance

__all__ = ["InstanceConfig", "make_instances", "condition_instance"]


def _rng(seed_or_rng: int | _random.Random | None) -> _random.Random:
    if isinstance(seed_or_rng, _random.Random):
        return seed_or_rng
    return _random.Random(seed_or_rng)


@dataclass
class InstanceConfig:
    """Shape of a rewriting-instance workload.

    ``mutate_ratio`` is the fraction of instances whose views receive a
    distinguishing branch (negative instances).
    """

    count: int = 50
    pattern: PatternConfig | None = None
    mutate_ratio: float = 0.5

    def resolved_pattern(self) -> PatternConfig:
        return self.pattern or PatternConfig(depth=4)


def make_instances(
    config: InstanceConfig | None = None,
    seed: int | _random.Random | None = None,
) -> list[tuple[Pattern, Pattern, bool]]:
    """Generate ``(P, V, mutated)`` triples.

    ``mutated`` is True for negative-leaning instances.  Rewritability of
    each instance must still be *decided* (mutations occasionally leave a
    rewriting intact).
    """
    config = config or InstanceConfig()
    rng = _rng(seed)
    pattern_config = config.resolved_pattern()
    instances = []
    for index in range(config.count):
        mutated = rng.random() < config.mutate_ratio
        query, view = random_rewrite_instance(
            pattern_config, seed=rng, mutate_view=mutated
        )
        instances.append((query, view, mutated))
    return instances


def condition_instance(
    condition: str,
    depth: int = 4,
    view_depth: int = 2,
    seed: int | _random.Random | None = None,
) -> tuple[Pattern, Pattern]:
    """A random instance satisfying one named theorem precondition.

    Supported conditions:

    * ``"thm-4.3"``  — ``P≥k`` is stable (non-wildcard k-node);
    * ``"thm-4.4"``  — the first k selection edges of P are child edges;
    * ``"thm-4.9"``  — a descendant edge enters ``out(V)``;
    * ``"thm-4.10"`` — V's selection path has only child edges;
    * ``"thm-4.16"`` — P's last descendant selection edge corresponds to
      a descendant edge of V;
    * ``"gnf"``      — P is linear (hence in GNF/∗).

    The view is the corresponding prefix ``P≤k`` (possibly with its edges
    adjusted to satisfy the condition), so generated instances remain
    realistic "view caches a prefix of the query" scenarios.
    """
    if view_depth < 1 or view_depth > depth:
        raise WorkloadError("need 1 <= view_depth <= depth")
    rng = _rng(seed)
    pattern_config = PatternConfig(depth=depth)

    query, view = random_rewrite_instance(
        pattern_config, seed=rng, view_depth=view_depth
    )
    q_path = query.selection_path()
    q_parent = query.parent_map()
    v_path = view.selection_path()
    v_parent = view.parent_map()

    def set_query_axis(i: int, axis: Axis) -> None:
        node = q_path[i]
        _, parent = q_parent[node]
        parent.edges = [
            (axis if child is node else a, child) for a, child in parent.edges
        ]

    def set_view_axis(i: int, axis: Axis) -> None:
        node = v_path[i]
        _, parent = v_parent[node]
        parent.edges = [
            (axis if child is node else a, child) for a, child in parent.edges
        ]

    k = view_depth
    if condition == "thm-4.3":
        label = rng.choice(["a", "b", "c"])
        q_path[k].label = label
        # Keep the view's output label glb-compatible with the k-node.
        if v_path[k].label != WILDCARD:
            v_path[k].label = label
    elif condition == "thm-4.4":
        for i in range(1, k + 1):
            set_query_axis(i, Axis.CHILD)
            set_view_axis(i, Axis.CHILD)
    elif condition == "thm-4.9":
        set_view_axis(k, Axis.DESCENDANT)
        set_query_axis(k, Axis.DESCENDANT)
    elif condition == "thm-4.10":
        for i in range(1, k + 1):
            set_view_axis(i, Axis.CHILD)
            set_query_axis(i, Axis.CHILD)
    elif condition == "thm-4.16":
        # Put the last descendant edge of P at depth k, matched in V.
        set_view_axis(k, Axis.DESCENDANT)
        set_query_axis(k, Axis.DESCENDANT)
        for i in range(k + 1, depth + 1):
            set_query_axis(i, Axis.CHILD)
    elif condition == "gnf":
        # Strip branches: linear patterns are always in GNF/∗.
        q_on_path = set(map(id, q_path))
        for node in list(query.nodes()):
            node.edges = [(a, c) for a, c in node.edges if id(c) in q_on_path]
        v_on_path = set(map(id, v_path))
        for node in list(view.nodes()):
            node.edges = [(a, c) for a, c in node.edges if id(c) in v_on_path]
    else:
        raise WorkloadError(f"unknown condition {condition!r}")

    # Rebuild to refresh caches/validation after in-place edits.
    query = Pattern(query.root, query.output)
    view = Pattern(view.root, view.output)
    query._key_cache = None
    view._key_cache = None
    return query, view
