"""Figure 2 (Section 4): the natural candidates and their compositions.

For the Figure 1 instance (P, V), Figure 2 depicts the two natural
candidates ``P≥1`` and ``P≥1_r//`` together with ``P≥1 ∘ V`` and
``P≥1_r// ∘ V``.  The text establishes:

* ``P≥1`` is **not** a rewriting of P using V;
* ``P≥1_r//`` **is** a rewriting (the reader "can verify" it — here the
  containment engine does);
* V's selection path consists of a single child edge, so Theorem 4.10
  applies: one of the natural candidates must be a potential rewriting.
"""

from __future__ import annotations

from ..core.candidates import natural_candidates
from ..core.composition import compose
from ..core.containment import equivalent
from ..core.rewrite import RewriteSolver
from ..core.selection import sub_ge
from ..core.transform import relax_root
from ..patterns.ast import Axis, Pattern
from .fig1 import build as build_fig1
from .report import FigureReport

__all__ = ["build", "verify"]


def build() -> dict[str, Pattern]:
    """The Figure 2 patterns: candidates and compositions for Figure 1."""
    fig1 = build_fig1()
    query, view = fig1["P"], fig1["V"]
    base = sub_ge(query, view.depth)
    relaxed = relax_root(base)
    return {
        "P": query,
        "V": view,
        "P≥1": base,
        "P≥1_r//": relaxed,
        "P≥1∘V": compose(base, view),
        "P≥1_r//∘V": compose(relaxed, view),
    }


def verify() -> FigureReport:
    """Reconstruct Figure 2 and verify the claims of Section 4."""
    patterns = build()
    query, view = patterns["P"], patterns["V"]
    base, relaxed = patterns["P≥1"], patterns["P≥1_r//"]

    report = FigureReport(figure="Figure 2", patterns=patterns)

    report.checks["natural candidates are {P≥1, P≥1_r//}"] = (
        natural_candidates(query, view.depth) == [base, relaxed]
    )
    report.checks["P≥1 is not a rewriting"] = not equivalent(
        patterns["P≥1∘V"], query
    )
    report.checks["P≥1_r// is a rewriting"] = equivalent(
        patterns["P≥1_r//∘V"], query
    )
    report.checks["V's selection path is a single child edge"] = (
        view.depth == 1 and view.selection_axes() == [Axis.CHILD]
    )
    # Theorem 4.10's precondition holds, so the candidate check is a
    # complete decision procedure for this instance.
    solver = RewriteSolver()
    report.checks["Thm 4.10 precondition (view path all child edges)"] = all(
        axis is Axis.CHILD for axis in view.selection_axes()
    )
    decision = solver.solve(query, view)
    report.checks["solver returns the relaxed candidate"] = (
        decision.rewriting == relaxed
    )
    return report
