"""Figure 1 (Section 2.3/2.4): a rewriting example.

The paper's Figure 1 shows patterns ``V``, ``P``, ``R`` and the
composition ``R ∘ V`` over labels {a, b, d, e, *}, where ``R`` is a
rewriting of ``P`` using ``V`` and the merged node ``m`` of ``R ∘ V``
gets the glb of the output label of ``V`` and the root label of ``R``
(both ``*`` in the figure).

The flattened text of the 2-D drawing is ambiguous, so the patterns are
reconstructed *up to branch placement* with the same label set and the
same stated properties, all machine-verified here:

* ``R ∘ V ≡ P`` (R is a rewriting);
* the merged node's label is ``*`` = glb(*, *);
* ``P≥1`` alone is **not** a rewriting (motivating Figure 2);
* the solver rediscovers a rewriting with at most two equivalence tests.
"""

from __future__ import annotations

from ..core.composition import compose, glb
from ..core.containment import equivalent
from ..core.rewrite import RewriteSolver, RewriteStatus
from ..core.selection import sub_ge
from ..patterns.ast import Pattern
from ..patterns.parse import parse_pattern
from .report import FigureReport

__all__ = ["build", "verify"]


def build() -> dict[str, Pattern]:
    """The Figure 1 patterns (reconstruction)."""
    view = parse_pattern("a[b]/*")
    query = parse_pattern("a[b]//*/e[d]")
    rewriting = parse_pattern("*//e[d]")
    return {
        "V": view,
        "P": query,
        "R": rewriting,
        "R∘V": compose(rewriting, view),
    }


def verify() -> FigureReport:
    """Reconstruct Figure 1 and verify the paper's claims about it."""
    patterns = build()
    view, query, rewriting = patterns["V"], patterns["P"], patterns["R"]
    composition = patterns["R∘V"]

    report = FigureReport(figure="Figure 1", patterns=patterns)
    report.notes.append(
        "patterns reconstructed from the figure's label set {a,b,d,e,*}; "
        "branch placement chosen to preserve every property stated in the text"
    )

    report.checks["R∘V ≡ P (R is a rewriting)"] = equivalent(composition, query)
    merged = composition.selection_path()[view.depth]
    report.checks["merged node m is labeled glb(*,*) = *"] = (
        merged.label == glb("*", "*")
    )
    naive = sub_ge(query, view.depth)
    report.checks["P≥1 alone is not a rewriting"] = not equivalent(
        compose(naive, view), query
    )

    solver = RewriteSolver()
    decision = solver.solve(query, view)
    report.checks["solver finds a rewriting"] = (
        decision.status is RewriteStatus.FOUND
    )
    report.checks["solver used ≤ 2 equivalence tests"] = (
        decision.equivalence_tests <= 2
    )
    if decision.rewriting is not None:
        report.checks["solver's rewriting verifies"] = equivalent(
            compose(decision.rewriting, view), query
        )
    return report
