"""Figure 3 (Section 4.1.2, proof of Lemma 4.12): branch relaxation.

The figure illustrates a branch ``B`` whose maximal child-edge path from
the root carries only wildcard labels and ends at a node with only
descendant out-edges; ``B'`` is the result of replacing the path's edges
by descendant edges, and ``B_r//`` relaxes just the root's outgoing edge.
The lemma's chain is ``B ⊑ B_r// ⊑ B' ≡ B``, hence ``B ≡ B_r//``.

Reconstruction: ``B`` is a wildcard chain of three nodes whose last node
carries descendant branches to ``a`` and ``b`` (the figure's label set is
{a, b, *}).  All four containments of the chain are machine-verified.
"""

from __future__ import annotations

from ..core.containment import contains, equivalent
from ..core.transform import relax_root
from ..patterns.ast import Pattern
from ..patterns.parse import parse_pattern
from .report import FigureReport

__all__ = ["build", "verify"]


def build() -> dict[str, Pattern]:
    """The Figure 3 patterns: B, B_r// and B'."""
    branch = parse_pattern("*[*[*[.//a][.//b]]]")
    relaxed = relax_root(branch)
    fully = parse_pattern("*[.//*[.//*[.//a][.//b]]]")
    return {"B": branch, "B_r//": relaxed, "B'": fully}


def verify() -> FigureReport:
    """Reconstruct Figure 3 and verify the Lemma 4.12 chain."""
    patterns = build()
    branch, relaxed, fully = patterns["B"], patterns["B_r//"], patterns["B'"]

    report = FigureReport(figure="Figure 3", patterns=patterns)
    report.notes.append(
        "B is a branch pattern (output at the root); the chain "
        "B ⊑ B_r// ⊑ B' ≡ B is the heart of Lemma 4.12's proof"
    )

    report.checks["B ⊑ B_r//"] = contains(branch, relaxed)
    report.checks["B_r// ⊑ B'"] = contains(relaxed, fully)
    report.checks["B' ≡ B"] = equivalent(fully, branch)
    report.checks["hence B ≡ B_r//"] = equivalent(branch, relaxed)
    # The lemma's precondition: the maximal child path from the root has
    # only wildcard labels.
    chain = branch.root
    wildcards_only = True
    while chain is not None:
        if not chain.is_wildcard():
            wildcards_only = False
        child_edges = [c for a, c in chain.edges if a.name == "CHILD"]
        chain = child_edges[0] if child_edges else None
    report.checks["maximal child path is all wildcards"] = wildcards_only
    return report
