"""Programmatic reconstructions of the paper's Figures 1–4.

Each module exposes ``build()`` (the figure's patterns) and ``verify()``
(a :class:`~repro.figures.report.FigureReport` whose checks must all
pass).  :func:`verify_all` runs every figure.
"""

from . import fig1, fig2, fig3, fig4
from .report import FigureReport

__all__ = ["FigureReport", "fig1", "fig2", "fig3", "fig4", "verify_all"]


def verify_all() -> list[FigureReport]:
    """Verify every figure reconstruction; reports in figure order."""
    return [fig1.verify(), fig2.verify(), fig3.verify(), fig4.verify()]
