"""Figure 4 (Sections 4.1.3 and 5.3): correlation, extension, lifting.

The figure shows a view ``V`` and three queries ``P1``, ``P2``, ``P3``
(labels {a, b, c, e, µ, *}), plus the extension/lifting artifacts
``V+∗``, ``P2+µ`` and ``(P2+µ)^{4→}``.  The text's claims:

* (V, P1) satisfy Theorem 4.16: the last descendant edge on P1's
  selection path (the second) corresponds to a descendant edge of V.
* (V, P3) do **not** satisfy 4.16 (V's corresponding edge is a child
  edge) but satisfy Corollary 5.7: V's deepest descendant selection edge
  is at least as deep as P3's — so ``P3≥3`` is a potential rewriting.
* P2's last descendant selection edge is the fifth, deeper than V, so
  neither 4.16 nor 5.7 applies directly; Section 5.3 fixes this: a non-∗
  label (``c``) occurs between the k-node and that edge, so lifting the
  extended query at depth 4 — ``(P2+µ)^{4→}`` with view ``V+∗`` —
  reduces to a resolved case.

The reconstruction uses V of depth 3 with selection axes (/, //, /) and
queries engineered so that *only* the stated condition applies (checked
against the solver's certificate engine).
"""

from __future__ import annotations

from ..core.rewrite import RewriteSolver, RewriteStatus
from ..core.selection import last_descendant_selection_depth
from ..core.transform import extend, lift_output
from ..patterns.ast import Axis, Pattern
from ..patterns.parse import parse_pattern
from .report import FigureReport

__all__ = ["build", "verify"]


def build() -> dict[str, Pattern]:
    """The Figure 4 patterns (reconstruction)."""
    view = parse_pattern("a/*//*/*")  # depth 3, axes (/, //, /)
    p1 = parse_pattern("a/*//*/*/e")  # last // at depth 2, like V
    p2 = parse_pattern("a/*//*[e]/*/c//e")  # last // at depth 5 > k
    p3 = parse_pattern("a//*[e]/*/*/e")  # last // at depth 1; V's is deeper
    p2_ext = extend(p2, "µ")
    return {
        "V": view,
        "P1": p1,
        "P2": p2,
        "P3": p3,
        "V+∗": extend(view, "*"),
        "P2+µ": p2_ext,
        "(P2+µ)^{4→}": lift_output(p2_ext, 4),
    }


def verify() -> FigureReport:
    """Reconstruct Figure 4 and verify the correlation/extension claims."""
    patterns = build()
    view = patterns["V"]
    p1, p2, p3 = patterns["P1"], patterns["P2"], patterns["P3"]
    k = view.depth

    report = FigureReport(figure="Figure 4", patterns=patterns)
    report.notes.append(
        "V has depth 3 with one descendant selection edge at depth 2; "
        "P1/P2/P3 realize the three correlation cases of §4.1.3 and §5.3"
    )

    view_axes = view.selection_axes()
    j1 = last_descendant_selection_depth(p1)
    report.checks["P1's last // edge (depth 2) corresponds to a // edge of V"] = (
        j1 == 2 and view_axes[j1 - 1] is Axis.DESCENDANT
    )
    j3 = last_descendant_selection_depth(p3)
    report.checks["P3 fails Thm 4.16: V's corresponding edge is a child edge"] = (
        j3 == 1 and view_axes[j3 - 1] is Axis.CHILD
    )
    jv = last_descendant_selection_depth(view)
    report.checks["Cor 5.7 applies to (P3, V): V's deepest // ≥ P3's deepest //"] = (
        jv is not None and j3 is not None and jv >= j3
    )
    j2 = last_descendant_selection_depth(p2)
    report.checks["P2's last // edge is the fifth (no corresponding V edge)"] = (
        j2 == 5 and j2 > k
    )
    sel_labels = [n.label for n in p2.selection_path()]
    report.checks["a non-∗ label (c) sits between P2's k-node and that edge"] = (
        "c" in sel_labels[k : j2]
    )

    solver = RewriteSolver()
    cert1 = solver.find_certificate(p1, view)
    report.checks["certificate for (P1, V) is Thm 4.16"] = (
        cert1 == "thm-4.16-corresponding-descendant-edges"
    )
    cert3 = solver.find_certificate(p3, view)
    report.checks["certificate for (P3, V) is Cor 5.7 (= Prop 5.6 + Thm 4.16)"] = (
        cert3 == "prop-5.6+thm-4.16-corresponding-descendant-edges"
    )
    cert2 = solver.find_certificate(p2, view)
    report.checks["certificate for (P2, V) goes through the §5.3 lift at j=4"] = (
        cert2 is not None and cert2.startswith("thm-5.9-lift@4")
    )

    # Solver outcomes: P1 has a rewriting (its natural candidate works);
    # P2 and P3 provably have none (their [e] branch is lost by V).
    report.checks["(P1, V): rewriting found"] = (
        solver.solve(p1, view).status is RewriteStatus.FOUND
    )
    report.checks["(P2, V): no rewriting, by the §5.3 certificate"] = (
        solver.solve(p2, view).status is RewriteStatus.NO_REWRITING
    )
    report.checks["(P3, V): no rewriting, by Cor 5.7"] = (
        solver.solve(p3, view).status is RewriteStatus.NO_REWRITING
    )

    # The extension artifacts themselves.
    lifted = patterns["(P2+µ)^{4→}"]
    report.checks["(P2+µ)^{4→} has depth 4 and output label c"] = (
        lifted.depth == 4 and lifted.output.label == "c"
    )
    extended_view = patterns["V+∗"]
    report.checks["V+∗ keeps depth 3 and gains a ∗ child at its output"] = (
        extended_view.depth == 3
        and any(
            child.label == "*"
            for _, child in extended_view.output.edges
        )
    )
    return report
