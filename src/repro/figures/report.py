"""Shared report type for the paper-figure reconstructions.

Each figure module builds the patterns of its figure and checks the exact
claims the paper makes about them; the result is a :class:`FigureReport`
whose ``checks`` must all be True for the reproduction to count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..patterns.ast import Pattern
from ..patterns.serialize import to_xpath

__all__ = ["FigureReport"]


@dataclass
class FigureReport:
    """Outcome of reconstructing one paper figure.

    Attributes
    ----------
    figure:
        Figure identifier, e.g. ``"Figure 1"``.
    patterns:
        The named patterns of the figure.
    checks:
        Named boolean verifications of the paper's claims.
    notes:
        Reconstruction caveats (e.g. relabelings forced by the flattened
        figure text).
    """

    figure: str
    patterns: dict[str, Pattern] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every claimed property verified."""
        return all(self.checks.values())

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"== {self.figure} =="]
        for name, pattern in self.patterns.items():
            lines.append(f"  {name} = {to_xpath(pattern)}")
        for name, value in self.checks.items():
            status = "PASS" if value else "FAIL"
            lines.append(f"  [{status}] {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
