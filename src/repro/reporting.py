"""Small table/series printers for the benchmark harness.

The paper has no numeric tables (it is a theory paper), so the benchmark
suite prints the rows it *derives* from the paper's claims — rule
coverage, test counts, scaling series.  These helpers keep that output
uniform across benches.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "format_series", "print_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    """Print an aligned ASCII table."""
    print(format_table(headers, rows, title))


def format_series(
    name: str, points: Iterable[tuple[object, object]]
) -> str:
    """Render an ``x -> y`` series on one line each."""
    lines = [f"series: {name}"]
    for x, y in points:
        lines.append(f"  {_cell(x)} -> {_cell(y)}")
    return "\n".join(lines)


def print_series(name: str, points: Iterable[tuple[object, object]]) -> None:
    """Print an ``x -> y`` series."""
    print(format_series(name, points))
