"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch a single exception type at the API boundary.  Sub-classes
are grouped by subsystem: pattern parsing, pattern structure, containment,
rewriting and the view engine.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PatternSyntaxError",
    "PatternStructureError",
    "EmptyPatternError",
    "CompositionError",
    "ContainmentBudgetError",
    "RewriteBudgetError",
    "ViewEngineError",
    "UnknownViewError",
    "UnknownDocumentError",
    "CatalogError",
    "ServingError",
    "AdmissionRejected",
    "RequestTimeout",
    "ShardCrashError",
    "ReplicaLagError",
    "ReplicaUnavailableError",
    "DocumentSyntaxError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PatternSyntaxError(ReproError):
    """Raised when an XPath pattern string cannot be parsed.

    Carries the offending text and, when available, the character offset
    where parsing failed.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        elif text:
            message = f"{message} (in {text!r})"
        super().__init__(message)


class PatternStructureError(ReproError):
    """Raised when a structurally invalid pattern operation is attempted.

    Examples: requesting the k-sub-pattern for a ``k`` larger than the
    pattern depth, or lifting the output node above the root.
    """


class EmptyPatternError(PatternStructureError):
    """Raised when an operation requires a nonempty pattern but got Υ."""


class CompositionError(ReproError):
    """Raised when a pattern composition ``R ∘ V`` is malformed.

    Note that an *incompatible* composition (``glb`` of the merged labels
    undefined) is not an error — it yields the empty pattern Υ, following
    Section 2.3 of the paper.  This exception covers genuine misuse, such
    as composing with a non-pattern.
    """


class ContainmentBudgetError(ReproError):
    """Raised when a containment test exceeds its canonical-model budget.

    The canonical-model containment procedure enumerates exponentially many
    models in the number of descendant edges; callers may bound that work.
    """


class RewriteBudgetError(ReproError):
    """Raised when the exhaustive rewriting search exceeds its budget.

    The Prop 3.4 decidability procedure is doubly exponential in the worst
    case; the solver caps enumeration and raises (or reports UNKNOWN) when
    the cap is hit.
    """


class ViewEngineError(ReproError):
    """Base class for errors raised by the materialized-view engine."""


class UnknownViewError(ViewEngineError):
    """Raised when a view name is not registered in the view store."""


class UnknownDocumentError(ViewEngineError):
    """Raised when a document name (or digest) is not registered.

    Raised by :class:`~repro.views.store.ViewStore` for unregistered
    document names and by the catalog router for requests addressed to a
    document id it has never seen — a routing mistake surfaces as a typed
    library error, never a bare :class:`KeyError`.
    """


class CatalogError(ViewEngineError):
    """Raised when a multi-document catalog operation is misused.

    Examples: registering the same document id twice, or serving through
    a :class:`~repro.catalog.server.CatalogServer` that has been closed.
    """


class ServingError(ViewEngineError):
    """Base class for errors raised by the async serving front end.

    The serving tier's failure modes are part of its API — overload,
    deadline expiry and worker death each get their own subclass so a
    client can tell "retry later" from "retry now elsewhere" from
    "give up".
    """


class AdmissionRejected(ServingError):
    """Raised when a bounded admission queue refuses a new request.

    The overload signal of the serving tier: the queue is full and the
    front end's overflow policy is ``"reject"``.  Clients should back
    off; nothing was enqueued.
    """


class RequestTimeout(ServingError):
    """Raised when a request misses its deadline or a worker stalls.

    Set on a request future when its deadline expires before dispatch
    (the shed path), and raised by the synchronous pool path when a
    worker future exceeds its bounded ``result`` wait instead of
    blocking the caller forever.
    """


class ShardCrashError(ServingError):
    """Raised when a worker shard is dead (or simulated dead).

    Surfaced by :class:`~repro.shardpool.ShardPool` for submissions to
    a crashed shard and by the serving front end when a batch's shard
    died and the retry/degrade ladder was exhausted.
    """


class ReplicaUnavailableError(ServingError):
    """Raised when a read replica is down (or simulated down).

    Surfaced by the replicated read tier
    (:class:`~repro.catalog.replication.ReplicaSet`) when a replica
    crashes mid-serve: the dispatch policy evicts the replica and
    retries the batch on a healthy sibling, degrading to the writer's
    inline catalog when none remains.  Handlers that catch this type
    must retry elsewhere or re-raise — swallowing it silently degrades
    the read tier (the ``REP001`` lint rule enforces exactly that).
    """


class ReplicaLagError(ServingError):
    """Raised when a replica is too stale to serve a bounded-staleness read.

    The self-fencing signal of the replicated read tier: a replica
    whose applied sequence number trails the writer by more than
    ``max_lag_records``, or whose last catch-up is older than
    ``max_lag_seconds`` (against the injected clock), refuses reads
    instead of serving stale answers.  The dispatch policy treats it
    like unavailability (a fresher sibling may still serve), but the
    type tells clients *why*: sync the replica, don't restart it.
    """


class DocumentSyntaxError(ReproError):
    """Raised when an XML document string cannot be parsed into a tree."""


class WorkloadError(ReproError):
    """Raised when a workload specification is inconsistent."""
