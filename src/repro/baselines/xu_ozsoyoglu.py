"""PTIME rewriting baseline for the three sub-fragments (after [17]).

Xu and Özsoyoglu showed that the rewriting problem is PTIME on each of
the sub-fragments ``XP{//,[]}``, ``XP{//,*}`` and ``XP{[],*}`` because
equivalence is tractable there.  This baseline mirrors that algorithm:

* test the natural candidates (``P≥k`` and, where needed, ``P≥k_r//``)
  with a fragment-appropriate PTIME equivalence procedure —
  homomorphisms for ``XP{//,[]}`` / ``XP{[],*}``, the word-automaton
  inclusion of :mod:`repro.baselines.linear` for ``XP{//,*}``;
* candidate completeness within each fragment follows from the paper's
  own theorems: Thm 4.3 for wildcard-free queries (the k-node label is in
  Σ, so ``P≥k`` is stable), Thm 4.4 for descendant-free queries (the
  selection prefix has only child edges), and Thm 5.4 for branch-free
  queries (linear patterns are always in GNF/∗).

The baseline exists to reproduce the paper's complexity landscape
(benchmark C2): it must agree with the general solver on fragment
instances while running in polynomial time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PatternStructureError
from ..core.candidates import natural_candidates
from ..core.composition import compose
from ..core.containment import hom_exists
from ..patterns.ast import Pattern
from ..patterns.fragments import uses_predicate
from .linear import linear_equivalent

__all__ = ["BaselineResult", "ptime_fragment", "rewrite_ptime"]


@dataclass
class BaselineResult:
    """Outcome of the PTIME baseline.

    ``rewriting`` is None when no rewriting exists (definitive within the
    supported fragments).  ``fragment`` names the sub-fragment used;
    ``equivalence_tests`` counts PTIME equivalence checks.
    """

    rewriting: Pattern | None
    fragment: str
    equivalence_tests: int


def ptime_fragment(query: Pattern, view: Pattern) -> str | None:
    """Which PTIME sub-fragment the instance falls in, if any.

    Returns ``"XP{//,[]}"``, ``"XP{[],*}"``, ``"XP{//,*}"`` or None.
    Preference order puts the homomorphism-friendly fragments first.
    """
    if not query.has_wildcard() and not view.has_wildcard():
        return "XP{//,[]}"
    if not query.has_descendant_edge() and not view.has_descendant_edge():
        return "XP{[],*}"
    if not uses_predicate(query) and not uses_predicate(view):
        # Predicate-free means both are paths with the output at the end,
        # exactly what the word-automaton procedure needs.
        return "XP{//,*}"
    return None


def _hom_equivalent(p: Pattern, q: Pattern) -> bool:
    """PTIME equivalence by homomorphisms in both directions."""
    if p.is_empty or q.is_empty:
        return p.is_empty and q.is_empty
    return hom_exists(q, p) and hom_exists(p, q)


def rewrite_ptime(query: Pattern, view: Pattern) -> BaselineResult:
    """Decide rewriting existence for a PTIME sub-fragment instance.

    Raises
    ------
    PatternStructureError
        If the instance does not fit any of the three sub-fragments
        (use the general solver instead).
    """
    fragment = ptime_fragment(query, view)
    if fragment is None:
        raise PatternStructureError(
            "instance is not in a PTIME sub-fragment; use RewriteSolver"
        )
    if query.is_empty:
        return BaselineResult(Pattern.empty(), fragment, 0)
    if view.is_empty or view.depth > query.depth:
        return BaselineResult(None, fragment, 0)

    if fragment == "XP{//,*}":
        equivalence = linear_equivalent
        candidates = natural_candidates(query, view.depth)
    elif fragment == "XP{//,[]}":
        equivalence = _hom_equivalent
        # Wildcard-free: P≥k is stable (Thm 4.3), so it alone is complete.
        candidates = natural_candidates(query, view.depth)[:1]
    else:  # XP{[],*}
        equivalence = _hom_equivalent
        # Descendant-free: Thm 4.4 makes P≥k complete, and relaxing would
        # leave the fragment anyway.
        candidates = natural_candidates(query, view.depth)[:1]

    tests = 0
    for candidate in candidates:
        tests += 1
        composition = compose(candidate, view)
        if composition.is_empty:
            continue
        if fragment == "XP{//,*}" and uses_predicate(composition):
            continue  # defensive; compositions of path patterns are paths
        if equivalence(composition, query):
            return BaselineResult(candidate, fragment, tests)
    return BaselineResult(None, fragment, tests)
