"""Baseline algorithms the paper compares against or builds upon.

* :mod:`xu_ozsoyoglu` — the [17]-style PTIME rewriting algorithm for the
  three sub-fragments (benchmark C2's polynomial side).
* :mod:`linear` — word-automaton containment for ``XP{//,*}``, where the
  homomorphism test is incomplete.
* The Prop 3.4 brute-force search lives in :mod:`repro.core.decide` and
  is re-exported here as the naive baseline.
"""

from ..core.decide import SearchOutcome, exhaustive_search
from .linear import linear_containment, linear_equivalent
from .xu_ozsoyoglu import BaselineResult, ptime_fragment, rewrite_ptime

__all__ = [
    "BaselineResult",
    "ptime_fragment",
    "rewrite_ptime",
    "linear_containment",
    "linear_equivalent",
    "SearchOutcome",
    "exhaustive_search",
]
