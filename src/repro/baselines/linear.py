"""Containment of *linear* patterns (``XP{//,*}``) via word automata.

For branch-free patterns, an output node is selected by the sequence of
labels on the root-to-node path alone, so a linear pattern denotes a
language of *words* over Σ: ``p`` matches ``w0 … wm`` iff positions
``0 = i0 < i1 < … < in = m`` exist with label compatibility at each
``ij``, adjacent positions for child edges and strictly increasing
positions for descendant edges.  Containment ``p ⊑ q`` is then language
inclusion ``L(p) ⊆ L(q)``.

This matters because the homomorphism test is **incomplete** on
``XP{//,*}`` (``a//*/e ⊑ a/*//e`` with no homomorphism) even though
containment is tractable there; this module provides the dedicated
decision procedure used by the [17]-style baseline rewriter.

Implementation: both patterns compile to small NFAs; inclusion is checked
by a product search of ``p``'s NFA against the determinized subset
automaton of ``q``, over the finite alphabet of mentioned labels plus one
fresh symbol (a standard sufficiency argument: unmentioned labels are
interchangeable).  The subset construction is worst-case exponential in
``|q|`` but tiny for realistic patterns.
"""

from __future__ import annotations

from ..errors import PatternStructureError
from ..patterns.ast import Axis, Pattern, WILDCARD
from ..xmltree.node import BOTTOM_LABEL

__all__ = ["linear_containment", "linear_equivalent"]


class _WordNFA:
    """NFA over label-words for one linear pattern.

    States: ``-1`` (initial, nothing consumed), ``2j`` ("matched node j"),
    ``2j+1`` ("inside the descendant gap before node j+1").  The accepting
    state is ``2n`` for a pattern with nodes ``0..n``.
    """

    def __init__(self, pattern: Pattern):
        if pattern.is_empty:
            raise PatternStructureError("empty pattern has no word automaton")
        if not pattern.is_linear():
            raise PatternStructureError(
                "word-automaton containment requires linear patterns"
            )
        path = pattern.selection_path()
        if path[-1] is not pattern.output or len(path) != pattern.size():
            # Defensive: linearity plus output-on-path implies this.
            raise PatternStructureError("linear pattern must end at its output")
        self.labels = [node.label for node in path]
        self.axes = pattern.selection_axes()
        self.n = len(self.labels) - 1
        self.accepting = 2 * self.n

    def step(self, state: int, symbol: str) -> list[int]:
        """All successor states after consuming ``symbol``."""
        if state == -1:
            return [0] if self._match(0, symbol) else []
        if state % 2 == 1:  # inside gap before node j+1
            j = state // 2
            result = [state]
            if self._match(j + 1, symbol):
                result.append(2 * (j + 1))
            return result
        j = state // 2  # at node j
        if j == self.n:
            return []
        axis = self.axes[j]
        result = []
        if self._match(j + 1, symbol):
            result.append(2 * (j + 1))
        if axis is Axis.DESCENDANT:
            result.append(2 * j + 1)  # enter the gap
        return result

    def _match(self, index: int, symbol: str) -> bool:
        label = self.labels[index]
        return label == WILDCARD or label == symbol


def linear_containment(p: Pattern, q: Pattern) -> bool:
    """Decide ``p ⊑ q`` for linear patterns by language inclusion.

    Raises :class:`PatternStructureError` if either pattern branches.
    """
    if p.is_empty:
        return True
    if q.is_empty:
        return False
    nfa_p = _WordNFA(p)
    nfa_q = _WordNFA(q)
    alphabet = sorted(set(nfa_p.labels) | set(nfa_q.labels) - {WILDCARD})
    alphabet = [l for l in alphabet if l != WILDCARD] + [BOTTOM_LABEL]

    # Search for a word accepted by p but not by q.
    start = (-1, frozenset({-1}))
    seen = {start}
    stack = [start]
    while stack:
        p_state, q_subset = stack.pop()
        for symbol in alphabet:
            for p_next in nfa_p.step(p_state, symbol):
                q_next = frozenset(
                    succ for qs in q_subset for succ in nfa_q.step(qs, symbol)
                )
                if p_next == nfa_p.accepting and nfa_q.accepting not in q_next:
                    return False  # counterexample word exists
                state = (p_next, q_next)
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
    return True


def linear_equivalent(p: Pattern, q: Pattern) -> bool:
    """Equivalence of linear patterns: inclusion both ways."""
    return linear_containment(p, q) and linear_containment(q, p)
