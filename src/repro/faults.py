"""Deterministic fault injection for the serving tier.

Serving robustness — retry-once on shard death, shed-on-deadline,
degrade-to-inline, I/O-error tolerance — is only trustworthy if it is
*testable*, and testable means deterministic: no killed processes, no
real disk errors, no ``time.sleep`` races.  This module is the seam the
serving components expose for exactly that:

* :class:`VirtualClock` — an injectable monotonic clock.  Components
  that compare deadlines accept any zero-argument callable returning
  seconds; tests inject a virtual clock and *advance it explicitly*, so
  "the worker was slow" or "the deadline passed while queued" are plain
  function calls, not sleeps.
* :class:`FaultAction` — one injected fault: a simulated worker
  **crash**, an arbitrary **error**, a **hang** (a future that never
  completes), or a **delay** (advances the policy's virtual clock, the
  deterministic stand-in for a slow worker).
* :class:`FaultPolicy` — the hook contract.
  :meth:`~FaultPolicy.on_submit` is consulted by
  :class:`~repro.shardpool.ShardPool` before every task submission (and
  by the async front end's inline execution path, so single-process
  tests exercise the same retry machinery);
  :meth:`~FaultPolicy.on_backend` is consulted by
  :class:`~repro.catalog.sqlite_backend.SqliteBackend` before every
  database operation.  The base policy injects nothing — production
  code paths pay one ``is None`` check.
* :class:`ScriptedFaultPolicy` — the test implementation: faults keyed
  by deterministic call indexes, with an injection log for assertions.

The contract consumers must honor: a ``crash`` surfaces as
:class:`~repro.errors.ShardCrashError`, an ``error`` surfaces as the
carried exception, a ``delay`` advances the policy's clock *before* the
real work runs, and a ``hang`` yields a future that never resolves
(pool submissions only — callers guard with bounded ``result`` waits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FaultAction",
    "FaultPolicy",
    "ScriptedFaultPolicy",
    "VirtualClock",
]

#: The fault kinds consumers understand (see module docstring).
FAULT_KINDS = ("crash", "error", "hang", "delay")


class VirtualClock:
    """A monotonic clock that only moves when told to.

    Callable (returns seconds as ``float``), so it drops in anywhere a
    ``time.monotonic``-shaped clock is accepted.  ``advance`` is the
    only way time passes — deadline tests are exact, never racy.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new now."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backward")
        self._now += seconds
        return self._now


@dataclass(frozen=True)
class FaultAction:
    """One injected fault.

    ``kind`` is one of :data:`FAULT_KINDS`; ``exc`` carries the
    exception for ``error`` actions and ``seconds`` the virtual-time
    cost for ``delay`` actions.
    """

    kind: str
    exc: Exception | None = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{FAULT_KINDS})"
            )
        if self.kind == "error" and self.exc is None:
            raise ValueError("error faults must carry an exception")


class FaultPolicy:
    """No-fault base policy; the hook contract for the serving tier.

    Subclass (or use :class:`ScriptedFaultPolicy`) and return a
    :class:`FaultAction` to inject; ``None`` means "no fault, proceed".
    """

    def on_submit(self, shard_index: int) -> FaultAction | None:
        """Consulted before each shard submission (and inline serve)."""
        return None

    def on_backend(self, op: str) -> FaultAction | None:
        """Consulted before each storage-backend operation.

        ``op`` names the operation: ``load``, ``save``,
        ``load_selection``, ``save_selection`` or ``prune``.
        """
        return None

    def on_replica(self, op: str, replica_index: int) -> FaultAction | None:
        """Consulted by the replicated read tier per replica operation.

        ``op`` names the operation: ``serve`` (before a replica answers
        a batch) or ``ship`` (before a log tail / snapshot is shipped to
        the replica during sync or restart).  A ``crash``/``hang``
        surfaces as :class:`~repro.errors.ReplicaUnavailableError` and
        evicts the replica; an ``error`` surfaces as the carried
        exception; a ``delay`` advances the policy's clock first (the
        deterministic stand-in for a slow replica — how lag-fencing
        tests age a replica past ``max_lag_seconds``).
        """
        return None


@dataclass
class ScriptedFaultPolicy(FaultPolicy):
    """Faults keyed by deterministic call indexes.

    ``submit`` maps the 0-based *global* submission index (counted
    across all shards, in submission order — deterministic for the
    serial drain loops that consult it) to an action; ``backend`` maps
    ``(op, per-op index)`` pairs; ``replica`` maps ``(op, per-op
    index)`` pairs for the replicated read tier (the index counts
    calls per op across all replicas, in dispatch order — the logged
    entry records which replica drew the fault).  Unkeyed calls
    proceed fault-free.

    ``clock`` (a :class:`VirtualClock`) is advanced by ``delay``
    actions; ``injected`` logs every action actually handed out, in
    order, for test assertions.
    """

    submit: dict[int, FaultAction] = field(default_factory=dict)
    backend: dict[tuple[str, int], FaultAction] = field(default_factory=dict)
    replica: dict[tuple[str, int], FaultAction] = field(default_factory=dict)
    clock: VirtualClock | None = None
    submit_calls: int = 0
    backend_calls: dict[str, int] = field(default_factory=dict)
    replica_calls: dict[str, int] = field(default_factory=dict)
    injected: list[tuple[str, FaultAction]] = field(default_factory=list)

    def _serve_delay(self, action: FaultAction | None) -> None:
        if (
            action is not None
            and action.kind == "delay"
            and self.clock is not None
        ):
            self.clock.advance(action.seconds)

    def on_submit(self, shard_index: int) -> FaultAction | None:
        action = self.submit.get(self.submit_calls)
        self.submit_calls += 1
        if action is not None:
            self.injected.append((f"submit[{shard_index}]", action))
        self._serve_delay(action)
        return action

    def on_backend(self, op: str) -> FaultAction | None:
        index = self.backend_calls.get(op, 0)
        self.backend_calls[op] = index + 1
        action = self.backend.get((op, index))
        if action is not None:
            self.injected.append((f"backend.{op}", action))
        self._serve_delay(action)
        return action

    def on_replica(self, op: str, replica_index: int) -> FaultAction | None:
        index = self.replica_calls.get(op, 0)
        self.replica_calls[op] = index + 1
        action = self.replica.get((op, index))
        if action is not None:
            self.injected.append((f"replica.{op}[{replica_index}]", action))
        self._serve_delay(action)
        return action
