"""Unified observability layer (PR 10): metrics + deterministic tracing.

Two independent seams, both process-global and both defaulting to off:

* :func:`install_tracer` / :func:`current_tracer` — structured span
  tracing.  Trees start at :func:`root` (replay entry points) or
  :meth:`Tracer.start_root` (front-end admission); :func:`span` opens
  children under whatever parents are currently in scope and is a no-op
  otherwise, so instrumented code costs one global check when tracing
  is off.
* :func:`install_registry` / :func:`current_registry` — the
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket latency
  histograms, fed by publishing the existing per-layer stats snapshots
  (which stay bit-identical) plus live histogram observations from the
  replay harness.

Exporters in :mod:`repro.obs.export` (Prometheus text, JSONL traces)
and the ``tools/trace_report.py`` CLI turn the collected data into the
per-layer time breakdowns the ROADMAP's latency claims call for.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    install_registry,
)
from .tracing import (
    OpenSpan,
    SpanRecord,
    Tracer,
    adopt,
    current_tracer,
    install_tracer,
    root,
    span,
)
from .export import (
    export_traces_jsonl,
    render_prometheus,
    trace_lines,
    trace_structure,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "install_registry",
    "OpenSpan",
    "SpanRecord",
    "Tracer",
    "adopt",
    "current_tracer",
    "install_tracer",
    "root",
    "span",
    "export_traces_jsonl",
    "render_prometheus",
    "trace_lines",
    "trace_structure",
]
