"""Deterministic structured span tracing for the serving stack (PR 10).

Design constraints, in priority order:

1. **Zero cost when off.**  Every instrumentation point funnels through
   :func:`span` / :func:`root`, whose fast path is one module-global
   ``None`` check returning a shared no-op scope.  No tracer installed
   means no allocation and no clock read on the hot path.
2. **Deterministic structure.**  Trace ids, span ids and the open/close
   event sequence numbers are minted from per-tracer counters, never
   from wall time or ``random``.  With the injectable
   :class:`repro.faults.VirtualClock` driving timings, two same-seed
   replay runs produce byte-identical trace *structure* (everything
   except the ``start``/``end`` floats — and even those match under a
   virtual clock).
3. **Batched execution fans out.**  The async front end serves many
   admitted requests with one batch dispatch.  A scope opened via
   :func:`span` creates one child per *open parent*, so batch-level
   work is recorded into every member request's trace and each trace
   stays a self-contained well-nested tree.

Well-nestedness is assertable without clocks: a parent's ``open_seq``
precedes its children's, and every child's ``close_seq`` precedes its
parent's (``tests/test_obs.py`` leans on exactly that).

The context seam is a :mod:`contextvars` variable holding the tuple of
currently-open parent spans, so spans propagate through ``await``
boundaries within a task for free.  :func:`span` records **only when a
parent is open** — trees start exclusively at :func:`root` (replay
entry points) or :meth:`Tracer.start_root` (front-end admission), which
is what bounds span volume and keeps un-traced baselines silent.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Tuple

__all__ = [
    "SpanRecord",
    "OpenSpan",
    "Tracer",
    "install_tracer",
    "current_tracer",
    "span",
    "root",
    "adopt",
]

Clock = Callable[[], float]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span.  ``structure()`` drops the two timing floats —
    what remains is the deterministic skeleton tests compare."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    open_seq: int
    close_seq: int
    attrs: dict

    @property
    def duration(self) -> float:
        return self.end - self.start

    def structure(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "open_seq": self.open_seq,
            "close_seq": self.close_seq,
            "attrs": dict(sorted(self.attrs.items())),
        }

    def to_dict(self) -> dict:
        payload = self.structure()
        payload["start"] = self.start
        payload["end"] = self.end
        return payload


class OpenSpan:
    """A span opened but not yet closed.  Mutating ``attrs`` via
    :meth:`set` is the way instrumentation points annotate outcomes
    (plan kind, cache hit, failure-ladder rung) discovered mid-span."""

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "open_seq",
        "attrs",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        open_seq: int,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.open_seq = open_seq
        self.attrs = attrs

    def set(self, **attrs: Any) -> "OpenSpan":
        self.attrs.update(attrs)
        return self

    def close(self, **attrs: Any) -> None:
        if attrs:
            self.attrs.update(attrs)
        self._tracer._close((self,))


class Tracer:
    """Collects spans; all ids/sequence numbers are per-tracer counters.

    Thread-safe (the replica tier may execute synchronously on foreign
    threads), but the determinism contract only holds for
    single-event-loop runs — which is exactly what ``replay_serve``'s
    virtual-time mode provides.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._traces = 0
        self._spans = 0
        self._events = 0

    # ------------------------------------------------------------------
    # Minting
    # ------------------------------------------------------------------
    def start_root(self, name: str, **attrs: Any) -> OpenSpan:
        """Open a new trace with its root span; the caller closes it."""
        with self._lock:
            self._traces += 1
            return self._open_locked(name, self._traces, None, dict(attrs))

    def _open_locked(
        self, name: str, trace_id: int, parent_id: Optional[int], attrs: dict
    ) -> OpenSpan:
        self._spans += 1
        self._events += 1
        return OpenSpan(
            self,
            trace_id,
            self._spans,
            parent_id,
            name,
            self._clock(),
            self._events,
            attrs,
        )

    def _open_children(
        self, name: str, parents: Tuple[OpenSpan, ...], attrs: dict
    ) -> Tuple[OpenSpan, ...]:
        with self._lock:
            return tuple(
                self._open_locked(
                    name, parent.trace_id, parent.span_id, dict(attrs)
                )
                for parent in parents
            )

    def _close(self, spans: Iterable[OpenSpan]) -> None:
        with self._lock:
            end = self._clock()
            for open_span in spans:
                self._events += 1
                self._records.append(
                    SpanRecord(
                        trace_id=open_span.trace_id,
                        span_id=open_span.span_id,
                        parent_id=open_span.parent_id,
                        name=open_span.name,
                        start=open_span.start,
                        end=end,
                        open_seq=open_span.open_seq,
                        close_seq=self._events,
                        attrs=open_span.attrs,
                    )
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def records(self) -> Tuple[SpanRecord, ...]:
        """Closed spans, in close order."""
        with self._lock:
            return tuple(self._records)

    def structure(self) -> list[dict]:
        """The timing-free skeleton of every closed span."""
        return [record.structure() for record in self.records()]

    def clear(self) -> None:
        """Drop collected records (counters keep running — ids stay
        unique for the tracer's lifetime)."""
        with self._lock:
            self._records.clear()


# ----------------------------------------------------------------------
# Module seam: the installed tracer + the open-parents context
# ----------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None
_CONTEXT: ContextVar[Tuple[OpenSpan, ...]] = ContextVar(
    "repro_obs_parents", default=()
)


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None``, remove) the process tracer; returns
    the previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE


class _NoopScope:
    """Shared do-nothing scope: the disabled hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopScope":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopScope":
        return self


_NOOP = _NoopScope()


class _SpanScope:
    """Child scope: one child per open parent (batch fan-out)."""

    __slots__ = ("_name", "_attrs", "_tracer", "_children", "_token")

    def __init__(self, name: str, attrs: dict) -> None:
        self._name = name
        self._attrs = attrs
        self._tracer: Optional[Tracer] = None
        self._children: Tuple[OpenSpan, ...] = ()
        self._token = None

    def __enter__(self) -> "_SpanScope":
        tracer = _ACTIVE
        if tracer is None:
            return self
        parents = _CONTEXT.get()
        if not parents:
            return self
        self._tracer = tracer
        self._children = tracer._open_children(
            self._name, parents, self._attrs
        )
        self._token = _CONTEXT.set(self._children)
        return self

    def set(self, **attrs: Any) -> "_SpanScope":
        for child in self._children:
            child.attrs.update(attrs)
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None
        if self._children:
            assert self._tracer is not None
            self._tracer._close(self._children)
            self._children = ()
        return False


class _RootScope:
    """Root scope: starts a fresh trace regardless of open parents."""

    __slots__ = ("_name", "_attrs", "_tracer", "_span", "_token")

    def __init__(self, name: str, attrs: dict) -> None:
        self._name = name
        self._attrs = attrs
        self._tracer: Optional[Tracer] = None
        self._span: Optional[OpenSpan] = None
        self._token = None

    def __enter__(self) -> "_RootScope":
        tracer = _ACTIVE
        if tracer is None:
            return self
        self._tracer = tracer
        self._span = tracer.start_root(self._name, **self._attrs)
        self._token = _CONTEXT.set((self._span,))
        return self

    def set(self, **attrs: Any) -> "_RootScope":
        if self._span is not None:
            self._span.attrs.update(attrs)
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None
        if self._span is not None:
            assert self._tracer is not None
            self._tracer._close((self._span,))
            self._span = None
        return False


class _AdoptScope:
    """Make the given already-open spans the current parents.

    The async front end's dispatch path uses this: the batch task adopts
    its member requests' root spans (opened at admission), so every
    span recorded during the batch lands in each member's tree.
    """

    __slots__ = ("_spans", "_token")

    def __init__(self, spans: Iterable[Optional[OpenSpan]]) -> None:
        self._spans = tuple(s for s in spans if s is not None)
        self._token = None

    def __enter__(self) -> "_AdoptScope":
        if self._spans:
            self._token = _CONTEXT.set(self._spans)
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None
        return False


def span(name: str, **attrs: Any):
    """A child scope under every open parent; records nothing when no
    tracer is installed *or* no parent is open (trees start at
    :func:`root` / :meth:`Tracer.start_root` only)."""
    if _ACTIVE is None:
        return _NOOP
    return _SpanScope(name, attrs)


def root(name: str, **attrs: Any):
    """A scope starting a brand-new trace (replay entry points)."""
    if _ACTIVE is None:
        return _NOOP
    return _RootScope(name, attrs)


def adopt(spans: Iterable[Optional[OpenSpan]]):
    """A scope installing ``spans`` as the open parents (``None``
    entries are skipped; empty means no-op)."""
    if _ACTIVE is None:
        return _NOOP
    return _AdoptScope(spans)
