"""Metrics registry: counters, gauges, fixed-bucket latency histograms.

Built for the same two constraints as the tracing half:

* **Cheap on the hot path.**  A disabled registry hands out shared
  no-op instruments, and the module seam (:func:`current_registry`)
  costs one global read — instrumentation points look the registry up
  once per replay/serve run, not per query.
* **Deterministic.**  The registry never reads wall time on its own;
  the injectable ``clock`` (pair it with
  :class:`repro.faults.VirtualClock`) only drives :meth:`MetricsRegistry.time`
  scopes, so recorded timings replay bit-identically under a virtual
  clock.

The existing per-layer stats objects (``ContainmentStats``,
``EngineStats``, ``ServeStats``, ``ReplicationStats``,
``BackendStats``) stay the source of truth — their snapshots are
*published* into the registry as gauges at well-defined points
(front-end close, replay end, ``Catalog.backend_stats``), which keeps
every pre-existing ``counters()``/``stats_snapshot()`` bit-identity
assertion untouched while giving one exportable surface.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install_registry",
    "current_registry",
]

Clock = Callable[[], float]

#: Upper bounds (seconds) for latency histograms — sub-millisecond
#: through multi-second, matching the replay tiers' observed range.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (published stats snapshots land here)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: cumulative-count exposition, exact
    ``sum``/``count``.  Bucket bounds are upper bounds; observations
    above the last bound land in the implicit ``+Inf`` bucket."""

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.counts[bisect.bisect_left(self.bounds, value)] += 1

    def snapshot(self) -> dict:
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,
            "count": self.count,
            "sum": self.total,
        }


class _NoopCounter:
    kind = "counter"
    __slots__ = ()
    name = "<noop>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge:
    kind = "gauge"
    __slots__ = ()
    name = "<noop>"
    value = 0

    def set(self, value: float) -> None:
        pass


class _NoopHistogram:
    kind = "histogram"
    __slots__ = ()
    name = "<noop>"
    bounds: Tuple[float, ...] = ()
    total = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"buckets": [], "count": 0, "sum": 0.0}


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class _Timer:
    __slots__ = ("_clock", "_histogram", "_start")

    def __init__(self, clock: Clock, histogram) -> None:
        self._clock = clock
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._histogram.observe(self._clock() - self._start)
        return False


class _NoopTimer:
    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_TIMER = _NoopTimer()


class MetricsRegistry:
    """Named instruments, get-or-create, insertion-ordered.

    Asking twice for the same name returns the same instrument; asking
    for an existing name with a different instrument kind raises
    ``ValueError`` (silent kind aliasing would corrupt exposition).
    """

    def __init__(
        self, clock: Optional[Clock] = None, enabled: bool = True
    ) -> None:
        self._clock: Clock = clock if clock is not None else time.monotonic
        self.enabled = enabled
        self._metrics: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NOOP_COUNTER
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NOOP_GAUGE
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        if not self.enabled:
            return _NOOP_HISTOGRAM
        bounds = DEFAULT_LATENCY_BUCKETS if buckets is None else buckets
        return self._get(name, "histogram", lambda: Histogram(name, bounds))

    def time(self, name: str, buckets: Optional[Sequence[float]] = None):
        """Context manager observing elapsed clock time into the named
        histogram."""
        if not self.enabled:
            return _NOOP_TIMER
        return _Timer(self._clock, self.histogram(name, buckets))

    # ------------------------------------------------------------------
    # Publishing existing stats snapshots
    # ------------------------------------------------------------------
    def publish(self, prefix: str, mapping: Mapping[str, Any]) -> None:
        """Flatten a (possibly nested) stats snapshot into gauges.

        Nested dicts recurse with dotted names; bools, lists and other
        non-numeric values are skipped — snapshots stay the source of
        truth for those.
        """
        if not self.enabled:
            return
        for key, value in mapping.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, Mapping):
                self.publish(name, value)
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            else:
                self.gauge(name).set(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(self._metrics.items())

    def snapshot(self) -> dict:
        """Plain-dict view: counters/gauges by value, histograms by
        their cumulative snapshot."""
        out: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if metric.kind == "histogram":
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out


# ----------------------------------------------------------------------
# Module seam
# ----------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def install_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install (or with ``None``, remove) the process registry; returns
    the previous one so callers can restore it."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def current_registry() -> Optional[MetricsRegistry]:
    return _REGISTRY
