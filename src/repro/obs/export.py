"""Exporters: Prometheus text exposition + JSONL trace export.

Both formats are deterministic for deterministic inputs: metric lines
sort by name, JSON payloads serialize with sorted keys and no float
formatting games — so exported artifacts diff cleanly between runs and
tests can compare them byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from .metrics import MetricsRegistry
from .tracing import SpanRecord, Tracer

__all__ = [
    "render_prometheus",
    "trace_lines",
    "export_traces_jsonl",
    "trace_structure",
]


def _exposition_name(name: str) -> str:
    """Dotted registry names → Prometheus-safe snake_case."""
    return name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (``# TYPE`` lines + samples)."""
    lines: list[str] = []
    for name, metric in sorted(registry.metrics()):
        exposed = _exposition_name(name)
        lines.append(f"# TYPE {exposed} {metric.kind}")
        if metric.kind == "histogram":
            running = 0
            for bound, count in zip(metric.bounds, metric.counts):
                running += count
                lines.append(
                    f'{exposed}_bucket{{le="{_format_value(bound)}"}} '
                    f"{running}"
                )
            lines.append(f'{exposed}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{exposed}_sum {_format_value(metric.total)}")
            lines.append(f"{exposed}_count {metric.count}")
        else:
            lines.append(f"{exposed} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _iter_records(
    source: Union[Tracer, Iterable[SpanRecord]]
) -> Iterable[SpanRecord]:
    if isinstance(source, Tracer):
        return source.records()
    return source


def trace_lines(
    source: Union[Tracer, Iterable[SpanRecord]],
    structure_only: bool = False,
) -> Iterator[str]:
    """One compact JSON object per closed span, in close order."""
    for record in _iter_records(source):
        payload = (
            record.structure() if structure_only else record.to_dict()
        )
        yield json.dumps(payload, sort_keys=True, separators=(",", ":"))


def export_traces_jsonl(
    source: Union[Tracer, Iterable[SpanRecord]],
    path: Union[str, Path],
    structure_only: bool = False,
) -> int:
    """Write the JSONL trace export; returns the span count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in trace_lines(source, structure_only=structure_only):
            handle.write(line + "\n")
            count += 1
    return count


def trace_structure(
    source: Union[Tracer, Iterable[SpanRecord]]
) -> list[dict]:
    """The timing-free skeleton — the byte-identity comparison surface
    for same-seed virtual-clock runs."""
    return [record.structure() for record in _iter_records(source)]
