"""Labeled tree nodes for XML documents.

The paper (Section 2.1) models an XML document as a rooted tree whose nodes
carry labels from an infinite alphabet Σ.  ``TNode`` is that node type.

Design notes
------------
* Nodes have **identity**: the result of applying a pattern to a tree is a
  *set of subtrees of that tree* (Section 2.1), and Proposition 2.4 states
  ``R ∘ V (t) = R(V(t))`` as equality of such sets.  Representing each
  subtree by its root node (compared by object identity) makes those sets
  directly comparable, which the test suite exploits.
* Nodes keep a parent pointer so that depth and ancestor queries — needed
  by weak-embedding semantics — are O(depth).
* Children are ordered only for deterministic serialization; all semantics
  in the paper are order-oblivious.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["TNode", "BOTTOM_LABEL"]

#: The special label ⊥ used when instantiating canonical models
#: (Section 2.1).  Patterns are assumed never to use this label.
BOTTOM_LABEL = "⊥"  # "⊥"


class TNode:
    """A node of an XML tree: a label, a parent pointer and children.

    Parameters
    ----------
    label:
        The node label (an element name, drawn from Σ).
    children:
        Optional iterable of child ``TNode`` objects; each is re-parented
        to this node.
    """

    __slots__ = ("label", "parent", "children", "__weakref__")

    def __init__(self, label: str, children: Iterable["TNode"] = ()):
        self.label = label
        self.parent: TNode | None = None
        self.children: list[TNode] = []
        for child in children:
            self.add_child(child)

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------
    def add_child(self, child: "TNode") -> "TNode":
        """Attach ``child`` as the last child of this node and return it.

        The child is detached from any previous parent first.
        """
        child.detach()
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, label: str) -> "TNode":
        """Create a fresh node with ``label``, attach it, and return it."""
        return self.add_child(TNode(label))

    def detach(self) -> "TNode":
        """Remove this node from its parent (making it a root); return self."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["TNode"]:
        """Yield this node and all of its descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # reversed() keeps pre-order left-to-right.
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["TNode"]:
        """Yield all proper descendants of this node, pre-order."""
        for child in self.children:
            yield from child.iter_subtree()

    def iter_ancestors(self) -> Iterator["TNode"]:
        """Yield proper ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "TNode") -> bool:
        """True if this node is a *proper* ancestor of ``other``."""
        return any(anc is self for anc in other.iter_ancestors())

    def root(self) -> "TNode":
        """Return the root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def depth(self) -> int:
        """Number of edges from the root of the containing tree to here."""
        return sum(1 for _ in self.iter_ancestors())

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_subtree())

    def height(self) -> int:
        """Maximal number of edges on a root-to-leaf path of this subtree."""
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    def labels(self) -> set[str]:
        """The set of labels occurring in the subtree rooted here."""
        return {node.label for node in self.iter_subtree()}

    # ------------------------------------------------------------------
    # Copying and structural comparison
    # ------------------------------------------------------------------
    def deep_copy(self) -> "TNode":
        """Return a structurally identical copy (fresh node identities)."""
        copy = TNode(self.label)
        for child in self.children:
            copy.add_child(child.deep_copy())
        return copy

    def structure_key(self) -> tuple:
        """A canonical, order-independent key of this subtree's structure.

        Two subtrees have equal keys iff they are isomorphic as unordered
        labeled trees.  Used to compare query *answers* structurally when
        node identity is not meaningful (e.g. across different documents).
        """
        child_keys = sorted(child.structure_key() for child in self.children)
        return (self.label, tuple(child_keys))

    def structurally_equal(self, other: "TNode") -> bool:
        """True if the two subtrees are isomorphic unordered labeled trees."""
        return self.structure_key() == other.structure_key()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TNode({self.label!r}, children={len(self.children)})"

    def render(self, indent: str = "") -> str:
        """ASCII-art rendering of the subtree rooted at this node."""
        lines = [f"{indent}{self.label}"]
        for child in self.children:
            lines.append(child.render(indent + "  "))
        return "\n".join(lines)
