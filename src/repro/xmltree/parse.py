"""Parsing and serializing XML documents.

The library models documents as label-only trees (the paper's data model
has no attributes or text, Section 2.1).  This module bridges to real XML:

* :func:`parse_xml` parses an XML string via the stdlib and keeps element
  tags as labels, dropping attributes and text (they are outside the
  paper's model).
* :func:`to_xml` serializes a tree back to XML text.
* :func:`parse_sexpr` / :func:`to_sexpr` provide a compact whitespace-free
  literal syntax ``a(b,c(d))`` used throughout the tests and examples.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..errors import DocumentSyntaxError
from .node import TNode
from .tree import XMLTree

__all__ = ["parse_xml", "to_xml", "parse_sexpr", "to_sexpr"]


def parse_xml(text: str) -> XMLTree:
    """Parse an XML document string into an :class:`XMLTree`.

    Element tags become node labels; attributes and character data are
    ignored (the paper's tree model is label-only).

    Raises
    ------
    DocumentSyntaxError
        If the text is not well-formed XML.
    """
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DocumentSyntaxError(f"malformed XML: {exc}") from exc
    return XMLTree(_node_from_element(element))


def _node_from_element(element: ET.Element) -> TNode:
    node = TNode(element.tag)
    for child in element:
        node.add_child(_node_from_element(child))
    return node


def to_xml(tree: XMLTree, indent: bool = False) -> str:
    """Serialize a tree to XML text.

    Parameters
    ----------
    tree:
        The document tree.
    indent:
        Pretty-print with two-space indentation when True.
    """
    if indent:
        return _element_to_pretty(tree.root, 0)
    return _element_to_compact(tree.root)


def _element_to_compact(node: TNode) -> str:
    if not node.children:
        return f"<{node.label}/>"
    inner = "".join(_element_to_compact(child) for child in node.children)
    return f"<{node.label}>{inner}</{node.label}>"


def _element_to_pretty(node: TNode, level: int) -> str:
    pad = "  " * level
    if not node.children:
        return f"{pad}<{node.label}/>"
    inner = "\n".join(_element_to_pretty(child, level + 1) for child in node.children)
    return f"{pad}<{node.label}>\n{inner}\n{pad}</{node.label}>"


# ----------------------------------------------------------------------
# Compact s-expression-ish literal syntax:  a(b,c(d))
# ----------------------------------------------------------------------

def parse_sexpr(text: str) -> XMLTree:
    """Parse the compact literal syntax ``label(child,child(...),...)``.

    Labels may contain any characters except ``(``, ``)``, ``,`` and
    whitespace.  Whitespace between tokens is ignored.

    Raises
    ------
    DocumentSyntaxError
        On malformed input.
    """
    parser = _SexprParser(text)
    node = parser.parse_node()
    parser.skip_ws()
    if not parser.at_end():
        raise DocumentSyntaxError(
            f"trailing characters at position {parser.pos} in {text!r}"
        )
    return XMLTree(node)


class _SexprParser:
    """Recursive-descent parser for the ``a(b,c(d))`` literal syntax."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while not self.at_end() and self.text[self.pos].isspace():
            self.pos += 1

    def parse_node(self) -> TNode:
        self.skip_ws()
        label = self._parse_label()
        node = TNode(label)
        self.skip_ws()
        if not self.at_end() and self.text[self.pos] == "(":
            self.pos += 1  # consume '('
            while True:
                node.add_child(self.parse_node())
                self.skip_ws()
                if self.at_end():
                    raise DocumentSyntaxError(
                        f"unclosed '(' in {self.text!r}"
                    )
                if self.text[self.pos] == ",":
                    self.pos += 1
                    continue
                if self.text[self.pos] == ")":
                    self.pos += 1
                    break
                raise DocumentSyntaxError(
                    f"expected ',' or ')' at position {self.pos} in {self.text!r}"
                )
        return node

    def _parse_label(self) -> str:
        start = self.pos
        while not self.at_end() and self.text[self.pos] not in "(),” \t\n":
            self.pos += 1
        if self.pos == start:
            raise DocumentSyntaxError(
                f"expected a label at position {start} in {self.text!r}"
            )
        return self.text[start : self.pos]


def to_sexpr(tree: XMLTree) -> str:
    """Serialize a tree to the compact ``a(b,c(d))`` literal syntax."""
    return _node_to_sexpr(tree.root)


def _node_to_sexpr(node: TNode) -> str:
    if not node.children:
        return node.label
    inner = ",".join(_node_to_sexpr(child) for child in node.children)
    return f"{node.label}({inner})"
