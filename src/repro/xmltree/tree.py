"""XML trees (documents) built from :class:`~repro.xmltree.node.TNode`.

An :class:`XMLTree` is a thin, convenient wrapper around a root node.  The
paper writes ``t`` for a tree, ``t^o_Δ`` for the subtree of ``t`` rooted at
node ``o``, and ``P(t)`` for the set of subtrees produced by embeddings of
``P`` in ``t`` — here subtrees are represented by their root nodes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .node import TNode

__all__ = ["XMLTree", "build_tree", "tree_from_tuples"]


class XMLTree:
    """A rooted, labeled tree representing an XML document.

    Parameters
    ----------
    root:
        The root :class:`TNode`.  It is detached from any previous parent.
    """

    __slots__ = ("root",)

    def __init__(self, root: TNode):
        root.detach()
        self.root = root

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, label: str) -> "XMLTree":
        """A tree consisting of a single node with the given label."""
        return cls(TNode(label))

    @classmethod
    def path(cls, labels: Iterable[str]) -> "XMLTree":
        """A tree that is a single downward path with the given labels."""
        labels = list(labels)
        if not labels:
            raise ValueError("XMLTree.path requires at least one label")
        root = TNode(labels[0])
        node = root
        for label in labels[1:]:
            node = node.new_child(label)
        return cls(root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[TNode]:
        """Iterate over all nodes, pre-order."""
        return self.root.iter_subtree()

    def size(self) -> int:
        """Number of nodes in the tree."""
        return self.root.size()

    def height(self) -> int:
        """Maximal number of edges on a root-to-leaf path."""
        return self.root.height()

    def labels(self) -> set[str]:
        """Set of labels used in the tree."""
        return self.root.labels()

    def find_all(self, predicate: Callable[[TNode], bool]) -> list[TNode]:
        """All nodes satisfying ``predicate``, in pre-order."""
        return [node for node in self.nodes() if predicate(node)]

    def find_by_label(self, label: str) -> list[TNode]:
        """All nodes carrying ``label``, in pre-order."""
        return self.find_all(lambda node: node.label == label)

    def subtree(self, node: TNode) -> "XMLTree":
        """A *copy* of the subtree of this tree rooted at ``node``.

        The paper's ``t^o_Δ``.  The copy has fresh node identities; use the
        node itself when identity-preserving subtree sets are needed.
        """
        return XMLTree(node.deep_copy())

    # ------------------------------------------------------------------
    # Comparison / rendering
    # ------------------------------------------------------------------
    def structure_key(self) -> tuple:
        """Canonical key; equal keys iff isomorphic unordered labeled trees."""
        return self.root.structure_key()

    def structurally_equal(self, other: "XMLTree") -> bool:
        """Isomorphism of unordered labeled trees."""
        return self.structure_key() == other.structure_key()

    def copy(self) -> "XMLTree":
        """Deep copy with fresh node identities."""
        return XMLTree(self.root.deep_copy())

    def render(self) -> str:
        """ASCII-art rendering of the document tree."""
        return self.root.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XMLTree(size={self.size()}, root={self.root.label!r})"


def build_tree(spec: dict | str) -> XMLTree:
    """Build a tree from a nested ``dict``/``str`` literal.

    The spec format is ``{label: [child_spec, ...]}`` with a bare string
    meaning a leaf.  Example::

        build_tree({"a": ["b", {"c": ["d"]}]})

    produces the tree ``a(b, c(d))``.
    """
    return XMLTree(_node_from_spec(spec))


def _node_from_spec(spec: dict | str) -> TNode:
    if isinstance(spec, str):
        return TNode(spec)
    if isinstance(spec, dict):
        if len(spec) != 1:
            raise ValueError(f"tree spec dict must have exactly one key: {spec!r}")
        ((label, children),) = spec.items()
        node = TNode(label)
        for child_spec in children:
            node.add_child(_node_from_spec(child_spec))
        return node
    raise TypeError(f"unsupported tree spec: {spec!r}")


def tree_from_tuples(spec: tuple) -> XMLTree:
    """Build a tree from nested tuples ``(label, child, child, ...)``.

    A bare string is a leaf.  Example::

        tree_from_tuples(("a", "b", ("c", "d")))
    """
    return XMLTree(_node_from_tuple(spec))


def _node_from_tuple(spec: tuple | str) -> TNode:
    if isinstance(spec, str):
        return TNode(spec)
    label, *children = spec
    node = TNode(label)
    for child_spec in children:
        node.add_child(_node_from_tuple(child_spec))
    return node
