"""Random XML document generators.

The paper evaluates no datasets (it is a theory paper), but its motivating
scenarios — query caching and answering queries over materialized views
([3, 5, 13, 18] in the paper) — concern document-oriented and
bibliography-like XML.  These generators produce synthetic documents that
exercise the same code paths:

* :func:`random_tree` — uniform random trees with configurable size,
  branching and alphabet (the workhorse for property-based tests).
* :func:`dblp_like` — a bibliography-shaped document (``dblp`` root with
  ``article``/``inproceedings`` entries and author/title/year children),
  mirroring the classic DBLP XML shape.
* :func:`xmark_like` — an auction-site-shaped document following the XMark
  benchmark schema skeleton (regions/items/people/auctions).

All generators accept a seeded :class:`random.Random` (or a seed) so that
workloads are reproducible.
"""

from __future__ import annotations

import random as _random
from typing import Sequence

from .node import TNode
from .tree import XMLTree

__all__ = [
    "random_tree",
    "random_forest",
    "dblp_like",
    "xmark_like",
    "deep_path_tree",
]


def _rng(seed_or_rng: int | _random.Random | None) -> _random.Random:
    if isinstance(seed_or_rng, _random.Random):
        return seed_or_rng
    return _random.Random(seed_or_rng)


DEFAULT_ALPHABET: tuple[str, ...] = ("a", "b", "c", "d", "e")


def random_tree(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    max_children: int = 4,
    seed: int | _random.Random | None = None,
    root_label: str | None = None,
) -> XMLTree:
    """Generate a uniform random tree with exactly ``size`` nodes.

    Nodes are attached to a random existing node whose child count is
    below ``max_children`` (falling back to any node if all are full),
    which yields bushy-but-bounded shapes similar to real documents.

    Parameters
    ----------
    size:
        Total node count (≥ 1).
    alphabet:
        Labels are drawn uniformly from this alphabet.
    max_children:
        Soft bound on the branching factor.
    seed:
        Seed or ``random.Random`` instance for reproducibility.
    root_label:
        Fixed root label; random when None.
    """
    if size < 1:
        raise ValueError("random_tree requires size >= 1")
    rng = _rng(seed)
    root = TNode(root_label if root_label is not None else rng.choice(list(alphabet)))
    nodes = [root]
    for _ in range(size - 1):
        open_nodes = [n for n in nodes if len(n.children) < max_children]
        parent = rng.choice(open_nodes if open_nodes else nodes)
        child = parent.new_child(rng.choice(list(alphabet)))
        nodes.append(child)
    return XMLTree(root)


def random_forest(
    count: int,
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    max_children: int = 4,
    seed: int | _random.Random | None = None,
) -> list[XMLTree]:
    """Generate ``count`` independent random trees (shared RNG stream)."""
    rng = _rng(seed)
    return [
        random_tree(size, alphabet=alphabet, max_children=max_children, seed=rng)
        for _ in range(count)
    ]


def deep_path_tree(
    depth: int,
    label: str = "a",
    tail_label: str | None = None,
    seed: int | _random.Random | None = None,
    alphabet: Sequence[str] | None = None,
) -> XMLTree:
    """A single path of ``depth`` edges; useful for descendant-edge tests.

    When ``alphabet`` is given, interior labels are drawn randomly from it;
    otherwise every node is labeled ``label``.  ``tail_label`` overrides
    the final (deepest) node's label.
    """
    rng = _rng(seed)
    root = TNode(label if alphabet is None else rng.choice(list(alphabet)))
    node = root
    for _ in range(depth):
        next_label = label if alphabet is None else rng.choice(list(alphabet))
        node = node.new_child(next_label)
    if tail_label is not None:
        node.label = tail_label
    return XMLTree(root)


# ----------------------------------------------------------------------
# DBLP-like bibliography documents
# ----------------------------------------------------------------------

_DBLP_ENTRY_KINDS = ("article", "inproceedings", "book", "phdthesis")


def dblp_like(
    entries: int = 50,
    seed: int | _random.Random | None = None,
) -> XMLTree:
    """A bibliography-shaped document: ``dblp`` with publication entries.

    Each entry has 1–4 ``author`` children (each with a ``name`` child),
    a ``title``, a ``year`` and, with some probability, ``pages``,
    ``journal``/``booktitle`` and ``ee`` children — enough structure for
    branch-and-wildcard queries like ``dblp/*[author]//title``.
    """
    rng = _rng(seed)
    root = TNode("dblp")
    for _ in range(entries):
        entry = root.new_child(rng.choice(_DBLP_ENTRY_KINDS))
        for _ in range(rng.randint(1, 4)):
            author = entry.new_child("author")
            author.new_child("name")
        entry.new_child("title")
        entry.new_child("year")
        if rng.random() < 0.6:
            entry.new_child("pages")
        if entry.label == "article" and rng.random() < 0.9:
            entry.new_child("journal")
        if entry.label == "inproceedings" and rng.random() < 0.9:
            entry.new_child("booktitle")
        if rng.random() < 0.5:
            ee = entry.new_child("ee")
            ee.new_child("url")
    return XMLTree(root)


# ----------------------------------------------------------------------
# XMark-like auction documents
# ----------------------------------------------------------------------

def xmark_like(
    items: int = 20,
    people: int = 10,
    auctions: int = 10,
    seed: int | _random.Random | None = None,
) -> XMLTree:
    """An auction-site-shaped document following the XMark skeleton.

    ``site`` → ``regions`` (with continent subdivisions holding ``item``
    entries), ``people`` (with ``person`` entries carrying profiles), and
    ``open_auctions`` (with ``open_auction`` entries carrying bidders).
    """
    rng = _rng(seed)
    root = TNode("site")

    regions = root.new_child("regions")
    continents = [regions.new_child(c) for c in ("africa", "asia", "europe")]
    for _ in range(items):
        item = rng.choice(continents).new_child("item")
        item.new_child("name")
        item.new_child("location")
        description = item.new_child("description")
        for _ in range(rng.randint(1, 3)):
            para = description.new_child("parlist")
            para.new_child("listitem")
        if rng.random() < 0.5:
            item.new_child("mailbox")

    people_el = root.new_child("people")
    for _ in range(people):
        person = people_el.new_child("person")
        person.new_child("name")
        person.new_child("emailaddress")
        if rng.random() < 0.7:
            profile = person.new_child("profile")
            profile.new_child("interest")
            if rng.random() < 0.5:
                profile.new_child("education")
        if rng.random() < 0.4:
            address = person.new_child("address")
            address.new_child("city")
            address.new_child("country")

    open_auctions = root.new_child("open_auctions")
    for _ in range(auctions):
        auction = open_auctions.new_child("open_auction")
        auction.new_child("initial")
        for _ in range(rng.randint(0, 4)):
            bidder = auction.new_child("bidder")
            bidder.new_child("date")
            bidder.new_child("increase")
        auction.new_child("quantity")
        auction.new_child("itemref")

    return XMLTree(root)
