"""XML document substrate: labeled rooted trees (paper Section 2.1).

Public surface:

* :class:`TNode` — labeled tree node with identity.
* :class:`XMLTree` — a rooted document tree.
* :func:`build_tree` / :func:`tree_from_tuples` — literal constructors.
* :func:`parse_xml` / :func:`to_xml` — stdlib-backed XML text round-trip.
* :func:`parse_sexpr` / :func:`to_sexpr` — compact ``a(b,c(d))`` syntax.
* Generators: :func:`random_tree`, :func:`dblp_like`, :func:`xmark_like`…
"""

from .node import BOTTOM_LABEL, TNode
from .tree import XMLTree, build_tree, tree_from_tuples
from .parse import parse_sexpr, parse_xml, to_sexpr, to_xml
from .generate import (
    deep_path_tree,
    dblp_like,
    random_forest,
    random_tree,
    xmark_like,
)

__all__ = [
    "BOTTOM_LABEL",
    "TNode",
    "XMLTree",
    "build_tree",
    "tree_from_tuples",
    "parse_xml",
    "to_xml",
    "parse_sexpr",
    "to_sexpr",
    "random_tree",
    "random_forest",
    "deep_path_tree",
    "dblp_like",
    "xmark_like",
]
