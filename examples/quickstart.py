"""Quickstart: rewrite an XPath query using a materialized view.

Run:  python examples/quickstart.py

Walks the full pipeline of the paper on the Figure 1/2 instance:
parse a query ``P`` and a view ``V``, ask the solver for an equivalent
rewriting ``R`` (``R ∘ V ≡ P``), then check Proposition 2.4 concretely:
``R(V(t)) = P(t)`` on an actual document.
"""

from repro import (
    compose,
    equivalent,
    evaluate,
    evaluate_forest,
    find_rewriting,
    parse_pattern,
    parse_sexpr,
    to_xpath,
)


def main() -> None:
    # The paper's Figure 1/2 instance (reconstruction).
    query = parse_pattern("a[b]//*/e[d]")
    view = parse_pattern("a[b]/*")
    print(f"query P = {to_xpath(query)}")
    print(f"view  V = {to_xpath(view)}")

    # 1. Decide rewriting existence (Sections 4-5 of the paper).
    result = find_rewriting(query, view)
    print(f"\nsolver status : {result.status.value}")
    print(f"decisive rule : {result.rule}")
    print(f"equivalence tests used: {result.equivalence_tests}")
    rewriting = result.rewriting
    print(f"rewriting R   = {to_xpath(rewriting)}")

    # 2. The defining equation R ∘ V ≡ P.
    composition = compose(rewriting, view)
    print(f"\nR ∘ V = {to_xpath(composition)}")
    print(f"R ∘ V ≡ P: {equivalent(composition, query)}")

    # 3. Proposition 2.4 on a concrete document.
    document = parse_sexpr("a(b,x(y(e(d),q),e(d)),z(e))")
    print("\ndocument t:")
    print(document.render())

    direct = evaluate(query, document)
    materialized = evaluate(view, document)  # V(t), stored once
    via_view = evaluate_forest(rewriting, materialized)  # R(V(t))

    print(f"\n|V(t)| = {len(materialized)} stored subtrees")
    print(f"P(t)    = {sorted(node.label for node in direct)}")
    print(f"R(V(t)) = {sorted(node.label for node in via_view)}")
    print(f"R(V(t)) == P(t): {via_view == direct}")


if __name__ == "__main__":
    main()
