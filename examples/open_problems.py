"""Beyond equivalent rewritings: the paper's §6 open problems, bounded.

Run:  python examples/open_problems.py

Demonstrates the library's bounded take on three extensions the paper
leaves open:

* problem 3 — *maximally contained rewritings*: when no equivalent
  rewriting exists, sound-but-partial view answers still may;
* problem 4 — *view selection*: pick views for a frequent-query
  workload (greedy, solver-backed);
* problem 5 — *rewriting using multiple views*: equivalent union
  rewritings ``∪ Ri(Vi(t)) = P(t)``.
"""

from repro import compose, contains, evaluate, evaluate_forest, parse_pattern, to_xpath
from repro.core.contained import contained_rewritings, find_union_rewriting
from repro.core.rewrite import find_rewriting
from repro.views.advisor import advise_views
from repro.xmltree.generate import dblp_like
from repro.xmltree.parse import parse_sexpr


def contained_demo() -> None:
    print("== open problem 3: maximally contained rewritings")
    query = parse_pattern("a//e/d")
    view = parse_pattern("a/*")
    decision = find_rewriting(query, view)
    print(f"P = {to_xpath(query)}, V = {to_xpath(view)}")
    print(f"equivalent rewriting: {decision.status.value} ({decision.rule})")
    for rewriting in contained_rewritings(query, view):
        composition = compose(rewriting, view)
        print(
            f"maximal contained rewriting R = {to_xpath(rewriting)}; "
            f"R∘V = {to_xpath(composition)} ⊑ P: "
            f"{contains(composition, query)}"
        )
    print()


def union_demo() -> None:
    print("== open problem 5: rewriting using multiple views")
    query = parse_pattern("a/b/x")
    views = [("v1", parse_pattern("a/b")), ("v2", parse_pattern("a/c"))]
    result = find_union_rewriting(query, views)
    print(f"P = {to_xpath(query)}, views = "
          f"{[(n, to_xpath(v)) for n, v in views]}")
    assert result is not None
    for name, rewriting in result.parts:
        print(f"  part: {name} with R = {to_xpath(rewriting)}")
    doc = parse_sexpr("a(b(x,y),c(x),b(x))")
    view_patterns = dict(views)
    answer = set()
    for name, rewriting in result.parts:
        forest = evaluate(view_patterns[name], doc)
        answer |= evaluate_forest(rewriting, forest)
    direct = evaluate(query, doc)
    print(f"union answers == P(t): {answer == direct} "
          f"({len(answer)} nodes)")
    print()


def advisor_demo() -> None:
    print("== open problem 4: view selection for a workload")
    workload = [
        parse_pattern("dblp/article[author]/title"),
        parse_pattern("dblp/article[author]/year"),
        parse_pattern("dblp/inproceedings/title"),
        parse_pattern("dblp/article[author]/author/name"),
    ]
    weights = [10.0, 5.0, 3.0, 1.0]
    sample = dblp_like(entries=40, seed=3)
    result = advise_views(workload, weights=weights, max_views=2, sample=sample)
    print(f"sample document: {sample.size()} nodes; budget: 2 views")
    for index, view in enumerate(result.views):
        queries = sorted(view.covered)
        print(f"  view {index}: {to_xpath(view.pattern)} "
              f"(stores ~{view.cost:.0f} nodes, answers queries {queries})")
    print(f"uncovered queries: {result.uncovered or 'none'}")


def main() -> None:
    contained_demo()
    union_demo()
    advisor_demo()


if __name__ == "__main__":
    main()
