"""Answering bibliography queries from materialized views.

Run:  python examples/bibliography_views.py

The paper's information-integration motivation, concretely: a DBLP-like
document is large; a view materializes the publication entries once, and
subsequent queries are answered from the view via equivalent rewritings
— never touching the document again.  The planner picks the cheapest
usable view per query.
"""

import time

from repro import evaluate, parse_pattern, to_xpath
from repro.views import QueryEngine, ViewStore
from repro.xmltree.generate import dblp_like


QUERIES = [
    "dblp/article[author]/title",
    "dblp/article[author]/year",
    "dblp/article[journal]/author/name",
    "dblp/*[author]/title",
    "dblp/inproceedings[booktitle]/title",
]


def main() -> None:
    document = dblp_like(entries=400, seed=42)
    print(f"document: {document.size()} nodes")

    store = ViewStore()
    store.add_document("bib", document)
    store.define_view("articles", parse_pattern("dblp/article[author]"))
    store.define_view("inproc", parse_pattern("dblp/inproceedings"))
    store.define_view("entries", parse_pattern("dblp/*[author]"))
    for view in store.views():
        print(f"view {view.name:<9} = {to_xpath(view.pattern):<28} "
              f"({view.answer_count('bib')} stored answers)")

    engine = QueryEngine(store)
    print()
    for text in QUERIES:
        query = parse_pattern(text)
        plan = engine.plan(query, "bib")

        start = time.perf_counter()
        direct = evaluate(query, document)
        direct_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        answer = engine.answer(query, "bib")
        engine_ms = (time.perf_counter() - start) * 1e3

        assert answer == direct, "Prop 2.4 violated?!"
        via = plan.view_name if plan.kind == "view" else "direct scan"
        rewriting = to_xpath(plan.rewriting) if plan.rewriting else "-"
        print(
            f"{text:<38} -> {via:<11} R = {rewriting:<22} "
            f"|answer| = {len(answer):>3}   direct {direct_ms:6.2f} ms, "
            f"engine {engine_ms:6.2f} ms"
        )

    stats = engine.stats
    print(
        f"\nengine stats: {stats.view_answers} view-based answers, "
        f"{stats.direct_answers} direct, "
        f"{stats.rewrites_found}/{stats.rewrites_attempted} rewrites found"
    )


if __name__ == "__main__":
    main()
