"""A semantic query cache driven by a realistic query stream.

Run:  python examples/query_cache.py

Reproduces the scenario of the caching systems the paper cites ([3, 5,
13, 18]): queries arrive with temporal locality; each answered query is
kept as a materialized view; a new query is served from the cache when
it has an *equivalent rewriting* over a cached view — the sound and
complete criterion this paper's algorithms provide.
"""

from repro import evaluate
from repro.views import ViewCache
from repro.workloads import StreamConfig, query_stream
from repro.xmltree.generate import xmark_like


def main() -> None:
    document = xmark_like(items=150, people=80, auctions=80, seed=9)
    print(f"document: {document.size()} nodes (XMark-like auction site)")

    stream = query_stream(
        StreamConfig(length=120, templates=8, repeat_prob=0.45, specialize_prob=0.35),
        seed=10,
    )
    print(f"stream: {len(stream)} queries "
          f"({len({q.canonical_key() for q in stream})} distinct)")

    for capacity in (4, 16):
        cache = ViewCache(document, capacity=capacity)
        for query in stream:
            answer = cache.query(query)
            # The cache must agree with direct evaluation, always.
            assert answer == evaluate(query, document)
        stats = cache.stats
        print(
            f"capacity {capacity:>3}: hit ratio {stats.hit_ratio:5.2f} "
            f"({stats.hits} hits / {stats.misses} misses, "
            f"{stats.evictions} evictions, "
            f"{stats.rewrite_attempts} rewrite checks)"
        )


if __name__ == "__main__":
    main()
