"""Workload replay: advisor-warmed views serving a query stream.

The paper's motivating scenario (§1, §2.4): a stream of queries with
temporal locality hits a server that keeps materialized views, and every
query that can be *equivalently rewritten* over a view is answered from
the (much smaller) stored forest instead of the document.

This example builds the whole pipeline:

1. generate a document and a seeded query stream (Zipf-weighted
   templates, specializations, fresh queries);
2. ask the batched view advisor for a view set over the stream's
   template pool — no per-pair solver calls, scoring runs through
   ``ContainmentBatch`` and the cross-call engine LRU;
3. replay the stream through the ``QueryEngine`` and report throughput,
   plan mix, and cache effectiveness;
4. verify every answer against direct evaluation (Proposition 2.4 says
   they must be equal — the example asserts it);
5. replay again through a *disk-backed* store (cold run saves the
   materializations, warm run loads them — counters bit-identical) and
   through the batched ``answer_many`` front end.

Run with:  PYTHONPATH=src python examples/workload_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.views.advisor import advise_views
from repro.workloads.replay import ReplayConfig, replay_workload
from repro.workloads.streams import StreamConfig, sample_stream

STREAM = StreamConfig(length=300, templates=8, repeat_prob=0.5, specialize_prob=0.3)
SEED = 2026


def main() -> None:
    print("=" * 64)
    print("Workload replay: answering a query stream from advised views")
    print("=" * 64)

    sample = sample_stream(STREAM, seed=SEED)
    counts = sample.kind_counts()
    print(
        f"\nstream: {STREAM.length} queries over {STREAM.templates} templates "
        f"({counts['repeat']} repeats, {counts['specialize']} specializations, "
        f"{counts['fresh']} fresh)"
    )

    # What would the advisor pick for this stream's template pool?
    advice = advise_views(
        sample.templates, weights=sample.template_weights(), max_views=4
    )
    print(f"\nadvisor candidates considered: {advice.stats.candidates}")
    print(f"advisor solver calls on scoring path: {advice.stats.solver_calls}")
    assert advice.stats.solver_calls == 0, "batched scoring must not call the solver"
    for view in advice.views:
        print(f"  view {view.pattern!r} covers templates {sorted(view.covered)}")

    # End-to-end replay with verification against direct evaluation.
    config = ReplayConfig(stream=STREAM, document_size=400, max_views=4, verify=True)
    report = replay_workload(config, seed=SEED)
    print("\n" + report.summary())

    assert report.queries == STREAM.length
    assert report.verified_mismatches == 0, "Prop 2.4 violated?!"
    assert report.view_plans > 0, "expected some queries to be view-answerable"
    print(
        f"\nall {report.queries} replayed answers matched direct evaluation "
        "(Proposition 2.4 end to end)."
    )

    # Persistent serving: the cold run evaluates and snapshots every
    # advised view; the warm run loads them from disk — and must be
    # indistinguishable in every deterministic counter.
    print("\n--- persistent store (cold vs warm) ---")
    with tempfile.TemporaryDirectory() as tmp:
        durable = ReplayConfig(
            stream=STREAM,
            document_size=400,
            max_views=4,
            persist_path=Path(tmp) / "views.snapshot.jsonl",
        )
        cold = replay_workload(durable, seed=SEED)
        warm = replay_workload(durable, seed=SEED)
        print(
            f"cold run saved {cold.backend['saves']} views; "
            f"warm run loaded {warm.backend['hits']} from the snapshot log"
        )
        assert cold.backend["saves"] > 0 and warm.backend["hits"] > 0
        assert warm.counters() == report.counters() == cold.counters()
        print("warm-store counters are bit-identical to the in-memory run.")

    # Batched serving: duplicate queries inside each batch are planned
    # and executed once (QueryEngine.answer_many).
    batched = replay_workload(
        ReplayConfig(stream=STREAM, document_size=400, max_views=4, batch_size=32),
        seed=SEED,
    )
    print(
        f"\nbatched replay: {batched.batches} batches folded "
        f"{batched.folded_queries} duplicate queries "
        f"({batched.queries_per_sec:,.0f} q/s)"
    )
    assert batched.answers_total == report.answers_total


if __name__ == "__main__":
    main()
