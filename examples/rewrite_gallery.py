"""A gallery of rewriting decisions across the paper's case analysis.

Run:  python examples/rewrite_gallery.py

Feeds the solver a spectrum of (query, view) instances — one per
theorem/corollary of Sections 4–5 plus the degenerate and open cases —
and prints the decision, the decisive rule and the derivation trace.
"""

from repro import find_rewriting, parse_pattern, to_xpath
from repro.core.rewrite import RewriteSolver

GALLERY = [
    ("natural candidate hit", "a/b[x]/c", "a/b"),
    ("relaxed candidate hit (Fig 2)", "a[b]//*/e[d]", "a[b]/*"),
    ("Prop 3.1 depth refutation", "a/b", "a/b/c"),
    ("Prop 3.1 label refutation", "a/b/c/d", "a/x/y"),
    ("wildcard k-node refutation", "a/*/c", "a/b"),
    ("Thm 4.3 (stable sub-query)", "a//e/d", "a/*"),
    ("Thm 4.4 (child-edge prefix)", "a/*/c", "a/*[x]"),
    ("Thm 4.9 (// into out(V))", "a//*/*", "a//*[x]"),
    ("Thm 4.10 (child-edge view)", "a//*/e", "a/*[x]"),
    ("Thm 4.16 (corresponding //)", "a/*//*[e]/*/e", "a/*//*/*"),
    ("Cor 5.7 (ignore upper //)", "a//*[e]/*/*/e", "a/*//*/*"),
    ("§5.3 lift at a Σ-label", "a/*//*[e]/*/c//e", "a/*//*/*"),
    ("open case (no certificate)", "a//*[e]/*[e]/*//e", "a/*//*/*"),
]


def main() -> None:
    solver = RewriteSolver(fallback_extra_nodes=1)
    for title, query_text, view_text in GALLERY:
        query = parse_pattern(query_text)
        view = parse_pattern(view_text)
        result = solver.solve(query, view)
        rewriting = to_xpath(result.rewriting) if result.rewriting else "-"
        print(f"== {title}")
        print(f"   P = {query_text:<24} V = {view_text}")
        print(f"   -> {result.status.value:<14} rule: {result.rule}")
        if result.found:
            print(f"   -> R = {rewriting}")
        for line in result.trace:
            print(f"      . {line}")
        print()


if __name__ == "__main__":
    main()
