"""Walk through the paper's Figures 1–4 with rendered patterns.

Run:  python examples/paper_figures.py

Builds each figure's patterns, renders them as ASCII trees, and runs the
machine verification of every claim the paper makes about them.
"""

from repro.figures import fig1, fig2, fig3, fig4
from repro.patterns.serialize import to_xpath


def show_figure(module, highlight: list[str]) -> None:
    report = module.verify()
    print("=" * 66)
    print(report.summary())
    for name in highlight:
        pattern = report.patterns[name]
        print(f"\n{name} = {to_xpath(pattern)}")
        print(pattern.render())
    print()


def main() -> None:
    show_figure(fig1, ["P", "V", "R∘V"])
    show_figure(fig2, ["P≥1", "P≥1_r//"])
    show_figure(fig3, ["B", "B_r//"])
    show_figure(fig4, ["V", "P2", "(P2+µ)^{4→}"])

    failures = [
        report.figure
        for report in (fig1.verify(), fig2.verify(), fig3.verify(), fig4.verify())
        if not report.ok
    ]
    if failures:
        raise SystemExit(f"figure verification failed: {failures}")
    print("All four figures verified.")


if __name__ == "__main__":
    main()
