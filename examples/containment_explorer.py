"""Explore the containment landscape of ``XP{//,[],*}``.

Run:  python examples/containment_explorer.py

Shows, on curated pattern pairs:

* the homomorphism test (PTIME, sound, incomplete in general),
* the canonical-model decision procedure (complete, coNP),
* the word-automaton engine for linear patterns, and
* concrete counterexample trees when containment fails.

The star of the show is the classic pair ``a//*/e ⊑ a/*//e`` — true
containment with *no* homomorphism — which is why the full fragment's
rewriting problem is hard.
"""

from repro.baselines import linear_containment
from repro.core.canonical import canonical_models, star_length
from repro.core.containment import canonical_containment, hom_exists
from repro.core.oracle import find_counterexample
from repro.patterns.parse import parse_pattern
from repro.xmltree.parse import to_sexpr

PAIRS = [
    ("a/b", "a//b"),
    ("a//b", "a/b"),
    ("a//*/e", "a/*//e"),
    ("a/*//e", "a//*/e"),
    ("a[b]/*//c", "a//c"),
    ("a//c", "a[b]/*//c"),
    ("a[b][c]/d", "a[c]/d"),
]


def main() -> None:
    print(f"{'P1':<12} {'P2':<12} {'hom':<6} {'canonical':<10} {'linear':<8}")
    print("-" * 56)
    for left_text, right_text in PAIRS:
        left = parse_pattern(left_text)
        right = parse_pattern(right_text)
        hom = hom_exists(right, left)
        decided = canonical_containment(left, right)
        if left.is_linear() and right.is_linear() and (
            left.size() == left.depth + 1 and right.size() == right.depth + 1
        ):
            linear = str(linear_containment(left, right))
        else:
            linear = "n/a"
        print(f"{left_text:<12} {right_text:<12} {str(hom):<6} "
              f"{str(decided):<10} {linear:<8}")
        if hom != decided and decided:
            print("             ^ containment WITHOUT a homomorphism")
        if not decided:
            witness = find_counterexample(left, right, max_size=5)
            if witness is not None:
                tree, node = witness
                print(f"             counterexample tree: {to_sexpr(tree)} "
                      f"(output {node.label!r} escapes P2)")

    # Peek inside the coNP machinery.
    pattern = parse_pattern("a//b//c")
    container = parse_pattern("a/*/*//c")
    bound = star_length(container) + 2
    models = list(canonical_models(pattern, bound))
    print(f"\ncanonical models of {pattern!r} with expansions ≤ {bound}: "
          f"{len(models)}")
    for model in models[:4]:
        print(f"  {to_sexpr(model.tree)}")
    print("  ...")


if __name__ == "__main__":
    main()
