PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-check bench-containment bench-replay bench-catalog bench-all docs-check

## Tier-1 test suite (the driver's gate).
test:
	$(PYTHON) -m pytest -x -q

## Quick suite: deselects the long-running Hypothesis property suites
## and the process-spawning multicore suite.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not multicore"

## Aggregate: every recorded benchmark JSON at the repo root.
## Compare the JSONs against the committed baselines before/after a PR.
bench: bench-containment bench-replay bench-catalog

## Perf guard: records ops/sec + speedup-vs-seed to BENCH_containment.json.
bench-containment:
	$(PYTHON) benchmarks/bench_perf_guard.py

## Regression gate: re-measures and exits non-zero if any number falls
## below the floors committed in BENCH_containment.json (never rewrites).
bench-check:
	$(PYTHON) benchmarks/bench_perf_guard.py --check

## Workload replay + batched advisor: records queries/sec and the
## batched-vs-solver advisor speedup to BENCH_replay.json.
bench-replay:
	$(PYTHON) benchmarks/bench_replay.py

## Catalog subsystem: records warm-start speedup, replay bit-identity
## and sharded-serving throughput to BENCH_catalog.json.
bench-catalog:
	$(PYTHON) benchmarks/bench_catalog.py

## Full paper-claims benchmark battery (pytest-benchmark based).
bench-all:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

## Documentation drift guard: executes every README code block.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q
