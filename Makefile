PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-unit test-fast test-soak lint bench bench-check bench-containment bench-replay bench-catalog bench-all docs-check

## Full local gate: lint, the tier-1 suite, docs drift, and the
## benchmark floors (perf + view-plan ratios) — everything a PR must
## keep green.
test: lint test-unit docs-check bench-check

## Tier-1 test suite alone (the driver's gate).
test-unit:
	$(PYTHON) -m pytest -x -q

## Quick suite: deselects the long-running Hypothesis property suites,
## the process-spawning multicore suite, the serving-tier /
## fault-injection suites (PR 8), and the replicated read-tier suites
## (PR 9).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not multicore and not async_serve and not faultinject and not replica"

## Soak: sweep the open-loop serving replay over many seeds, asserting
## answer bit-identity per seed.  SOAK_SEEDS sets the sweep width
## (default 2 keeps the tier-1 run fast; CI can raise it).
test-soak:
	SOAK_SEEDS=8 $(PYTHON) -m pytest tests/test_serve_async.py -q -m soak

## Exception-handler hygiene: no bare except / swallowed interrupts
## (stdlib AST checker; the container has no ruff).
lint:
	$(PYTHON) tools/lint_exceptions.py

## Aggregate: every recorded benchmark JSON at the repo root.
## Compare the JSONs against the committed baselines before/after a PR.
bench: bench-containment bench-replay bench-catalog

## Perf guard: records ops/sec + speedup-vs-seed to BENCH_containment.json.
bench-containment:
	$(PYTHON) benchmarks/bench_perf_guard.py

## Regression gate: re-measures and exits non-zero if any number falls
## below the floors committed in the BENCH JSONs (never rewrites them).
## Two halves: perf floors (ops/sec) and deterministic view-plan-ratio
## floors (planning coverage).
bench-check:
	$(PYTHON) benchmarks/bench_perf_guard.py --check
	$(PYTHON) benchmarks/bench_ratio_guard.py

## Workload replay + batched advisor: records queries/sec and the
## batched-vs-solver advisor speedup to BENCH_replay.json.
bench-replay:
	$(PYTHON) benchmarks/bench_replay.py

## Catalog subsystem: records warm-start speedup, replay bit-identity
## and sharded-serving throughput to BENCH_catalog.json.
bench-catalog:
	$(PYTHON) benchmarks/bench_catalog.py

## Full paper-claims benchmark battery (pytest-benchmark based).
bench-all:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

## Documentation drift guard: executes every README code block.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q
