PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-replay bench-all docs-check

## Tier-1 test suite (the driver's gate).
test:
	$(PYTHON) -m pytest -x -q

## Quick suite: deselects the long-running Hypothesis property suites.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Perf guard: records ops/sec + speedup-vs-seed to BENCH_containment.json.
## Compare the JSON against the committed baseline before/after a PR.
bench:
	$(PYTHON) benchmarks/bench_perf_guard.py

## Workload replay + batched advisor: records queries/sec and the
## batched-vs-solver advisor speedup to BENCH_replay.json.
bench-replay:
	$(PYTHON) benchmarks/bench_replay.py

## Full paper-claims benchmark battery (pytest-benchmark based).
bench-all:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

## Documentation drift guard: executes every README code block.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q
