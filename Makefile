PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-all

## Tier-1 test suite (the driver's gate).
test:
	$(PYTHON) -m pytest -x -q

## Perf guard: records ops/sec + speedup-vs-seed to BENCH_containment.json.
## Compare the JSON against the committed baseline before/after a PR.
bench:
	$(PYTHON) benchmarks/bench_perf_guard.py

## Full paper-claims benchmark battery (pytest-benchmark based).
bench-all:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q
