"""Unit tests for canonical models (paper Section 2.1 and [14])."""

from __future__ import annotations

import pytest

from repro.core.canonical import (
    canonical_models,
    count_canonical_models,
    star_length,
    tau,
)
from repro.core.embedding import is_model
from repro.errors import EmptyPatternError
from repro.patterns.ast import Pattern
from repro.patterns.parse import parse_pattern
from repro.xmltree.node import BOTTOM_LABEL


class TestTau:
    def test_wildcards_become_bottom(self, p):
        model = tau(p("a/*"))
        assert [n.label for n in model.tree.nodes()] == ["a", BOTTOM_LABEL]

    def test_descendant_edges_become_single_edges(self, p):
        model = tau(p("a//b//c"))
        assert model.tree.height() == 2
        assert model.tree.size() == 3

    def test_node_map_covers_pattern(self, p):
        pattern = p("a[x]/b")
        model = tau(pattern)
        assert set(model.node_map) == set(pattern.nodes())

    def test_output_tracked(self, p):
        pattern = p("a/b")
        model = tau(pattern)
        assert model.output.label == "b"
        assert model.output is model.node_map[pattern.output]

    def test_tau_is_a_model(self, p):
        pattern = p("a[x//y]/b/*")
        assert is_model(tau(pattern).tree, pattern)

    def test_empty_raises(self):
        with pytest.raises(EmptyPatternError):
            tau(Pattern.empty())


class TestCanonicalModels:
    def test_count_no_descendants(self, p):
        pattern = p("a/b[c]")
        models = list(canonical_models(pattern, 3))
        assert len(models) == 1
        assert count_canonical_models(pattern, 3) == 1

    def test_count_exponential_in_descendant_edges(self, p):
        pattern = p("a//b//c")
        assert count_canonical_models(pattern, 3) == 9
        assert len(list(canonical_models(pattern, 3))) == 9

    def test_expansion_paths_use_bottom(self, p):
        pattern = p("a//b")
        sizes = set()
        for model in canonical_models(pattern, 3):
            sizes.add(model.tree.size())
            interior = [
                n
                for n in model.tree.nodes()
                if n.label not in ("a", "b")
            ]
            assert all(n.label == BOTTOM_LABEL for n in interior)
        assert sizes == {2, 3, 4}

    def test_all_models_are_models(self, p):
        pattern = p("a[.//x]//b/*")
        for model in canonical_models(pattern, 3):
            assert is_model(model.tree, pattern)

    def test_output_is_image_of_output_node(self, p):
        pattern = p("a//b")
        for model in canonical_models(pattern, 3):
            assert model.output.label == "b"

    def test_expansion_recorded(self, p):
        pattern = p("a//b")
        expansions = sorted(
            next(iter(m.expansion.values())) for m in canonical_models(pattern, 4)
        )
        assert expansions == [1, 2, 3, 4]

    def test_bad_bound(self, p):
        with pytest.raises(ValueError):
            list(canonical_models(p("a//b"), 0))

    def test_count_empty_pattern(self):
        assert count_canonical_models(Pattern.empty(), 3) == 0


class TestStarLength:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a/b/c", 0),
            ("*", 1),
            ("*/*", 2),
            ("*//*", 1),  # descendant edge breaks the chain
            ("a/*/*/b", 2),
            ("a[*/*]/*", 2),
            ("*/*[*/*/*]", 5),  # root chain continues into the branch
            ("a/*[*/*/*]", 4),
            ("a", 0),
        ],
    )
    def test_examples(self, p, text, expected):
        assert star_length(p(text)) == expected

    def test_empty(self):
        assert star_length(Pattern.empty()) == 0
