"""Unit tests for redundancy elimination (after [10], used by Prop 3.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.containment import equivalent
from repro.core.minimize import is_non_redundant, minimize, redundant_branches
from repro.patterns.ast import Pattern
from repro.patterns.parse import parse_pattern

from .strategies import patterns


class TestRedundantBranches:
    def test_wildcard_branch_redundant_with_selection_child(self, p):
        pattern = p("a[*]/b")
        assert len(redundant_branches(pattern)) == 1

    def test_duplicate_branch_redundant(self, p):
        pattern = p("a[b][b]")
        # Either copy can go (each is redundant given the other).
        assert len(redundant_branches(pattern)) == 2

    def test_distinguishing_branch_not_redundant(self, p):
        assert redundant_branches(p("a[c]/b")) == []

    def test_subsumed_descendant_branch(self, p):
        # [.//b] is implied by the child branch [b].
        pattern = p("a[b][.//b]")
        redundant = redundant_branches(pattern)
        assert len(redundant) >= 1

    def test_selection_path_never_reported(self, p):
        pattern = p("a/b/c")
        assert redundant_branches(pattern) == []

    def test_empty_pattern(self):
        assert redundant_branches(Pattern.empty()) == []


class TestMinimize:
    def test_removes_wildcard_branch(self, p):
        assert minimize(p("a[*]/b")) == p("a/b")

    def test_removes_duplicate(self, p):
        assert minimize(p("a[b][b]")) == p("a[b]")

    def test_keeps_meaningful_branches(self, p):
        pattern = p("a[c][d]/b")
        assert minimize(pattern) == pattern

    def test_removes_nested_redundancy(self, p):
        # b[*] inside the branch: the inner * is redundant only if b has
        # another child in the branch... here b has no other child, so
        # nothing is removable except the implied [.//b].
        pattern = p("a[b/c][.//b]")
        minimized = minimize(pattern)
        assert minimized == p("a[b/c]")

    def test_minimize_preserves_equivalence(self, p):
        pattern = p("a[*][b]/c[.//d][d]")
        minimized = minimize(pattern)
        assert equivalent(minimized, pattern)
        assert minimized.size() < pattern.size()

    def test_empty_pattern(self):
        assert minimize(Pattern.empty()).is_empty

    @given(patterns(max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalent_and_non_redundant(self, pattern):
        minimized = minimize(pattern)
        assert equivalent(minimized, pattern)
        assert is_non_redundant(minimized)
        assert minimized.size() <= pattern.size()


class TestIsNonRedundant:
    def test_positive(self, p):
        assert is_non_redundant(p("a[b]/c"))

    def test_negative(self, p):
        assert not is_non_redundant(p("a[*]/c"))
