"""End-to-end integration tests across the whole stack.

These exercise realistic flows — workload generation → solving →
materialized-view answering — plus failure injection for the budgeted
code paths.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    compose,
    equivalent,
    evaluate,
    evaluate_forest,
    find_rewriting,
    parse_pattern,
)
from repro.core.containment import canonical_containment, clear_cache
from repro.core.rewrite import RewriteSolver, RewriteStatus
from repro.errors import ContainmentBudgetError, ReproError
from repro.patterns.random import PatternConfig, random_pattern, random_rewrite_instance
from repro.views import QueryEngine, ViewCache, ViewStore
from repro.workloads import StreamConfig, query_stream
from repro.xmltree.generate import dblp_like, random_tree, xmark_like


class TestEndToEndPipeline:
    """Random instance → solver → view store → answer equality."""

    @pytest.mark.parametrize("seed", range(6))
    def test_full_pipeline(self, seed):
        rng = random.Random(seed)
        config = PatternConfig(
            depth=3, alphabet=("a", "b", "c"), branch_prob=0.4
        )
        query, view = random_rewrite_instance(config, seed=rng)
        decision = find_rewriting(query, view)
        assert decision.status is RewriteStatus.FOUND

        document = random_tree(
            120, alphabet=("a", "b", "c"), seed=seed, root_label=query.root.label
        )
        store = ViewStore()
        store.add_document("doc", document)
        store.define_view("v", view)
        engine = QueryEngine(store)

        direct = evaluate(query, document)
        via_view = engine.answer_with_view(query, "v", "doc")
        assert via_view == direct

    def test_xmark_workload_round_trip(self):
        document = xmark_like(items=40, people=20, auctions=20, seed=4)
        store = ViewStore()
        store.add_document("site", document)
        store.define_view("people", parse_pattern("site/people/person"))
        store.define_view("items", parse_pattern("site/regions/*/item"))
        engine = QueryEngine(store)
        queries = [
            "site/people/person[profile]/name",
            "site/people/person/emailaddress",
            "site/regions/*/item[mailbox]/name",
            "site/regions/asia/item/name",
        ]
        for text in queries:
            query = parse_pattern(text)
            assert engine.answer(query, "site") == evaluate(query, document)

    def test_cache_and_engine_agree(self):
        document = dblp_like(entries=40, seed=6)
        cache = ViewCache(document, capacity=8)
        for query in query_stream(StreamConfig(length=25, templates=4), seed=6):
            assert cache.query(query) == evaluate(query, document)


class TestFailureInjection:
    def test_containment_budget_surfaces(self, p):
        big = p("a//*//*//*//*//*//*//b[x]")
        with pytest.raises(ContainmentBudgetError):
            canonical_containment(big, p("a//b[x][y]"), max_models=5)

    def test_budget_error_is_catchable_as_repro_error(self, p):
        big = p("a//*//*//*//*//*//*//b[x]")
        with pytest.raises(ReproError):
            canonical_containment(big, p("a//b[x][y]"), max_models=5)

    def test_solver_with_tiny_model_budget(self, p):
        # The solver passes max_models through to its equivalence tests;
        # exceeding it should raise, not silently mis-decide.  The Figure
        # 2 instance needs the canonical engine (no homomorphism exists
        # for the containment a//*/e ⊑ a/*/e direction check).
        solver = RewriteSolver(max_models=1)
        with pytest.raises(ContainmentBudgetError):
            solver.solve(p("a//*/e"), p("a/*"))

    def test_document_mutation_without_refresh_is_stale(self, p):
        store = ViewStore()
        from repro.xmltree.parse import parse_sexpr

        store.add_document("d", parse_sexpr("a(b)"))
        store.define_view("v", p("a/b"))
        doc = store.document("d")
        doc.root.new_child("b")
        assert len(store.view_answers("v", "d")) == 1  # stale by design
        store.refresh("d")
        assert len(store.view_answers("v", "d")) == 2

    def test_unknown_status_never_produces_rewriting(self, p):
        solver = RewriteSolver(fallback_extra_nodes=0)
        result = solver.solve(p("a//*[e]/*[e]/*//e"), p("a/*//*/*"))
        assert result.status is RewriteStatus.UNKNOWN
        assert result.rewriting is None


class TestCrossEngineConsistency:
    """The same question answered by independent code paths must agree."""

    @pytest.mark.parametrize("seed", range(8))
    def test_solver_vs_direct_composition_check(self, seed):
        rng = random.Random(1000 + seed)
        config = PatternConfig(depth=2, alphabet=("a", "b"), branch_prob=0.3)
        query = random_pattern(config, rng)
        view = random_pattern(PatternConfig(depth=1, alphabet=("a", "b")), rng)
        clear_cache()
        result = RewriteSolver(fallback_extra_nodes=1).solve(query, view)
        if result.status is RewriteStatus.FOUND:
            assert equivalent(compose(result.rewriting, view), query)

    @pytest.mark.parametrize("seed", range(5))
    def test_view_answer_equals_composition_answer(self, seed):
        config = PatternConfig(depth=2, alphabet=("a", "b", "c"))
        query, view = random_rewrite_instance(config, seed=seed)
        result = find_rewriting(query, view)
        assert result.found
        document = random_tree(
            80, alphabet=("a", "b", "c"), seed=seed,
            root_label=query.root.label,
        )
        lhs = evaluate_forest(result.rewriting, evaluate(view, document))
        rhs = evaluate(compose(result.rewriting, view), document)
        assert lhs == rhs == evaluate(query, document)
