"""Intersection plans in :class:`repro.views.engine.QueryEngine`.

The multi-provider regime: no single view is equivalent to the query,
but two partial views — each publishing part of the predicates — have
compensated compositions whose intersection is.  Covers planning, DAG
execution over the stored forests (by preorder index), the
tractable-regime gate, counter semantics, the plan cache, and an
end-to-end soundness property over fragment-generated views.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import evaluate
from repro.core.intersect import fragment_views
from repro.errors import ViewEngineError
from repro.patterns.parse import parse_pattern
from repro.views.engine import QueryEngine, QueryPlan
from repro.views.store import ViewStore
from repro.xmltree.generate import random_tree

from .strategies import patterns

#: Query answered by no single view but by the halves' intersection.
QUERY = "a[w][z]/b/c"
HALVES = ("a[w]/b", "a[z]/b")


@pytest.fixture
def halved(t):
    """A store holding the two half-views over a matching document."""
    store = ViewStore()
    store.add_document("doc", t("a(w,z,b(c,d),b(e),x(y))"))
    store.define_view("half-w", parse_pattern(HALVES[0]))
    store.define_view("half-z", parse_pattern(HALVES[1]))
    return store


class TestPlanning:
    def test_intersection_planned_when_no_single_view(self, halved, p):
        engine = QueryEngine(halved)
        plan = engine.plan(p(QUERY), "doc")
        assert plan.kind == "intersection"
        assert {part.view_name for part in plan.parts} == {
            "half-w",
            "half-z",
        }
        assert plan.merged is not None
        assert engine.stats.intersection_attempts == 1
        assert engine.stats.intersection_plans == 1

    def test_merged_pattern_equivalent_to_query(self, halved, p):
        from repro.core.containment import contains

        plan = QueryEngine(halved).plan(p(QUERY), "doc")
        assert contains(plan.merged, p(QUERY))
        assert contains(p(QUERY), plan.merged)

    def test_single_view_still_preferred(self, halved, p):
        # A query one view answers outright must never pay for (or
        # pick) an intersection search.
        engine = QueryEngine(halved)
        plan = engine.plan(p("a[w]/b"), "doc")
        assert plan.kind == "view"
        assert engine.stats.intersection_attempts == 0

    def test_miss_and_plan_both_cached(self, halved, p):
        engine = QueryEngine(halved)
        engine.plan(p(QUERY), "doc")
        engine.plan(p(QUERY), "doc")
        assert engine.stats.intersection_attempts == 1
        no_plan = p("a[w][z]/b/d[q]")  # no combination reaches [q]
        engine.plan(no_plan, "doc")
        engine.plan(no_plan, "doc")
        assert engine.stats.intersection_attempts == 2

    def test_intersections_flag_disables_search(self, halved, p):
        engine = QueryEngine(halved, intersections=False)
        plan = engine.plan(p(QUERY), "doc")
        assert plan.kind == "direct"
        assert engine.stats.intersection_attempts == 0

    def test_width_must_be_at_least_two(self, halved):
        with pytest.raises(ViewEngineError):
            QueryEngine(halved, max_intersection_width=1)


class TestTractableGate:
    """Descendant-heavy spines need ``tractable_only=False``."""

    QUERY = "r[w][z]//a//b/c"
    VIEWS = ("r[w]//a//b", "r[z]//a//b")

    @pytest.fixture
    def store(self, t):
        store = ViewStore()
        store.add_document("doc", t("r(w,z,a(b(c),b(d)),a(x))"))
        for rank, xpath in enumerate(self.VIEWS):
            store.define_view(f"half-{rank}", parse_pattern(xpath))
        return store

    def test_default_engine_stays_direct(self, store, p):
        engine = QueryEngine(store)  # tractable_only=True
        assert engine.plan(p(self.QUERY), "doc").kind == "direct"
        assert engine.stats.intersection_attempts == 1
        assert engine.stats.intersection_plans == 0

    def test_intractable_regime_unlocks_the_plan(self, store, p):
        engine = QueryEngine(store, tractable_only=False)
        plan = engine.plan(p(self.QUERY), "doc")
        assert plan.kind == "intersection"
        query = p(self.QUERY)
        assert engine.answer(query, "doc") == evaluate(
            query, store.document("doc")
        )
        assert engine.verify_intersection(query, "doc") is True


class TestExecution:
    def test_answer_matches_direct_evaluation(self, halved, p):
        engine = QueryEngine(halved)
        query = p(QUERY)
        assert engine.answer(query, "doc") == evaluate(
            query, halved.document("doc")
        )
        assert engine.stats.intersection_answers == 1
        assert engine.stats.direct_answers == 0

    def test_empty_intersection_on_non_matching_document(self, halved, t, p):
        # Same views over a second document where [z] never holds: the
        # half-z leg is empty, the meet short-circuits to ∅ = direct.
        halved.add_document("other", t("a(w,b(c))"))
        engine = QueryEngine(halved)
        assert engine.answer(p(QUERY), "other") == set()

    def test_verify_intersection(self, halved, p):
        engine = QueryEngine(halved)
        assert engine.verify_intersection(p(QUERY), "doc") is True
        # Non-intersection plans report None, not a verdict.
        assert engine.verify_intersection(p("a[w]/b"), "doc") is None

    def test_executing_a_non_intersection_plan_rejected(self, halved, p):
        engine = QueryEngine(halved)
        with pytest.raises(ViewEngineError):
            engine.answer_with_intersection(
                p(QUERY), QueryPlan(kind="direct"), "doc"
            )


class TestSoundnessProperty:
    @given(patterns(max_size=5), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_fragment_served_queries_match_direct(self, pattern, doc_seed):
        """Whatever the planner picks, the answer equals ``P(t)``.

        Fragmenting a random query yields two structurally weaker
        half-views; serving the query through a store holding exactly
        those views must agree with direct evaluation — as a view plan,
        an intersection plan, or a direct plan alike.  When the plan is
        an intersection, the full observational chain is re-checked.
        """
        pair = fragment_views(pattern)
        if pair is None:
            return
        tree = random_tree(60, seed=17 + doc_seed)
        store = ViewStore()
        store.add_document("doc", tree)
        store.define_view("half-0", pair[0])
        store.define_view("half-1", pair[1])
        engine = QueryEngine(store, tractable_only=False)
        assert engine.answer(pattern, "doc") == evaluate(pattern, tree)
        if engine.plan(pattern, "doc").kind == "intersection":
            assert engine.verify_intersection(pattern, "doc") is True
