"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.core.rewrite import RewriteSolver, RewriteStatus
from repro.errors import WorkloadError
from repro.patterns.ast import Axis
from repro.workloads.instances import (
    InstanceConfig,
    condition_instance,
    make_instances,
)
from repro.workloads.streams import StreamConfig, query_stream


class TestMakeInstances:
    def test_count_and_shape(self):
        instances = make_instances(InstanceConfig(count=10), seed=1)
        assert len(instances) == 10
        for query, view, mutated in instances:
            assert view.depth <= query.depth
            assert isinstance(mutated, bool)

    def test_deterministic(self):
        left = make_instances(InstanceConfig(count=5), seed=2)
        right = make_instances(InstanceConfig(count=5), seed=2)
        assert [(q, v) for q, v, _ in left] == [(q, v) for q, v, _ in right]

    def test_mutate_ratio_zero(self):
        instances = make_instances(
            InstanceConfig(count=10, mutate_ratio=0.0), seed=3
        )
        assert not any(mutated for _, _, mutated in instances)

    def test_unmutated_always_rewritable(self):
        solver = RewriteSolver()
        instances = make_instances(
            InstanceConfig(count=8, mutate_ratio=0.0), seed=4
        )
        for query, view, _ in instances:
            assert solver.solve(query, view).status is RewriteStatus.FOUND


class TestConditionInstance:
    @pytest.mark.parametrize(
        "condition",
        ["thm-4.3", "thm-4.4", "thm-4.9", "thm-4.10", "thm-4.16", "gnf"],
    )
    def test_instances_are_decidable(self, condition):
        solver = RewriteSolver(use_fallback=False)
        for seed in range(5):
            query, view = condition_instance(condition, seed=seed)
            result = solver.solve(query, view)
            assert result.status in (
                RewriteStatus.FOUND,
                RewriteStatus.NO_REWRITING,
            ), f"{condition} seed={seed} undecided"

    def test_thm_4_4_prefix_all_child(self):
        query, view = condition_instance("thm-4.4", seed=7)
        k = view.depth
        assert all(a is Axis.CHILD for a in query.selection_axes()[:k])

    def test_thm_4_9_descendant_into_view_output(self):
        query, view = condition_instance("thm-4.9", seed=7)
        assert view.selection_axes()[-1] is Axis.DESCENDANT

    def test_thm_4_10_view_all_child(self):
        query, view = condition_instance("thm-4.10", seed=7)
        assert all(a is Axis.CHILD for a in view.selection_axes())

    def test_gnf_linear(self):
        query, view = condition_instance("gnf", seed=7)
        assert query.is_linear()

    def test_unknown_condition(self):
        with pytest.raises(WorkloadError):
            condition_instance("thm-9.9", seed=1)

    def test_bad_depths(self):
        with pytest.raises(WorkloadError):
            condition_instance("thm-4.4", depth=2, view_depth=3)


class TestQueryStream:
    def test_length(self):
        stream = query_stream(StreamConfig(length=40), seed=5)
        assert len(stream) == 40

    def test_deterministic(self):
        left = query_stream(StreamConfig(length=20), seed=6)
        right = query_stream(StreamConfig(length=20), seed=6)
        assert left == right

    def test_repeats_present(self):
        stream = query_stream(
            StreamConfig(length=60, repeat_prob=0.7, specialize_prob=0.0),
            seed=7,
        )
        keys = [pattern.canonical_key() for pattern in stream]
        assert len(set(keys)) < len(keys)

    def test_specializations_deepen_or_branch(self):
        config = StreamConfig(
            length=50, templates=3, repeat_prob=0.0, specialize_prob=1.0
        )
        stream = query_stream(config, seed=8)
        assert all(pattern.size() >= 1 for pattern in stream)
        # Specializations are strictly larger than the 1-node minimum of
        # their template pool; smoke-check sizes vary.
        assert len({pattern.size() for pattern in stream}) > 1
