"""Tests for the workload replay harness."""

from __future__ import annotations

import pytest

from repro.core.rewrite import RewriteSolver
from repro.views.engine import QueryEngine
from repro.views.store import ViewStore
from repro.workloads.replay import (
    DOCUMENT,
    ReplayConfig,
    ReplayReport,
    replay_stream,
    replay_workload,
)
from repro.workloads.streams import StreamConfig, sample_stream
from repro.xmltree.generate import random_tree

CONFIG = ReplayConfig(
    stream=StreamConfig(length=60, templates=5),
    document_size=150,
    max_views=3,
)


@pytest.fixture(scope="module")
def report():
    return replay_workload(CONFIG, seed=11)


class TestDeterminism:
    def test_same_seed_same_counters(self, report):
        again = replay_workload(CONFIG, seed=11)
        assert again.counters() == report.counters()

    def test_different_seed_different_stream(self, report):
        other = replay_workload(CONFIG, seed=12)
        assert other.counters() != report.counters()

    def test_counters_exclude_timing(self, report):
        counters = report.counters()
        assert "elapsed_seconds" not in counters
        assert "latencies_ms" not in counters


class TestAnswersMatchDirect:
    def test_replay_answers_equal_direct_evaluation(self):
        verified = replay_workload(
            ReplayConfig(
                stream=CONFIG.stream,
                document_size=CONFIG.document_size,
                max_views=CONFIG.max_views,
                verify=True,
            ),
            seed=11,
        )
        assert verified.verified_mismatches == 0
        assert verified.view_plans > 0  # the check exercised view plans

    def test_replay_stream_against_prepared_engine(self):
        document = random_tree(120, seed=5)
        sample = sample_stream(
            StreamConfig(length=30, templates=4), seed=5
        )
        store = ViewStore()
        store.add_document("doc", document)
        store.define_view("tpl-0", sample.templates[0])
        engine = QueryEngine(store, solver=RewriteSolver(use_fallback=False))
        outcome = replay_stream(engine, sample.queries, "doc", verify=True)
        assert outcome.queries == 30
        assert outcome.verified_mismatches == 0
        assert outcome.view_plans + outcome.direct_plans == 30


class TestReportShape:
    def test_basic_counters(self, report):
        assert report.queries == CONFIG.stream.length
        assert 0 < report.distinct_queries <= report.queries
        assert report.view_plans + report.direct_plans == report.queries
        assert sum(report.plans_by_view.values()) == report.view_plans
        assert set(report.plans_by_view) <= set(report.views)
        assert len(report.latencies_ms) == report.queries

    def test_throughput_and_latency_helpers(self, report):
        assert report.queries_per_sec > 0
        assert report.elapsed_seconds > 0
        assert 0 <= report.view_plan_ratio <= 1
        assert report.latency_ms(0.5) <= report.latency_ms(0.95)
        assert report.latency_ms(0.95) <= max(report.latencies_ms)

    def test_engine_and_containment_deltas(self, report):
        assert report.engine["direct_answers"] == report.direct_plans
        assert report.engine["view_answers"] == report.view_plans
        # A repeating stream must reuse cached rewrite decisions.
        assert report.engine["decision_cache_hits"] > 0

    def test_summary_mentions_throughput(self, report):
        text = report.summary()
        assert "q/s" in text
        assert str(report.queries) in text

    def test_empty_report_is_well_defined(self):
        empty = ReplayReport()
        assert empty.queries_per_sec == 0.0
        assert empty.view_plan_ratio == 0.0
        assert empty.latency_ms(0.95) == 0.0


class TestAdviseToggle:
    def test_without_advice_everything_is_direct(self):
        config = ReplayConfig(
            stream=StreamConfig(length=25, templates=4),
            document_size=100,
            advise=False,
        )
        outcome = replay_workload(config, seed=3)
        assert outcome.views == []
        assert outcome.view_plans == 0
        assert outcome.direct_plans == 25

    def test_advice_produces_view_plans(self, report):
        assert report.views
        assert report.view_plans > 0
        assert report.view_plan_ratio > 0.3

    def test_document_name_constant(self):
        # The workload store registers the document under the module
        # constant so callers can address it after a replay.
        assert isinstance(DOCUMENT, str) and DOCUMENT
