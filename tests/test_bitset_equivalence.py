"""Property tests: the bitset engine agrees with the seed set engine.

The seed's ``set[TNode]``-based matcher and from-scratch canonical-model
loop are preserved verbatim in :mod:`repro.core.embedding_reference`.
These Hypothesis suites assert that the bitset ``Matcher``, the
Gray-code :class:`~repro.core.canonical.CanonicalEngine` and the batched
:func:`~repro.core.containment.contains_all` API produce *identical*
results on random inputs across all four fragments of ``XP{//,[],*}``
(full, ``XP{//,[]}``, ``XP{//,*}``, ``XP{[],*}``) — 500+ random pattern
pairs per full run.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytestmark = pytest.mark.slow

from repro.core.canonical import (
    canonical_models,
    gray_vectors,
    incremental_models,
)
from repro.core.containment import (
    canonical_containment,
    contains,
    contains_all,
    weakly_contains,
)
from repro.core.embedding import Matcher, TreeIndex
from repro.core.embedding_reference import (
    ReferenceMatcher,
    reference_canonical_containment,
)

from .strategies import patterns, path_patterns, trees

try:
    import numpy  # noqa: F401 - availability probe only

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in the image
    HAVE_NUMPY = False

_SETTINGS = dict(max_examples=60, deadline=None)

# The four fragments: (wildcards allowed, descendant edges allowed, linear).
FRAGMENTS = {
    "full": dict(wildcard=True, desc=True),
    "no-wildcard": dict(wildcard=False, desc=True),
    "no-descendant": dict(wildcard=True, desc=False),
}


class TestMatcherAgreement:
    @given(patterns(max_size=4), trees(max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_output_images_match(self, pattern, tree):
        bitset = Matcher(pattern, tree)
        reference = ReferenceMatcher(pattern, tree)
        assert bitset.output_images() == reference.output_images()
        assert bitset.output_images(weak=True) == reference.output_images(
            weak=True
        )
        assert bitset.has_embedding() == reference.has_embedding()
        assert bitset.has_weak_embedding() == reference.has_weak_embedding()

    @given(path_patterns(max_depth=4), trees(max_size=6))
    @settings(**_SETTINGS)
    def test_linear_patterns_match(self, pattern, tree):
        assert Matcher(pattern, tree).output_images() == ReferenceMatcher(
            pattern, tree
        ).output_images()


class TestContainmentAgreement:
    """Bitset canonical engine vs the seed loop, per fragment.

    3 fragment classes × 60 examples + 60 linear + 80 matcher pairs
    ≥ 500 random pairs cross-validated per full run.
    """

    @pytest.mark.parametrize("fragment", sorted(FRAGMENTS))
    @settings(**_SETTINGS)
    @given(data=st.data())
    def test_canonical_matches_seed(self, fragment, data):
        kwargs = FRAGMENTS[fragment]
        p1 = data.draw(patterns(max_size=4, **kwargs))
        p2 = data.draw(patterns(max_size=4, **kwargs))
        assert canonical_containment(p1, p2) == reference_canonical_containment(
            p1, p2
        )
        assert canonical_containment(
            p1, p2, weak=True
        ) == reference_canonical_containment(p1, p2, weak=True)

    @given(path_patterns(max_depth=3), path_patterns(max_depth=3))
    @settings(**_SETTINGS)
    def test_linear_fragment_matches_seed(self, p1, p2):
        # XP{//,*} (no branches): the fourth fragment.
        assert canonical_containment(p1, p2) == reference_canonical_containment(
            p1, p2
        )

    @given(patterns(max_size=4), patterns(max_size=4))
    @settings(**_SETTINGS)
    def test_dispatch_matches_seed(self, p1, p2):
        assert contains(p1, p2, use_cache=False) == reference_canonical_containment(
            p1, p2
        )


class TestBatchedApi:
    @given(
        patterns(max_size=4),
        patterns(max_size=3),
        patterns(max_size=3),
        patterns(max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_contains_all_matches_pointwise(self, p, v1, v2, v3):
        views = [v1, v2, v3]
        assert contains_all(p, views) == [contains(p, v) for v in views]

    @given(patterns(max_size=4), patterns(max_size=3), patterns(max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_contains_all_weak_matches_pointwise(self, p, v1, v2):
        views = [v1, v2]
        assert contains_all(p, views, weak=True) == [
            weakly_contains(p, v) for v in views
        ]


class TestWordTableBackends:
    """The word-parallel ``TreeIndex`` backends vs the set-bit reference.

    ``parents_of_loop``/``ancestors_of_loop`` are the preserved per-bit
    loops; the ``table`` (per-byte lookup) and ``numpy`` (vectorized
    gather) backends must agree with them on every mask — including
    dense masks past :data:`SPARSE_POPCOUNT_CUTOFF`, where the
    word-parallel paths actually engage.
    """

    BACKENDS = ("table", "numpy") if HAVE_NUMPY else ("table",)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_masks_agree_with_loop_reference(self, backend, data):
        tree = data.draw(trees(max_size=12))
        index = TreeIndex(tree.root, backend=backend)
        assert index.backend == backend
        # A handful of random masks per tree, biased dense so the
        # sparse-popcount shortcut does not mask a broken table.
        for _ in range(4):
            mask = data.draw(st.integers(0, (1 << index.n) - 1))
            assert index.parents_of(mask) == index.parents_of_loop(mask)
            assert index.ancestors_of(mask) == index.ancestors_of_loop(mask)
        assert index.parents_of(index.all_mask) == index.parents_of_loop(
            index.all_mask
        )
        assert index.ancestors_of(index.all_mask) == index.ancestors_of_loop(
            index.all_mask
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(patterns(max_size=4), trees(max_size=8))
    @settings(**_SETTINGS)
    def test_dp_agrees_across_backends(self, backend, pattern, tree):
        # The full Matcher DP on an explicitly-backed index must match
        # the DP on a loop-backed index (and hence the seed matcher).
        fast = Matcher(pattern, tree, tree_index=TreeIndex(tree.root, backend=backend))
        slow = Matcher(pattern, tree, tree_index=TreeIndex(tree.root, backend="loop"))
        assert fast.output_images() == slow.output_images()
        assert fast.output_images(weak=True) == slow.output_images(weak=True)
        assert fast.has_embedding() == slow.has_embedding()


class TestIncrementalEnumeration:
    @given(patterns(max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_incremental_models_match_fresh(self, pattern):
        bound = 3
        fresh = {
            (m.tree.structure_key(), tuple(sorted(m.expansion.values())))
            for m in canonical_models(pattern, bound)
        }
        incremental = {
            (m.tree.structure_key(), tuple(sorted(m.expansion.values())))
            for m in incremental_models(pattern, bound)
        }
        assert fresh == incremental

    @pytest.mark.parametrize("digits,base", [(0, 3), (1, 4), (2, 3), (3, 2), (2, 1)])
    def test_gray_vectors_cover_product_once(self, digits, base):
        seen = list(gray_vectors(digits, base))
        expected = set(itertools.product(range(base), repeat=digits))
        assert len(seen) == len(expected)
        assert set(seen) == expected
        for a, b in zip(seen, seen[1:]):
            diffs = [(x, y) for x, y in zip(a, b) if x != y]
            assert len(diffs) == 1
            assert abs(diffs[0][0] - diffs[0][1]) == 1
