"""Unit tests for the selection-path toolkit (Section 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.containment import equivalent
from repro.core.selection import (
    combine,
    last_descendant_selection_depth,
    selection_prefix_all_child,
    sub_ge,
    sub_gt,
    sub_le,
    sub_lt,
)
from repro.errors import PatternStructureError
from repro.patterns.ast import Axis, Pattern
from repro.patterns.parse import parse_pattern

from .strategies import patterns, path_patterns


class TestSubGe:
    def test_identity_at_zero(self, p):
        pattern = p("a[x]/b//c")
        assert sub_ge(pattern, 0) == pattern

    def test_subtree_at_k(self, p):
        pattern = p("a[x]/b[y]//c")
        assert sub_ge(pattern, 1) == p("b[y]//c")

    def test_output_preserved(self, p):
        pattern = p("a/b/c")
        sub = sub_ge(pattern, 2)
        assert sub.depth == 0
        assert sub.output.label == "c"

    def test_branches_of_k_node_kept(self, p):
        pattern = p("a/b[u][.//v]/c")
        assert sub_ge(pattern, 1) == p("b[u][.//v]/c")

    def test_out_of_range(self, p):
        with pytest.raises(PatternStructureError):
            sub_ge(p("a/b"), 3)


class TestSubLe:
    def test_identity_at_depth(self, p):
        pattern = p("a/b//c")
        assert sub_le(pattern, 2) == pattern

    def test_prunes_selection_child_only(self, p):
        pattern = p("a/b[u]/c")
        assert sub_le(pattern, 1) == p("a/b[u]")

    def test_output_moves_to_k_node(self, p):
        pattern = p("a/b/c")
        assert sub_le(pattern, 1).output.label == "b"

    def test_k_zero(self, p):
        pattern = p("a[x]/b")
        assert sub_le(pattern, 0) == p("a[x]")

    def test_branches_below_k_in_branch_position_kept(self, p):
        # Only the (k+1)-selection subtree is pruned; other deep branches
        # hanging off earlier selection nodes survive.
        pattern = p("a[x//y]/b/c")
        assert sub_le(pattern, 1) == p("a[x//y]/b")


class TestStrictVariants:
    def test_sub_gt(self, p):
        assert sub_gt(p("a/b/c"), 0) == p("b/c")

    def test_sub_lt(self, p):
        assert sub_lt(p("a/b/c"), 2) == p("a/b")

    def test_sub_gt_range(self, p):
        with pytest.raises(PatternStructureError):
            sub_gt(p("a/b"), 1)  # k must be < depth

    def test_sub_lt_range(self, p):
        with pytest.raises(PatternStructureError):
            sub_lt(p("a/b"), 0)


class TestCombine:
    def test_combine_attaches_with_descendant_edge(self, p):
        combined = combine(p("a/b"), 1, p("c/d"))
        assert combined == p("a/b[.//c/d]") or combined.depth == 3
        # Output must be the lower pattern's output.
        assert combined.output.label == "d"
        axes = combined.selection_axes()
        assert axes[1] is Axis.DESCENDANT

    def test_paper_identity(self, p):
        # If a descendant edge enters the k-node of P, then
        # P<k =k-1⇒ P≥k is the same pattern as P (Section 3.1).
        pattern = p("a/b//c/d")
        k = 2  # descendant edge enters the 2-node "c"
        rebuilt = combine(sub_lt(pattern, k), k - 1, sub_ge(pattern, k))
        assert rebuilt == pattern

    def test_combine_with_empty_raises(self, p):
        with pytest.raises(PatternStructureError):
            combine(p("a"), 0, Pattern.empty())

    def test_inputs_copied(self, p):
        upper, lower = p("a"), p("b")
        combined = combine(upper, 0, lower)
        assert combined.root is not upper.root
        assert combined.output is not lower.output


class TestPredicates:
    def test_last_descendant_selection_depth(self, p):
        assert last_descendant_selection_depth(p("a/b/c")) is None
        assert last_descendant_selection_depth(p("a//b/c")) == 1
        assert last_descendant_selection_depth(p("a//b//c")) == 2
        assert last_descendant_selection_depth(p("a//b/c//d/e")) == 3

    def test_branch_descendants_ignored(self, p):
        assert last_descendant_selection_depth(p("a[.//x]/b")) is None

    def test_selection_prefix_all_child(self, p):
        pattern = p("a/b//c")
        assert selection_prefix_all_child(pattern, 0)
        assert selection_prefix_all_child(pattern, 1)
        assert not selection_prefix_all_child(pattern, 2)


class TestDecompositionProperties:
    @given(patterns(max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_sub_ge_depth(self, pattern):
        for k in range(pattern.depth + 1):
            assert sub_ge(pattern, k).depth == pattern.depth - k

    @given(patterns(max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_sub_le_depth(self, pattern):
        for k in range(pattern.depth + 1):
            assert sub_le(pattern, k).depth == k

    @given(path_patterns(max_depth=4))
    @settings(max_examples=50, deadline=None)
    def test_sizes_partition_for_paths(self, pattern):
        for k in range(pattern.depth + 1):
            total = sub_ge(pattern, k).size() + sub_le(pattern, k).size()
            assert total == pattern.size() + 1  # k-node counted twice
