"""Focused tests for the certificate engine's derived-instance logic.

The Section 5 transformations let a certificate fire on a *derived*
instance and transfer back to the original; these tests pin down the
exact chains and their soundness conditions.
"""

from __future__ import annotations

import pytest

from repro.core.composition import compose
from repro.core.containment import equivalent
from repro.core.decide import exhaustive_search
from repro.core.rewrite import RewriteSolver, RewriteStatus
from repro.patterns.parse import parse_pattern


@pytest.fixture
def solver():
    return RewriteSolver()


class TestBaseCertificates:
    @pytest.mark.parametrize(
        "query,view,expected",
        [
            # k = d: the k-sub-pattern decides outright.
            ("a/b[x]", "a/b", "k-equals-d"),
            # k = 0: Prop 3.5.
            ("a[c]/b", "a[c]", "prop-3.5-view-output-at-root"),
            # Stable sub-query (non-wildcard k-node).
            ("a//e/d", "a/*", "thm-4.3-stable-subquery"),
            # Child-edge prefix of P.
            ("a/*/c", "a/*", "thm-4.4-query-prefix-child-edges"),
            # Descendant into out(V).
            ("a//*/*", "a//*", "thm-4.9-descendant-into-view-output"),
            # All-child view path (needs non-child P prefix + unstable).
            ("a//*/e", "a/*", "thm-4.10-view-path-child-edges"),
            # Corresponding descendant edges.
            ("a/*//*[e]/*/e", "a/*//*/*", "thm-4.16-corresponding-descendant-edges"),
        ],
    )
    def test_certificate_names(self, p, solver, query, view, expected):
        assert solver.find_certificate(p(query), p(view)) == expected

    def test_gnf_certificate(self, p, solver):
        # Linear queries are always in GNF/∗; to see the GNF rule fire we
        # need every earlier condition to miss: mixed prefix, view with a
        # non-final descendant edge, wildcard k-node, no correlation.
        query = p("a//*/*//*/e")  # linear, last // at depth 3
        view = p("a//*/*")  # depth 2, // at depth 1
        cert = solver.find_certificate(query, view)
        assert cert is not None

    def test_cor_5_2_view_side(self, p, solver):
        # V's b-node at depth 1 connects to the k-node by child edges
        # while P's corresponding stretch has a descendant edge.
        query = p("a/b//*[e]/*/*")
        view = p("a/b/*/*")
        # Thm 4.10 does not apply (V all child? yes it does!).  Force a
        # descendant edge into V's depth-1 node instead.
        query = p("a//b/*[e]//*")
        view = p("a//b/*/*")
        cert = solver.find_certificate(query, view)
        assert cert is not None


class TestDerivedInstances:
    def test_prop_5_6_chain(self, p, solver):
        cert = solver.find_certificate(p("a//*[e]/*/*/e"), p("a/*//*/*"))
        assert cert == "prop-5.6+thm-4.16-corresponding-descendant-edges"

    def test_lift_chain(self, p, solver):
        cert = solver.find_certificate(
            p("a/*//*[e]/*/c//e"), p("a/*//*/*")
        )
        assert cert is not None
        assert cert.startswith("thm-5.9-lift@4")

    def test_derived_depth_zero_disables_transforms(self, p):
        shallow = RewriteSolver(derived_depth=0)
        assert (
            shallow.find_certificate(p("a//*[e]/*/*/e"), p("a/*//*/*")) is None
        )

    def test_derived_refutations_are_sound(self, p):
        # Certified NO_REWRITING through a derived chain must agree with
        # the exhaustive search on the original instance.
        query, view = p("a//*[e]/*/*/e"), p("a/*//*/*")
        result = RewriteSolver().solve(query, view)
        assert result.status is RewriteStatus.NO_REWRITING
        outcome = exhaustive_search(query, view, max_extra_nodes=2)
        assert outcome.rewriting is None

    def test_uncertified_instance_has_no_chain(self, p, solver):
        assert (
            solver.find_certificate(p("a//*[e]/*[e]/*//e"), p("a/*//*/*"))
            is None
        )


class TestCertificateSoundnessSweep:
    """Any certified refutation must never contradict a found rewriting."""

    INSTANCES = [
        ("a//e/d", "a/*"),
        ("a/*/c", "a/*[x]"),
        ("a//*/*", "a//*[x]"),
        ("a//*/e", "a/*[x]"),
        ("a/*//*[e]/*/e", "a/*//*/*"),
        ("a//*[e]/*/*/e", "a/*//*/*"),
        ("a/*//*[e]/*/c//e", "a/*//*/*"),
    ]

    @pytest.mark.parametrize("query,view", INSTANCES)
    def test_no_false_refutations(self, p, query, view):
        q, v = p(query), p(view)
        result = RewriteSolver().solve(q, v)
        assert result.status is RewriteStatus.NO_REWRITING
        # Independent check: the bounded search agrees.
        outcome = exhaustive_search(q, v, max_extra_nodes=1)
        assert outcome.rewriting is None
        # And neither natural candidate verifies.
        for candidate in result.candidates:
            assert not equivalent(compose(candidate, v), q)
