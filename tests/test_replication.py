"""Replicated read tier tests (PR 9): shipping, fencing, failover.

Everything is deterministic: crashes are scripted through
:meth:`~repro.faults.FaultPolicy.on_replica`, staleness ages against a
:class:`~repro.faults.VirtualClock`, and the acceptance soak asserts
*exact* crash/retry/degrade counters across two same-seed runs — the
replica tier's recovery is reproducible, not a flake budget.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.catalog import CatalogServer, CatalogSpec, DocumentSpec, ReplicaSet
from repro.errors import (
    CatalogError,
    ReplicaLagError,
    UnknownDocumentError,
)
from repro.faults import FaultAction, ScriptedFaultPolicy, VirtualClock
from repro.patterns.parse import parse_pattern
from repro.patterns.serialize import to_xpath
from repro.workloads.replay import ServeReplayConfig, replay_serve
from repro.workloads.streams import StreamConfig, sample_stream
from repro.xmltree.generate import random_tree

pytestmark = pytest.mark.replica

DOCUMENTS = 2
QUERY_POOL = 4


@pytest.fixture(scope="module")
def fleet():
    """A two-document spec plus per-document XPath pools."""
    documents = []
    xpaths: dict[str, list[str]] = {}
    for index in range(DOCUMENTS):
        doc_id = f"doc-{index}"
        tree = random_tree(130, seed=900 + index)
        sample = sample_stream(
            StreamConfig(length=QUERY_POOL, templates=4), seed=900 + index
        )
        xpaths[doc_id] = [to_xpath(entry.query) for entry in sample.entries]
        documents.append(
            DocumentSpec.from_tree(
                doc_id, tree, sample.templates, sample.template_weights()
            )
        )
    spec = CatalogSpec(documents=tuple(documents), max_views=2)
    return spec, xpaths


def make_set(spec, tmp_path, **kwargs) -> ReplicaSet:
    kwargs.setdefault("replicas", 2)
    return ReplicaSet(spec, root=tmp_path / "set", **kwargs)


class TestBootstrap:
    def test_replicas_warm_start_and_match_writer(self, fleet, tmp_path):
        spec, xpaths = fleet
        with make_set(spec, tmp_path) as rs:
            for replica in rs.replicas():
                assert replica.warm, "replica advised cold — shipping failed"
                assert rs.lag_records(replica.index) == 0
                # Replicas load shipped materializations; they never
                # save their own (the writer is the only producer).
                assert replica.backend.stats.saves == 0
                assert replica.backend.stats.selection_saves == 0
            for doc_id, pool in sorted(xpaths.items()):
                ids, _ = rs.execute(doc_id, pool)
                expected, _ = rs._writer_inline(doc_id, pool)
                assert ids == expected
            assert rs.stats.replica_answers == DOCUMENTS * QUERY_POOL

    def test_db_path_spec_rejected(self, fleet, tmp_path):
        spec, _ = fleet
        specced = CatalogSpec(
            documents=spec.documents,
            max_views=spec.max_views,
            db_path=tmp_path / "catalog.db",
        )
        with pytest.raises(CatalogError):
            ReplicaSet(specced, root=tmp_path / "set")

    def test_needs_at_least_one_replica(self, fleet, tmp_path):
        spec, _ = fleet
        with pytest.raises(CatalogError):
            ReplicaSet(spec, replicas=0, root=tmp_path / "set")


class TestShipping:
    def test_define_views_ships_through(self, fleet, tmp_path):
        spec, xpaths = fleet
        with make_set(spec, tmp_path) as rs:
            names = rs.define_views("doc-0", [parse_pattern("a//b")])
            assert names
            assert all(
                rs.lag_records(replica.index) == 0
                for replica in rs.replicas()
            )
            assert rs.stats.records_shipped > 0
            ids, _ = rs.execute("doc-0", xpaths["doc-0"])
            assert ids == rs._writer_inline("doc-0", xpaths["doc-0"])[0]

    def test_sync_without_new_writes_ships_nothing(self, fleet, tmp_path):
        spec, _ = fleet
        with make_set(spec, tmp_path) as rs:
            assert rs.sync() == {0: 0, 1: 0}
            assert rs.stats.syncs == 1
            assert rs.stats.records_shipped == 0

    def test_ship_fault_skips_replica_until_next_sync(self, fleet, tmp_path):
        spec, _ = fleet
        policy = ScriptedFaultPolicy(
            replica={("ship", 0): FaultAction("crash")}
        )
        with make_set(spec, tmp_path, fault_policy=policy) as rs:
            rs.writer.define_views("doc-0", [parse_pattern("a//b")])
            first = rs.sync()
            assert 0 not in first and rs.stats.ship_failures == 1
            assert rs.lag_records(0) > 0 and rs.lag_records(1) == 0
            second = rs.sync()  # unscripted: the skipped ship retries
            assert second[0] > 0 and rs.lag_records(0) == 0

    def test_gap_across_compaction_forces_reship(self, fleet, tmp_path):
        spec, xpaths = fleet
        with make_set(spec, tmp_path) as rs:
            # Supersede a record on the writer, then compact: the
            # superseded seqno vanishes from the log, so the replicas'
            # incremental tails have a hole — catch-up must detect the
            # gap and fall back to a full re-ship.
            rs._writer_backend.save("doc-zz", "pat-zz", [1])
            rs._writer_backend.save("doc-zz", "pat-zz", [1, 2])
            rs._writer_backend.compact()
            rs.sync()
            assert rs.stats.gaps_detected == 2
            assert rs.stats.reships == 2
            assert all(
                rs.lag_records(replica.index) == 0
                for replica in rs.replicas()
            )
            ids, _ = rs.execute("doc-0", xpaths["doc-0"])
            assert ids == rs._writer_inline("doc-0", xpaths["doc-0"])[0]


class TestLagFencing:
    def test_record_lag_fences_until_sync(self, fleet, tmp_path):
        spec, xpaths = fleet
        with make_set(spec, tmp_path, max_lag_records=0) as rs:
            rs.writer.define_views("doc-0", [parse_pattern("a//b")])
            assert rs.lag_records(0) > 0
            ids, _ = rs.execute("doc-0", xpaths["doc-0"])
            assert ids == rs._writer_inline("doc-0", xpaths["doc-0"])[0]
            # Both replicas fenced; nobody was evicted for being stale.
            assert rs.stats.lag_fenced == 2
            assert rs.stats.writer_fallbacks == 1
            assert rs.stats.evictions == 0
            assert rs.healthy_count() == 2
            rs.sync()
            rs.execute("doc-0", xpaths["doc-0"])
            assert rs.stats.replica_answers == QUERY_POOL

    def test_seconds_lag_fences_against_virtual_clock(self, fleet, tmp_path):
        spec, xpaths = fleet
        clock = VirtualClock()
        with make_set(
            spec, tmp_path, max_lag_seconds=10.0, clock=clock
        ) as rs:
            rs.execute("doc-0", xpaths["doc-0"][:1])
            assert rs.stats.lag_fenced == 0
            clock.advance(11.0)
            rs.execute("doc-0", xpaths["doc-0"][:1])
            assert rs.stats.lag_fenced == 2
            assert rs.stats.writer_fallbacks == 1
            rs.sync()  # refreshes synced_at on the virtual clock
            rs.execute("doc-0", xpaths["doc-0"][:1])
            assert rs.stats.writer_fallbacks == 1  # replicas serve again

    def test_check_lag_is_typed(self, fleet, tmp_path):
        spec, _ = fleet
        with make_set(spec, tmp_path, max_lag_records=0) as rs:
            rs.writer.define_views("doc-0", [parse_pattern("a//b")])
            with pytest.raises(ReplicaLagError):
                rs._check_lag(rs.replicas()[0])


class TestFailureLadder:
    def test_crash_evicts_and_fails_over_to_sibling(self, fleet, tmp_path):
        spec, xpaths = fleet
        policy = ScriptedFaultPolicy(
            replica={("serve", 0): FaultAction("crash")}
        )
        with make_set(spec, tmp_path, fault_policy=policy) as rs:
            ids, _ = rs.execute("doc-0", xpaths["doc-0"])
            assert ids == rs._writer_inline("doc-0", xpaths["doc-0"])[0]
            assert rs.stats.replica_crashes == 1
            assert rs.stats.evictions == 1
            assert rs.stats.failover_retries == 1
            assert rs.stats.writer_fallbacks == 0
            assert rs.healthy_count() == 1
            assert policy.injected == [
                ("replica.serve[0]", FaultAction("crash"))
            ]

    def test_all_replicas_down_degrades_to_writer(self, fleet, tmp_path):
        spec, xpaths = fleet
        policy = ScriptedFaultPolicy(
            replica={
                ("serve", 0): FaultAction("crash"),
                ("serve", 1): FaultAction("crash"),
            }
        )
        with make_set(spec, tmp_path, fault_policy=policy) as rs:
            ids, _ = rs.execute("doc-0", xpaths["doc-0"])
            assert rs.healthy_count() == 0
            assert rs.stats.writer_fallbacks == 1
            assert rs.stats.writer_answers == QUERY_POOL
            assert ids == rs._writer_inline("doc-0", xpaths["doc-0"])[0]
            # Zero replicas left: later batches go straight to the writer.
            rs.execute("doc-1", xpaths["doc-1"])
            assert rs.stats.writer_fallbacks == 2

    def test_injected_error_propagates_to_caller(self, fleet, tmp_path):
        spec, xpaths = fleet
        policy = ScriptedFaultPolicy(
            replica={
                ("serve", 0): FaultAction(
                    "error", exc=RuntimeError("poisoned batch")
                )
            }
        )
        with make_set(spec, tmp_path, fault_policy=policy) as rs:
            with pytest.raises(RuntimeError):
                rs.execute("doc-0", xpaths["doc-0"])
            # A request failure is not an availability event.
            assert rs.healthy_count() == 2
            assert rs.stats.evictions == 0

    def test_restart_reships_and_rejoins(self, fleet, tmp_path):
        spec, xpaths = fleet
        policy = ScriptedFaultPolicy(
            replica={("serve", 0): FaultAction("crash")}
        )
        with make_set(spec, tmp_path, fault_policy=policy) as rs:
            rs.execute("doc-0", xpaths["doc-0"])
            assert rs.healthy_count() == 1
            rs.writer.define_views("doc-0", [parse_pattern("a//b")])
            evicted = [r.index for r in rs.replicas() if not r.healthy][0]
            assert rs.restart(evicted) is True
            assert rs.healthy_count() == 2
            assert rs.stats.rejoins == 1
            assert rs.lag_records(evicted) == 0  # re-ship caught it up

    def test_restart_under_ship_fault_fails_closed(self, fleet, tmp_path):
        spec, _ = fleet
        policy = ScriptedFaultPolicy(
            replica={("ship", 0): FaultAction("crash")}
        )
        with make_set(spec, tmp_path, fault_policy=policy) as rs:
            rs.replicas()[0].healthy = False
            assert rs.restart(0) is False
            assert rs.healthy_count() == 1
            assert rs.stats.ship_failures == 1
            assert rs.restart(0) is True  # the retry succeeds


class TestRouting:
    def test_route_scatter_gathers_in_request_order(self, fleet, tmp_path):
        spec, xpaths = fleet
        requests = [
            (doc_id, pool[position])
            for position in range(QUERY_POOL)
            for doc_id, pool in sorted(xpaths.items())
        ]
        with make_set(spec, tmp_path) as rs:
            ids, kinds = rs.route(requests)
            assert len(ids) == len(requests) == len(kinds)
            for index, (doc_id, xpath) in enumerate(requests):
                expected, _ = rs._writer_inline(doc_id, [xpath])
                assert ids[index] == expected[0]

    def test_route_unknown_document_is_typed(self, fleet, tmp_path):
        spec, _ = fleet
        with make_set(spec, tmp_path) as rs:
            with pytest.raises(UnknownDocumentError):
                rs.route([("no-such-doc", "a/b")])


def _run_failover_soak(fleet, root):
    """One deterministic soak run; returns (lost, mismatches, stats).

    ``batch_size=1`` makes the serve-call order equal the submission
    order, so the scripted crash indexes land identically every run —
    that is what lets the caller assert *exact* stats equality.
    """
    spec, xpaths = fleet
    requests = [
        (doc_id, pool[position])
        for position in range(QUERY_POOL)
        for doc_id, pool in sorted(xpaths.items())
    ]
    # Crash replica A at the 3rd serve call and replica B at the 6th:
    # both evictions happen mid-stream, the tail degrades to the writer.
    policy = ScriptedFaultPolicy(
        replica={
            ("serve", 2): FaultAction("crash"),
            ("serve", 5): FaultAction("crash"),
        }
    )
    with CatalogServer(spec, workers=0) as server:
        baseline = server.serve_requests(requests, batch_size=1)
        with ReplicaSet(
            spec, replicas=2, root=root, fault_policy=policy
        ) as rs:

            async def drive():
                async with server.serve(
                    batch_size=1, replica_set=rs
                ) as front:
                    futures = [
                        await front.submit(doc_id, xpath)
                        for doc_id, xpath in requests
                    ]
                    return await asyncio.gather(*futures), front.counters()

            answers, counters = asyncio.run(drive())
            # Recovery rung: both evicted replicas restart and rejoin.
            for replica in rs.replicas():
                if not replica.healthy:
                    assert rs.restart(replica.index) is True
            assert rs.healthy_count() == 2
            stats = rs.stats_snapshot()
    lost = len(requests) - len(answers)
    mismatches = sum(
        1
        for index in range(len(requests))
        if answers[index] != baseline.answer_ids[index]
    )
    assert counters["served"] == len(requests)
    assert counters["replication"]["replica_crashes"] == 2
    return lost, mismatches, stats


class TestFailoverSoak:
    """The PR's acceptance scenario: crash every replica mid-stream,
    lose nothing, answer bit-identically, and do it all *twice* with
    exactly the same counters."""

    def test_zero_lost_bit_identical_and_reproducible(
        self, fleet, tmp_path
    ):
        lost_a, mism_a, stats_a = _run_failover_soak(
            fleet, tmp_path / "run-a"
        )
        lost_b, mism_b, stats_b = _run_failover_soak(
            fleet, tmp_path / "run-b"
        )
        assert lost_a == lost_b == 0
        assert mism_a == mism_b == 0
        assert stats_a["replica_crashes"] == 2
        assert stats_a["evictions"] == 2
        assert stats_a["writer_fallbacks"] > 0
        assert stats_a["rejoins"] == 2
        # Every request answered exactly once — crashed attempts never
        # count an answer, the retry or the writer fallback does.
        assert stats_a["replica_answers"] + stats_a["writer_answers"] == (
            DOCUMENTS * QUERY_POOL
        )
        # The determinism contract: two same-seed runs agree exactly,
        # counter for counter, replica for replica.
        assert stats_a == stats_b


class TestServeReplayIntegration:
    def test_replay_serve_through_replicas_is_bit_identical(self):
        config = ServeReplayConfig(
            documents=2,
            stream=StreamConfig(length=10),
            document_size=200,
            replicas=2,
        )
        report = replay_serve(config, seed=11)
        assert report.served == report.requests
        assert report.answers_identical
        assert report.replication["replica_answers"] == report.requests
        assert report.replication["writer_fallbacks"] == 0
        assert report.serve_counters["replication"] == report.replication
