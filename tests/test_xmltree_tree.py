"""Unit tests for repro.xmltree.tree (XMLTree and literal builders)."""

from __future__ import annotations

import pytest

from repro.xmltree.node import TNode
from repro.xmltree.tree import XMLTree, build_tree, tree_from_tuples


class TestXMLTree:
    def test_constructor_detaches_root(self):
        parent = TNode("p")
        child = parent.new_child("a")
        tree = XMLTree(child)
        assert tree.root.parent is None

    def test_single(self):
        tree = XMLTree.single("a")
        assert tree.size() == 1
        assert tree.root.label == "a"

    def test_path(self):
        tree = XMLTree.path(["a", "b", "c"])
        assert tree.height() == 2
        assert [n.label for n in tree.nodes()] == ["a", "b", "c"]

    def test_path_empty_raises(self):
        with pytest.raises(ValueError):
            XMLTree.path([])

    def test_find_by_label(self):
        tree = build_tree({"a": ["b", {"c": ["b"]}]})
        assert len(tree.find_by_label("b")) == 2

    def test_find_all_predicate(self):
        tree = build_tree({"a": ["b", {"c": ["d"]}]})
        leaves = tree.find_all(lambda n: not n.children)
        assert sorted(n.label for n in leaves) == ["b", "d"]

    def test_subtree_is_a_copy(self):
        tree = build_tree({"a": [{"b": ["c"]}]})
        b = tree.find_by_label("b")[0]
        sub = tree.subtree(b)
        assert sub.root is not b
        assert sub.root.structurally_equal(b)

    def test_labels(self):
        tree = build_tree({"a": ["b", "b"]})
        assert tree.labels() == {"a", "b"}

    def test_structural_equality_ignores_order(self):
        left = build_tree({"a": ["b", {"c": ["d"]}]})
        right = build_tree({"a": [{"c": ["d"]}, "b"]})
        assert left.structurally_equal(right)

    def test_copy_has_fresh_identity(self):
        tree = build_tree({"a": ["b"]})
        copy = tree.copy()
        assert copy.root is not tree.root
        assert copy.structurally_equal(tree)

    def test_render(self):
        tree = build_tree({"a": ["b"]})
        assert tree.render() == "a\n  b"


class TestBuildTree:
    def test_leaf_string(self):
        assert build_tree("a").size() == 1

    def test_nested(self):
        tree = build_tree({"a": ["b", {"c": ["d", "e"]}]})
        assert tree.size() == 5
        assert tree.height() == 2

    def test_bad_dict_raises(self):
        with pytest.raises(ValueError):
            build_tree({"a": [], "b": []})

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            build_tree(42)  # type: ignore[arg-type]


class TestTreeFromTuples:
    def test_leaf(self):
        assert tree_from_tuples("a").size() == 1

    def test_nested(self):
        tree = tree_from_tuples(("a", "b", ("c", "d")))
        assert tree.size() == 4
        assert [n.label for n in tree.nodes()] == ["a", "b", "c", "d"]

    def test_matches_build_tree(self):
        left = tree_from_tuples(("a", ("b", "c"), "d"))
        right = build_tree({"a": [{"b": ["c"]}, "d"]})
        assert left.structurally_equal(right)
