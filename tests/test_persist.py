"""Tests for the disk-backed view store (repro.views.persist).

Covers the acceptance criteria of the persistence subsystem: save →
process-equivalent reload → identical answers and bit-identical replay
counters; corrupted or stale snapshot entries fall back to rebuild;
document mutation invalidates the old shape's entries.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.patterns.parse import parse_pattern
from repro.views.persist import (
    MemoryBackend,
    SnapshotBackend,
    document_digest,
    pattern_digest,
)
from repro.views.store import ViewStore
from repro.workloads.replay import ReplayConfig, replay_workload
from repro.workloads.streams import StreamConfig
from repro.xmltree.generate import random_tree
from repro.xmltree.tree import build_tree


@pytest.fixture
def snapshot_path(tmp_path):
    return tmp_path / "views.snapshot.jsonl"


def make_document(seed: int = 3):
    return random_tree(180, seed=seed)


VIEWS = {
    "v-desc": "a//b",
    "v-star": "a/*[b]",
    "v-branch": "a[c]//b",
}


def populate(store: ViewStore, seed: int = 3) -> None:
    store.add_document("doc", make_document(seed))
    for name, xpath in VIEWS.items():
        store.define_view(name, parse_pattern(xpath))


class TestDigests:
    def test_document_digest_binds_shape(self):
        t1 = build_tree({"a": ["b", {"c": ["d"]}]})
        t2 = build_tree({"a": ["b", {"c": ["d"]}]})
        t3 = build_tree({"a": [{"c": ["d"]}, "b"]})  # different child order
        assert document_digest(t1) == document_digest(t2)
        assert document_digest(t1) != document_digest(t3)

    def test_document_digest_sees_depth(self):
        flat = build_tree({"a": ["b", "c"]})
        deep = build_tree({"a": [{"b": ["c"]}]})
        assert document_digest(flat) != document_digest(deep)

    def test_pattern_digest_isomorphism(self):
        p1 = parse_pattern("a[b][c]//d")
        p2 = parse_pattern("a[c][b]//d")  # branch order irrelevant
        p3 = parse_pattern("a[b][c]/d")
        assert pattern_digest(p1) == pattern_digest(p2)
        assert pattern_digest(p1) != pattern_digest(p3)


class TestSnapshotRoundTrip:
    def test_reload_serves_identical_answers(self, snapshot_path):
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(store)
        expected = {
            name: {node.label for node in store.view_answers(name, "doc")}
            for name in VIEWS
        }
        expected_sizes = {
            name: len(store.view_answers(name, "doc")) for name in VIEWS
        }
        store.close()

        # Process-equivalent reload: fresh backend object, fresh store,
        # freshly regenerated (isomorphic) document.
        backend = SnapshotBackend(snapshot_path)
        reloaded = ViewStore(backend=backend)
        populate(reloaded)
        assert backend.stats.hits == len(VIEWS)
        assert backend.stats.saves == 0
        for name in VIEWS:
            answers = reloaded.view_answers(name, "doc")
            assert len(answers) == expected_sizes[name]
            assert {node.label for node in answers} == expected[name]
            # Loaded forests must equal what evaluation would produce,
            # as identity-based node sets on the live document.
            direct = reloaded.evaluate(parse_pattern(VIEWS[name]), "doc")
            assert answers == frozenset(direct)
        reloaded.close()

    def test_loaded_nodes_live_in_the_new_document(self, snapshot_path):
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(store)
        store.close()
        reloaded = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(reloaded)
        doc_nodes = set(map(id, reloaded.document("doc").nodes()))
        for name in VIEWS:
            for node in reloaded.view_answers(name, "doc"):
                assert id(node) in doc_nodes
        reloaded.close()

    def test_memory_backend_equivalent(self, snapshot_path):
        durable = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(durable)
        memory = ViewStore(backend=MemoryBackend())
        populate(memory)
        default = ViewStore()
        populate(default)
        for name in VIEWS:
            sizes = {
                len(s.view_answers(name, "doc"))
                for s in (durable, memory, default)
            }
            assert len(sizes) == 1
        durable.close()


class TestReplayCountersIdentical:
    CONFIG = dict(
        stream=StreamConfig(length=80, templates=6),
        document_size=200,
        max_views=3,
    )

    def test_warm_store_replay_bit_identical(self, snapshot_path):
        durable = ReplayConfig(**self.CONFIG, persist_path=snapshot_path)
        cold = replay_workload(durable, seed=11)
        warm = replay_workload(durable, seed=11)
        memory = replay_workload(ReplayConfig(**self.CONFIG), seed=11)
        assert cold.backend["saves"] > 0 and cold.backend["hits"] == 0
        assert warm.backend["hits"] > 0 and warm.backend["saves"] == 0
        assert cold.counters() == memory.counters()
        assert warm.counters() == memory.counters()

    def test_batched_warm_store_bit_identical(self, snapshot_path):
        durable = ReplayConfig(
            **self.CONFIG, persist_path=snapshot_path, batch_size=16
        )
        cold = replay_workload(durable, seed=11)
        warm = replay_workload(durable, seed=11)
        assert warm.backend["hits"] > 0
        assert cold.counters() == warm.counters()


class TestCorruptionAndStaleness:
    def test_garbage_file_falls_back_to_rebuild(self, snapshot_path):
        snapshot_path.write_text("this is not json\x00\xef garbage\n{half")
        backend = SnapshotBackend(snapshot_path)
        assert backend.stats.corrupt_records >= 1
        assert len(backend) == 0
        store = ViewStore(backend=backend)
        populate(store)  # rebuilds from scratch, then persists
        assert backend.stats.saves == len(VIEWS)
        store.close()
        # The rebuilt log is valid again.
        again = SnapshotBackend(snapshot_path)
        assert len(again) == len(VIEWS)
        assert again.stats.corrupt_records >= 1  # the old garbage lines

    def test_torn_tail_write_skipped(self, snapshot_path):
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(store)
        store.close()
        whole = snapshot_path.read_text()
        snapshot_path.write_text(whole + whole.splitlines()[0][: len(whole) // 8])
        backend = SnapshotBackend(snapshot_path)
        assert backend.stats.corrupt_records == 1
        assert len(backend) == len(VIEWS)

    def test_tampered_record_fails_checksum(self, snapshot_path):
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(store)
        store.close()
        lines = snapshot_path.read_text().splitlines()
        record = json.loads(lines[0])
        record["ids"] = [0]  # tamper without fixing the checksum
        lines[0] = json.dumps(record, sort_keys=True)
        snapshot_path.write_text("\n".join(lines) + "\n")
        backend = SnapshotBackend(snapshot_path)
        assert backend.stats.corrupt_records == 1
        assert len(backend) == len(VIEWS) - 1

    def test_out_of_range_ids_treated_as_miss(self, snapshot_path):
        pattern = parse_pattern("a//b")
        doc = make_document()
        # Forge a valid-checksum record with impossible node ids.
        backend = SnapshotBackend(snapshot_path)
        backend.save(
            document_digest(doc), pattern_digest(pattern), [10_000_000]
        )
        backend.close()
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        store.add_document("doc", doc)
        store.define_view("v", pattern)
        assert store.backend.stats.corrupt_records == 1
        # The rejected entry is reclassified miss, not left as a "hit":
        # warm-start monitoring must not count a rebuild as a load.
        assert store.backend.stats.hits == 0
        assert store.backend.stats.misses == 1
        assert store.view_answers("v", "doc") == frozenset(
            store.evaluate(pattern, "doc")
        )
        store.close()

    def test_unknown_format_version_skipped(self, snapshot_path):
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(store)
        store.close()
        lines = snapshot_path.read_text().splitlines()
        record = json.loads(lines[0])
        record["v"] = 999
        lines[0] = json.dumps(record, sort_keys=True)
        snapshot_path.write_text("\n".join(lines) + "\n")
        backend = SnapshotBackend(snapshot_path)
        assert backend.stats.corrupt_records == 1
        assert len(backend) == len(VIEWS) - 1


class TestInvalidation:
    def test_refresh_invalidates_old_shape(self, snapshot_path):
        backend = SnapshotBackend(snapshot_path)
        store = ViewStore(backend=backend)
        tree = build_tree({"a": ["b", {"c": ["b"]}]})
        store.add_document("doc", tree)
        pattern = parse_pattern("a//b")
        store.define_view("v", pattern)
        assert len(store.view_answers("v", "doc")) == 2
        old_digest = store.document_digest("doc")

        tree.root.new_child("b")  # in-place mutation changes the shape
        store.refresh("doc")
        assert backend.stats.invalidations == 1
        assert store.document_digest("doc") != old_digest
        assert len(store.view_answers("v", "doc")) == 3
        assert store.view_answers("v", "doc") == frozenset(
            store.evaluate(pattern, "doc")
        )
        store.close()

        # After reload the new shape's entry is served, the old is gone.
        again = SnapshotBackend(snapshot_path)
        keys = {doc for doc, _ in again._entries}
        assert old_digest not in keys

    def test_refresh_spares_shared_shape(self, snapshot_path):
        backend = SnapshotBackend(snapshot_path)
        store = ViewStore(backend=backend)
        mutated = build_tree({"a": ["b", "b"]})
        twin = build_tree({"a": ["b", "b"]})  # same shape, stays put
        store.add_document("mutated", mutated)
        store.add_document("twin", twin)
        store.define_view("v", parse_pattern("a/b"))
        shared_digest = store.document_digest("twin")
        mutated.root.new_child("c")
        store.refresh("mutated")
        # The twin still owns the old shape: no invalidation happened,
        # and its persisted entry survives for the next process.
        assert backend.stats.invalidations == 0
        store.close()
        assert shared_digest in {doc for doc, _ in SnapshotBackend(snapshot_path)._entries}

    def test_compact_preserves_entries(self, snapshot_path):
        backend = SnapshotBackend(snapshot_path)
        store = ViewStore(backend=backend)
        populate(store)
        size_before = snapshot_path.stat().st_size
        live = backend.compact()
        assert live == len(VIEWS)
        assert snapshot_path.stat().st_size <= size_before
        store.close()
        reloaded = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(reloaded)
        assert reloaded.backend.stats.hits == len(VIEWS)
        reloaded.close()

    def test_compact_preserves_xpath_provenance(self, snapshot_path):
        store = ViewStore(backend=SnapshotBackend(snapshot_path))
        populate(store)
        store.backend.compact()
        store.close()
        records = [
            json.loads(line) for line in snapshot_path.read_text().splitlines()
        ]
        assert sorted(r["xpath"] for r in records) == sorted(VIEWS.values())


class TestSelectionRecords:
    PAYLOAD = {
        "format": 1,
        "views": [{"xpath": "a//b", "cost": 3.0, "benefit": 2.0}],
        "uncovered": [],
    }

    def test_memory_backend_round_trip_and_isolation(self):
        backend = MemoryBackend()
        assert backend.load_selection("d1", "fp") is None
        assert backend.stats.selection_misses == 1
        payload = {k: v for k, v in self.PAYLOAD.items()}
        backend.save_selection("d1", "fp", payload)
        payload["views"] = []  # caller mutation must not alias the store
        loaded = backend.load_selection("d1", "fp")
        assert loaded == self.PAYLOAD
        loaded["uncovered"].append(9)  # nor must a loaded copy
        assert backend.load_selection("d1", "fp") == self.PAYLOAD
        assert backend.stats.selection_hits == 2
        assert backend.stats.selection_saves == 1

    def test_snapshot_backend_persists_selections(self, snapshot_path):
        with SnapshotBackend(snapshot_path) as backend:
            backend.save_selection("d1", "fp", self.PAYLOAD)
        with SnapshotBackend(snapshot_path) as backend:
            assert backend.load_selection("d1", "fp") == self.PAYLOAD

    def test_invalidate_drops_selections_too(self, snapshot_path):
        with SnapshotBackend(snapshot_path) as backend:
            backend.save_selection("d1", "fp", self.PAYLOAD)
            backend.save_selection("d2", "fp", self.PAYLOAD)
            backend.invalidate_document("d1")
            assert backend.load_selection("d1", "fp") is None
            assert backend.load_selection("d2", "fp") == self.PAYLOAD
        # ... and the invalidate record replays the same way on reopen.
        with SnapshotBackend(snapshot_path) as backend:
            assert backend.load_selection("d1", "fp") is None
            assert backend.load_selection("d2", "fp") == self.PAYLOAD

    def test_tampered_selection_record_skipped(self, snapshot_path):
        with SnapshotBackend(snapshot_path) as backend:
            backend.save_selection("d1", "fp", self.PAYLOAD)
        lines = snapshot_path.read_text().splitlines()
        record = json.loads(lines[0])
        record["payload"]["views"] = []  # checksum now stale
        snapshot_path.write_text(json.dumps(record) + "\n")
        with SnapshotBackend(snapshot_path) as backend:
            assert backend.stats.corrupt_records == 1
            assert backend.load_selection("d1", "fp") is None


class TestCompaction:
    def test_compact_with_pending_invalidations(self, snapshot_path):
        """Compaction drops invalidated entries and keeps the rest live.

        The log holds puts for two documents, a selection record each,
        and a pending ``invalidate`` for one of them; the compacted log
        must contain only the survivor's records — and reopening it must
        reconstruct exactly the pre-compaction live state.
        """
        with SnapshotBackend(snapshot_path) as backend:
            backend.save("keep", "p1", [1, 2], xpath="a/b")
            backend.save("keep", "p2", [3], xpath="a//c")
            backend.save("gone", "p1", [4], xpath="a/d")
            backend.save_selection("keep", "fp", {"views": []})
            backend.save_selection("gone", "fp", {"views": []})
            backend.invalidate_document("gone")
            live = backend.compact()
            assert live == 2
        records = [
            json.loads(line) for line in snapshot_path.read_text().splitlines()
        ]
        assert all(record["doc"] == "keep" for record in records)
        assert sorted(record["op"] for record in records) == [
            "put",
            "put",
            "selection",
        ]
        with SnapshotBackend(snapshot_path) as backend:
            assert backend.stats.corrupt_records == 0
            assert backend.load("keep", "p1") == [1, 2]
            assert backend.load("gone", "p1") is None
            assert backend.load_selection("keep", "fp") == {"views": []}
            assert backend.load_selection("gone", "fp") is None

    def test_compact_fsyncs_the_directory(self, snapshot_path, monkeypatch):
        """The rename is made durable: the parent directory gets fsynced.

        A crash between ``os.replace`` and the directory's own writeback
        could resurrect the old log; the fix is an explicit directory
        fsync after the rename.  The filesystem effect is not observable
        from userspace, so the test pins the call itself.
        """
        import repro.views.persist as persist

        synced: list = []
        real = persist._fsync_directory
        monkeypatch.setattr(
            persist,
            "_fsync_directory",
            lambda path: (synced.append(path), real(path))[1],
        )
        with SnapshotBackend(snapshot_path) as backend:
            backend.save("d1", "p1", [1])
            backend.compact()
        assert synced == [snapshot_path.parent]

    def test_fsync_failure_counted_and_logged_once(
        self, snapshot_path, monkeypatch, caplog
    ):
        """A failed directory fsync is observable, never silent (regression).

        The failure used to vanish: ``_fsync_directory`` returned and
        nobody looked.  Now every failure bumps
        ``BackendStats.fsync_failures`` and the first one per process
        logs a warning — counted always, logged once.
        """
        import logging

        import repro.views.persist as persist

        monkeypatch.setattr(persist, "_fsync_directory", lambda path: False)
        monkeypatch.setattr(persist, "_FSYNC_FAILURE_LOGGED", False)
        with SnapshotBackend(snapshot_path) as backend:
            backend.save("d1", "p1", [1])
            with caplog.at_level(logging.WARNING, logger=persist.logger.name):
                backend.compact()
                assert backend.stats.fsync_failures == 1
                backend.compact()
                assert backend.stats.fsync_failures == 2
            assert backend.stats.snapshot()["fsync_failures"] == 2
        warnings = [
            record
            for record in caplog.records
            if "fsync" in record.getMessage()
        ]
        assert len(warnings) == 1  # log-once; the counter carries the rest

    def test_fsync_directory_failure_paths_return_false(
        self, tmp_path, monkeypatch
    ):
        import repro.views.persist as persist

        def deny_open(path, flags):
            raise OSError("directories not openable here")

        monkeypatch.setattr(persist.os, "open", deny_open)
        assert persist._fsync_directory(tmp_path) is False
        monkeypatch.undo()

        def deny_fsync(fd):
            raise OSError("EINVAL")

        monkeypatch.setattr(persist.os, "fsync", deny_fsync)
        assert persist._fsync_directory(tmp_path) is False

    def test_backend_usable_after_compact(self, snapshot_path):
        with SnapshotBackend(snapshot_path) as backend:
            backend.save("d1", "p1", [1])
            backend.compact()
            backend.save("d1", "p2", [2])  # append handle was swapped
        with SnapshotBackend(snapshot_path) as backend:
            assert backend.load("d1", "p1") == [1]
            assert backend.load("d1", "p2") == [2]


class TestLogShipping:
    """PR 9: sequence numbers, tails and idempotent application."""

    def _writer(self, path, puts=3):
        backend = SnapshotBackend(path)
        for index in range(puts):
            backend.save(f"doc{index}", f"pat{index}", [index, index + 10])
        return backend

    def test_seqnos_are_monotone_and_replayed(self, tmp_path):
        path = tmp_path / "writer.jsonl"
        with self._writer(path, puts=4) as writer:
            assert writer.last_seqno == 4
        with SnapshotBackend(path) as reopened:
            assert reopened.last_seqno == 4
            reopened.save("doc9", "pat9", [9])
            assert reopened.last_seqno == 5

    def test_read_since_returns_only_the_tail(self, tmp_path):
        with self._writer(tmp_path / "w.jsonl", puts=5) as writer:
            tail = writer.read_since(3)
            assert [rec["seq"] for rec in tail.records] == [4, 5]
            assert tail.corrupt == 0 and tail.last_seqno == 5
            assert writer.read_since(5).records == ()

    def test_apply_is_idempotent_and_detects_gaps(self, tmp_path):
        with self._writer(tmp_path / "w.jsonl", puts=4) as writer:
            tail = writer.read_since(0)
            with SnapshotBackend(tmp_path / "r.jsonl") as replica:
                first = replica.apply_records(tail.records)
                assert first.applied == 4 and first.clean
                again = replica.apply_records(tail.records)
                assert again.applied == 0 and again.skipped == 4
                assert again.clean
                # Skip seq 5: the batch stops at the gap, applying nothing.
                writer.save("doc8", "pat8", [8])
                writer.save("doc9", "pat9", [9])
                gappy = writer.read_since(0).records[-1:]  # only seq 6
                result = replica.apply_records(gappy)
                assert result.gap_at == 6 and not result.clean
                assert replica.last_seqno == 4

    def test_applied_log_is_itself_a_shipping_source(self, tmp_path):
        with self._writer(tmp_path / "w.jsonl", puts=3) as writer:
            tail = writer.read_since(0)
        with SnapshotBackend(tmp_path / "mid.jsonl") as middle:
            assert middle.apply_records(tail.records).clean
            relay = middle.read_since(0)
            assert relay.corrupt == 0
        with SnapshotBackend(tmp_path / "end.jsonl") as end:
            assert end.apply_records(relay.records).applied == 3
            assert end.load("doc2", "pat2") == [2, 12]

    def test_compaction_preserves_seqnos(self, tmp_path):
        path = tmp_path / "w.jsonl"
        with SnapshotBackend(path) as writer:
            writer.save("d1", "p1", [1])       # seq 1
            writer.save("d1", "p1", [1, 2])    # seq 2 supersedes seq 1
            writer.save("d2", "p2", [3])       # seq 3
            writer.compact()
            assert writer.last_seqno == 3
            seqs = [rec["seq"] for rec in writer.read_since(0).records]
            assert seqs == sorted(seqs) and seqs[-1] == 3
            # The superseded record is gone: an incremental ship of the
            # compacted log has a gap, which forces a full re-ship —
            # staleness is detectable, wrong answers are impossible.
            with SnapshotBackend(tmp_path / "r.jsonl") as replica:
                result = replica.apply_records(writer.read_since(0).records)
                assert result.gap_at is not None or result.clean

    def test_rejected_records_counted(self, tmp_path):
        with self._writer(tmp_path / "w.jsonl", puts=2) as writer:
            tail = writer.read_since(0)
        bad = dict(tail.records[0])
        bad["ids"] = [999]  # checksum no longer matches
        with SnapshotBackend(tmp_path / "r.jsonl") as replica:
            result = replica.apply_records([bad, tail.records[1]])
            assert result.rejected == 1
            assert replica.stats.corrupt_records == 1
            # seq 2 after rejected seq 1 is a gap, not an application.
            assert result.gap_at == 2 and replica.last_seqno == 0


class TestShippedLogCorruptionProperty:
    """Hypothesis: no corruption of a shipped log suffix ever yields a
    wrong answer on the replica — only detectable staleness, fixed by a
    full re-ship."""

    pytestmark = pytest.mark.slow

    @given(
        puts=st.integers(min_value=2, max_value=6),
        cut=st.integers(min_value=0, max_value=10_000),
        flip=st.one_of(st.none(), st.integers(min_value=0, max_value=10_000)),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncate_or_bitflip_never_wrong(self, puts, cut, flip):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as root:
            base = Path(root)
            writer = SnapshotBackend(base / "writer.jsonl")
            expected = {}
            for index in range(puts):
                key = (f"doc{index}", f"pat{index}")
                writer.save(*key, [index, index + 100])
                expected[key] = [index, index + 100]
            blob = (base / "writer.jsonl").read_bytes()

            # Corrupt a suffix: truncate at an arbitrary byte, then
            # optionally flip one bit inside what remains.
            keep = len(blob) - (cut % (len(blob) + 1))
            mangled = bytearray(blob[:keep])
            if flip is not None and mangled:
                position = flip % len(mangled)
                mangled[position] ^= 0x40
            (base / "shipped.jsonl").write_bytes(bytes(mangled))

            shipped = SnapshotBackend(base / "shipped.jsonl")
            tail = shipped.read_since(0)
            replica = SnapshotBackend(base / "replica.jsonl")
            replica.apply_records(tail.records)

            # Safety: every entry the replica serves is bit-identical
            # to the writer's — corruption may lose records (staleness)
            # but can never change one.
            for key, ids in replica._entries.items():
                assert expected.get(key) == ids

            # Liveness: a full re-ship from the intact writer restores
            # exactly the writer's state, whatever the corruption did.
            (base / "reshipped.jsonl").write_bytes(blob)
            restored = SnapshotBackend(base / "reshipped.jsonl")
            assert restored._entries == writer._entries
            assert restored.last_seqno == writer.last_seqno
            for backend in (writer, shipped, replica, restored):
                backend.close()
