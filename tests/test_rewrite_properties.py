"""Property-based tests for the rewriting solver.

Soundness: any rewriting the solver returns verifies (``R ∘ V ≡ P``).
Completeness: on instances built as view-prefix pairs a rewriting always
exists and the solver finds one; on arbitrary small instances the
solver's NO_REWRITING verdicts agree with the bounded exhaustive search.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

pytestmark = pytest.mark.slow

from repro.core.composition import compose
from repro.core.containment import equivalent
from repro.core.decide import exhaustive_search
from repro.core.rewrite import RewriteSolver, RewriteStatus
from repro.patterns.random import PatternConfig, random_rewrite_instance

from .strategies import path_patterns, patterns


@st.composite
def rewrite_instances(draw, mutate: bool = False):
    """Seeded view-prefix instances through the library generator."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    depth = draw(st.integers(min_value=1, max_value=4))
    config = PatternConfig(depth=depth, branch_prob=0.4)
    return random_rewrite_instance(config, seed=seed, mutate_view=mutate)


class TestSoundness:
    @given(rewrite_instances())
    @settings(max_examples=40, deadline=None)
    def test_prefix_instances_always_found(self, instance):
        query, view = instance
        result = RewriteSolver().solve(query, view)
        assert result.status is RewriteStatus.FOUND
        assert equivalent(compose(result.rewriting, view), query)

    @given(rewrite_instances(mutate=True))
    @settings(max_examples=40, deadline=None)
    def test_mutated_instances_sound(self, instance):
        query, view = instance
        result = RewriteSolver().solve(query, view)
        if result.status is RewriteStatus.FOUND:
            assert equivalent(compose(result.rewriting, view), query)

    @given(patterns(max_size=4), path_patterns(max_depth=2))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_pairs_sound(self, query, view):
        result = RewriteSolver(fallback_extra_nodes=1).solve(query, view)
        if result.status is RewriteStatus.FOUND:
            assert equivalent(compose(result.rewriting, view), query)


class TestAgreementWithSearch:
    @given(rewrite_instances(mutate=True))
    @settings(max_examples=25, deadline=None)
    def test_no_rewriting_confirmed_by_search(self, instance):
        query, view = instance
        result = RewriteSolver().solve(query, view)
        if result.status is RewriteStatus.NO_REWRITING:
            outcome = exhaustive_search(query, view, max_extra_nodes=1)
            assert outcome.rewriting is None

    @given(rewrite_instances())
    @settings(max_examples=25, deadline=None)
    def test_found_confirmed_by_search(self, instance):
        query, view = instance
        result = RewriteSolver().solve(query, view)
        assert result.found
        # The search needs enough extra-node budget to rebuild the
        # candidate's branches (selection path nodes come for free).
        needed = result.rewriting.size() - (result.rewriting.depth + 1)
        if needed > 3:
            return  # out of the bounded search's reach; skip
        outcome = exhaustive_search(query, view, max_extra_nodes=max(needed, 1))
        # The candidate-count budget can truncate the enumeration before
        # it reaches the rewriting's size class; only a search that ran
        # to exhaustion is authoritative about not finding one.
        assert outcome.rewriting is not None or not outcome.exhausted


class TestDecisionMetadata:
    @given(rewrite_instances())
    @settings(max_examples=30, deadline=None)
    def test_candidate_path_uses_at_most_two_tests(self, instance):
        query, view = instance
        result = RewriteSolver().solve(query, view)
        if result.rule == "natural-candidate":
            assert result.equivalence_tests <= 2

    @given(rewrite_instances(mutate=True))
    @settings(max_examples=30, deadline=None)
    def test_status_rule_consistency(self, instance):
        query, view = instance
        result = RewriteSolver().solve(query, view)
        if result.status is RewriteStatus.FOUND:
            assert result.rewriting is not None
            assert result.rule in ("natural-candidate", "prop-3.4-search")
        elif result.status is RewriteStatus.NO_REWRITING:
            assert result.rewriting is None
            assert result.rule is not None
        else:
            assert result.rewriting is None
